//! Criterion microbenchmarks for the graph substrate: the O(1) edge
//! update claims behind the framework's complexity analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use dynamis_gen::uniform::gnm;
use dynamis_graph::collections::{IndexedBag, StampSet};
use dynamis_graph::CsrGraph;

fn edge_updates(c: &mut Criterion) {
    let base = gnm(20_000, 100_000, 3);
    let extra: Vec<(u32, u32)> = {
        let g2 = gnm(20_000, 120_000, 4);
        g2.edges()
            .filter(|&(u, v)| !base.has_edge(u, v))
            .take(10_000)
            .collect()
    };
    c.bench_function("graph/insert_delete_10k_edges", |b| {
        b.iter(|| {
            let mut g = base.clone();
            for &(u, v) in &extra {
                g.insert_edge(u, v).unwrap();
            }
            for &(u, v) in &extra {
                g.remove_edge(u, v).unwrap();
            }
            g.num_edges()
        });
    });
    c.bench_function("graph/csr_snapshot", |b| {
        b.iter(|| CsrGraph::from_dynamic(&base).num_edges());
    });
}

fn bucket_structures(c: &mut Criterion) {
    c.bench_function("collections/indexed_bag_churn", |b| {
        b.iter(|| {
            let mut bag = IndexedBag::with_capacity(10_000);
            for k in 0..10_000u32 {
                bag.insert(k);
            }
            for k in (0..10_000u32).step_by(2) {
                bag.remove(k);
            }
            bag.len()
        });
    });
    c.bench_function("collections/stamp_set_marks", |b| {
        let mut s = StampSet::with_capacity(10_000);
        b.iter(|| {
            s.clear();
            for k in 0..10_000u32 {
                s.mark(k);
            }
            (0..10_000u32).filter(|&k| s.is_marked(k)).count()
        });
    });
}

criterion_group!(benches, edge_updates, bucket_structures);
criterion_main!(benches);
