//! Criterion microbenchmarks: per-update latency of every dynamic engine
//! on a power-law graph (the workload shape of the paper's evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynamis_bench::harness::AlgoKind;
use dynamis_gen::{powerlaw::chung_lu, StreamConfig, UpdateStream};

fn per_update_latency(c: &mut Criterion) {
    let g = chung_lu(10_000, 2.4, 8.0, 77);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 78).take_updates(2_000);
    let mut group = c.benchmark_group("per_update");
    group.sample_size(10);
    for kind in [
        AlgoKind::MaximalOnly,
        AlgoKind::DyArw,
        AlgoKind::DyOneSwap,
        AlgoKind::DyTwoSwap,
        AlgoKind::DgOneDis,
        AlgoKind::DgTwoDis,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut e = kind.build(&g, &[]);
                    for u in &ups {
                        e.try_apply(u).unwrap();
                    }
                    e.size()
                });
            },
        );
    }
    group.finish();
}

fn update_mix_sensitivity(c: &mut Criterion) {
    let g = chung_lu(10_000, 2.4, 8.0, 77);
    let mut group = c.benchmark_group("update_mix");
    group.sample_size(10);
    for (label, cfg) in [
        ("mixed", StreamConfig::default()),
        ("edges_only", StreamConfig::edges_only()),
        ("insert_only", StreamConfig::insert_only()),
    ] {
        let ups = UpdateStream::new(&g, cfg, 5).take_updates(2_000);
        group.bench_with_input(BenchmarkId::from_parameter(label), &ups, |b, ups| {
            b.iter(|| {
                let mut e = AlgoKind::DyTwoSwap.build(&g, &[]);
                for u in ups {
                    e.try_apply(u).unwrap();
                }
                e.size()
            });
        });
    }
    group.finish();
}

fn batch_vs_per_update(c: &mut Criterion) {
    use dynamis_core::{DyTwoSwap, DynamicMis, EngineBuilder};
    let g = chung_lu(10_000, 2.4, 8.0, 77);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 79).take_updates(2_000);
    let mut group = c.benchmark_group("batching");
    group.sample_size(10);
    group.bench_function("per_update", |b| {
        b.iter(|| {
            let mut e: DyTwoSwap = EngineBuilder::on(g.clone()).build_as().unwrap();
            for u in &ups {
                e.try_apply(u).unwrap();
            }
            e.size()
        });
    });
    group.bench_function("batch_256", |b| {
        b.iter(|| {
            let mut e: DyTwoSwap = EngineBuilder::on(g.clone()).build_as().unwrap();
            for chunk in ups.chunks(256) {
                e.try_apply_batch(chunk).unwrap();
            }
            e.size()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    per_update_latency,
    update_mix_sensitivity,
    batch_vs_per_update
);
criterion_main!(benches);
