//! Criterion microbenchmarks for the static solvers: exact
//! branch-and-reduce scaling, greedy, ARW, and reducing–peeling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_graph::CsrGraph;
use dynamis_static::arw::{arw_local_search, ArwConfig};
use dynamis_static::certify::certify_one_maximal;
use dynamis_static::exact::{solve_exact, ExactConfig};
use dynamis_static::{certify_one_maximal_par, greedy_mis, luby_mis, reducing_peeling};

fn static_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("static");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let g = chung_lu(n, 2.5, 6.0, 9);
        let csr = CsrGraph::from_dynamic(&g);
        group.bench_with_input(BenchmarkId::new("greedy", n), &csr, |b, csr| {
            b.iter(|| greedy_mis(csr).len());
        });
        group.bench_with_input(BenchmarkId::new("peeling", n), &csr, |b, csr| {
            b.iter(|| reducing_peeling(csr).len());
        });
        group.bench_with_input(BenchmarkId::new("arw", n), &csr, |b, csr| {
            b.iter(|| {
                arw_local_search(
                    csr,
                    ArwConfig {
                        perturbations: 5,
                        seed: 1,
                    },
                )
                .len()
            });
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &csr, |b, csr| {
            b.iter(|| {
                solve_exact(
                    csr,
                    ExactConfig {
                        node_budget: 5_000_000,
                    },
                )
                .map(|r| r.alpha)
            });
        });
        group.bench_with_input(BenchmarkId::new("luby", n), &csr, |b, csr| {
            b.iter(|| luby_mis(csr, 1).solution.len());
        });
    }
    group.finish();
}

fn certification(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify");
    group.sample_size(10);
    let g = chung_lu(100_000, 2.4, 8.0, 13);
    let solution = {
        use dynamis_core::{DyOneSwap, DynamicMis, EngineBuilder};
        EngineBuilder::on(g.clone())
            .build_as::<DyOneSwap>()
            .unwrap()
            .solution()
    };
    group.bench_function("sequential", |b| {
        b.iter(|| certify_one_maximal(&g, &solution).is_ok());
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| certify_one_maximal_par(&g, &solution, t).is_ok());
        });
    }
    group.finish();
}

criterion_group!(benches, static_solvers, certification);
criterion_main!(benches);
