//! Criterion ablations for the design choices DESIGN.md calls out:
//! perturbation on/off, restart-vs-dynamic maintenance, and workload
//! shape (uniform vs burst vs window).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynamis_baselines::{Restart, RestartSolver};
use dynamis_core::{DyOneSwap, DyTwoSwap, DynamicMis, EngineBuilder, EngineConfig};
use dynamis_gen::temporal::{burst, sliding_window, BurstConfig, SlidingWindowConfig};
use dynamis_gen::{powerlaw::chung_lu, StreamConfig, UpdateStream, Workload};

fn perturbation_cost(c: &mut Criterion) {
    let g = chung_lu(8_000, 2.4, 8.0, 31);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 32).take_updates(1_500);
    let mut group = c.benchmark_group("perturbation");
    group.sample_size(10);
    for (label, perturbation) in [("off", false), ("on", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &perturbation,
            |b, &p| {
                b.iter(|| {
                    let cfg = EngineConfig {
                        perturbation: p,
                        ..EngineConfig::default()
                    };
                    let mut e: DyOneSwap =
                        EngineBuilder::on(g.clone()).config(cfg).build_as().unwrap();
                    for u in &ups {
                        e.try_apply(u).unwrap();
                    }
                    e.size()
                });
            },
        );
    }
    group.finish();
}

fn restart_vs_dynamic(c: &mut Criterion) {
    let g = chung_lu(4_000, 2.4, 8.0, 33);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 34).take_updates(800);
    let mut group = c.benchmark_group("restart_vs_dynamic");
    group.sample_size(10);
    group.bench_function("restart_every_50", |b| {
        b.iter(|| {
            let mut e =
                Restart::from_builder(EngineBuilder::on(g.clone()), RestartSolver::Greedy, 50)
                    .unwrap();
            for u in &ups {
                e.try_apply(u).unwrap();
            }
            e.size()
        });
    });
    group.bench_function("dy_one_swap", |b| {
        b.iter(|| {
            let mut e: DyOneSwap = EngineBuilder::on(g.clone()).build_as().unwrap();
            for u in &ups {
                e.try_apply(u).unwrap();
            }
            e.size()
        });
    });
    group.finish();
}

fn workload_shapes(c: &mut Criterion) {
    let n = 6_000usize;
    let base = chung_lu(n, 2.4, 8.0, 35);
    let shapes: Vec<(&str, Workload)> = vec![
        (
            "uniform",
            Workload::generate(base.clone(), 3_000, StreamConfig::edges_only(), 36),
        ),
        (
            "window",
            sliding_window(
                SlidingWindowConfig {
                    n,
                    window: 3 * n,
                    arrivals: 1_500 + 3 * n,
                },
                37,
            ),
        ),
        (
            "burst",
            burst(
                base,
                BurstConfig {
                    bursts: 16,
                    burst_size: 96,
                    decay: 0.75,
                },
                38,
            ),
        ),
    ];
    let mut group = c.benchmark_group("workload_shape");
    group.sample_size(10);
    for (label, wl) in &shapes {
        group.bench_with_input(BenchmarkId::from_parameter(*label), wl, |b, wl| {
            b.iter(|| {
                let mut e: DyTwoSwap = EngineBuilder::on(wl.graph.clone()).build_as().unwrap();
                for u in &wl.updates {
                    e.try_apply(u).unwrap();
                }
                e.size()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    perturbation_cost,
    restart_vs_dynamic,
    workload_shapes
);
criterion_main!(benches);
