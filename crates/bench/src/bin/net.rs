//! Network front-end bench: one loopback server (in a child process,
//! so the 10k+ client sockets and the 10k+ server sockets each get
//! their own file-descriptor budget) driven by `dynamis_net::load` —
//! readers ≫ writers, the tentpole serving scenario.
//!
//! The run measures writer round-trip percentiles (p50/p95/p99) and
//! ingest throughput while every subscriber streams sequenced deltas,
//! then *asserts* stream integrity: zero sequence gaps, zero lost
//! deltas, every verifying mirror equal to the server's snapshot. A
//! non-clean child exit or an integrity violation fails the bench.
//!
//! Writes `BENCH_PR7.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1` (a small smoke-sized run for CI).

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_net::{load, LoadConfig, NetBackend, NetConfig, NetServer};
use dynamis_serve::{MisService, ServeConfig};
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Command, Stdio};
use std::thread;
use std::time::Instant;

/// Graph-model constants shared by parent and child.
const BETA: f64 = 2.4;
const AVG_DEGREE: f64 = 8.0;
const GRAPH_SEED: u64 = 77;

/// The child role: build the graph, spawn the service, serve on an
/// ephemeral loopback port, announce `LISTENING <addr>`, and run until
/// the parent closes our stdin.
fn child_serve(n: usize) -> ! {
    let base = chung_lu(n, BETA, AVG_DEGREE, GRAPH_SEED);
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(base).k(2), ServeConfig::default())
            .expect("engine construction");
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig::default(),
    )
    .expect("bind loopback");
    println!("LISTENING {}", handle.local_addr());
    std::io::stdout().flush().expect("announce address");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.shutdown();
    let report = service.shutdown();
    eprintln!("net child: final |I| = {}", report.solution.len());
    std::process::exit(0);
}

fn main() {
    if let Ok(v) = std::env::var("DYNAMIS_NET_CHILD") {
        child_serve(v.parse().expect("DYNAMIS_NET_CHILD carries the graph size"));
    }

    let fast = dynamis_bench::fast_mode();
    let (n, subscribers, writers, updates) = if fast {
        (2_000, 300, 2, 2_000)
    } else {
        (20_000, 10_000, 4, 20_000)
    };
    let cores = thread::available_parallelism().map_or(1, |c| c.get());
    eprintln!(
        "net: spawning loopback server (n = {n}), then {subscribers} subscribers + \
         {writers} writers × {updates} updates on {cores} cores"
    );

    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .env("DYNAMIS_NET_CHILD", n.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn server child");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout piped"));
    let addr = {
        let mut line = String::new();
        loop {
            line.clear();
            if child_out.read_line(&mut line).expect("child announces") == 0 {
                panic!("server child exited before announcing its address");
            }
            if let Some(rest) = line.trim().strip_prefix("LISTENING ") {
                break rest.to_string();
            }
        }
    };
    eprintln!("net: server listening on {addr}");

    let cfg = LoadConfig {
        addr,
        subscribers,
        writers,
        updates,
        vertices: n as u32,
        batch: 16,
        seed: 4820,
        ..LoadConfig::default()
    };
    let t = Instant::now();
    let report = load::run(&cfg).expect("load run against the child server");
    let total_secs = t.elapsed().as_secs_f64();

    // Clean shutdown: close the child's stdin (its exit condition) and
    // require a zero exit status.
    drop(child.stdin.take());
    let status = child.wait().expect("child exit status");
    assert!(status.success(), "server child did not shut down cleanly");

    // Stream integrity is the acceptance bar, not a statistic.
    assert_eq!(report.gaps, 0, "subscribers observed out-of-order deltas");
    assert_eq!(report.lost_deltas, 0, "subscribers lost deltas");
    assert_eq!(report.mirror_errors, 0, "a verifying mirror desynced");
    assert!(
        report.verified_mirrors > 0,
        "no verifying mirror matched the server snapshot"
    );

    let mut table = dynamis_bench::Table::new(vec![
        "subscribers",
        "writers",
        "updates/s",
        "p50 µs",
        "p95 µs",
        "p99 µs",
        "events",
        "lost",
    ]);
    table.row(vec![
        report.subscribers.to_string(),
        report.writers.to_string(),
        format!("{:.0}", report.throughput),
        report.p50_us.to_string(),
        report.p95_us.to_string(),
        report.p99_us.to_string(),
        report.sub_events.to_string(),
        report.lost_deltas.to_string(),
    ]);
    table.print();

    let json = format!(
        "{{\n  \"bench\": \"net\",\n  \"workload\": {{\"model\": \"chung_lu\", \"n\": {n}, \
         \"beta\": {BETA}, \"avg_degree\": {AVG_DEGREE}, \"batch\": {batch}, \
         \"seed\": {seed}, \"cores\": {cores}, \"fast\": {fast}}},\n  \
         \"total_secs\": {total_secs:.3},\n  \"load\": {load}\n}}\n",
        batch = cfg.batch,
        seed = cfg.seed,
        load = report.to_json(),
    );
    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR7.json".into());
    std::fs::write(&out, json).expect("write bench report");
    eprintln!("net: report written to {out}");
}
