//! **Theorem 4 / Lemma 2 ablation** — fits the power-law bounded
//! parameters (Definition 2) of every dataset stand-in, evaluates the
//! constant approximation-ratio bound of Theorem 4 and the expected
//! `|¯I₂(v)|` bound of Lemma 2, and compares the bound with the measured
//! accuracy of DyOneSwap.

use dynamis_bench::report::Table;
use dynamis_core::{DyOneSwap, DynamicMis, EngineBuilder};
use dynamis_gen::plb::PlbFit;
use dynamis_gen::DATASETS;
use dynamis_graph::CsrGraph;

fn main() {
    let mut t = Table::new(vec![
        "Graph",
        "β̂",
        "c1",
        "c2",
        "Thm4 bound",
        "Lemma2 E[|I2|]",
        "measured α/|I| ≤",
    ]);
    for spec in &DATASETS {
        let g = spec.build();
        let csr = CsrGraph::from_dynamic(&g);
        let Some(est) = PlbFit::default().fit(&csr.degree_histogram()) else {
            continue;
        };
        let engine: DyOneSwap = EngineBuilder::on(g).build_as().unwrap();
        // Upper bound on the true ratio: α ≤ n, so α/|I| ≤ n/|I| — and the
        // Theorem 4 bound must dominate the TRUE ratio (≤ this only when
        // bound ≥ true ratio; we report n/|I| as a conservative ceiling).
        let ceiling = csr.num_vertices() as f64 / engine.size() as f64;
        t.row(vec![
            spec.name.to_string(),
            format!("{:.2}", est.beta),
            format!("{:.2}", est.c1),
            format!("{:.3}", est.c2),
            est.theorem4_ratio()
                .map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "β≤2".into()),
            est.lemma2_expected_i2(csr.avg_degree())
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "β≤2.5".into()),
            format!("{ceiling:.2}"),
        ]);
    }
    println!("# Theorem 4 / Lemma 2 — PLB constants per dataset stand-in\n");
    t.print();
    println!("\n(Thm4 bound is the worst-case guarantee; the measured column is the");
    println!(" trivial ceiling n/|I| — real accuracy is far better, see Table II.)");
}
