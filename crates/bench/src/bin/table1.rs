//! **Table I** — statistics of graphs: paper values next to the scaled
//! synthetic stand-ins this reproduction actually runs on.

use dynamis_bench::report::Table;
use dynamis_gen::DATASETS;

fn main() {
    let mut t = Table::new(vec![
        "Graph",
        "paper n",
        "paper m",
        "paper d̄",
        "scaled n",
        "scaled m",
        "scaled d̄",
        "class",
    ]);
    for spec in &DATASETS {
        let g = spec.build();
        t.row(vec![
            spec.name.to_string(),
            spec.paper_n.to_string(),
            spec.paper_m.to_string(),
            format!("{:.2}", spec.avg_degree),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{:.2}", g.avg_degree()),
            format!("{:?}", spec.category),
        ]);
    }
    println!("# Table I — dataset statistics (paper vs scaled stand-ins)\n");
    t.print();
}
