//! **Figure 8** — scalability in the number of updates on the hollywood
//! and soc-LiveJournal stand-ins: response time (a, c) and gap/accuracy
//! (b, d) as #updates sweeps from 100k- to 1M-equivalent.

use dynamis_bench::harness::{dataset_workload, run, AlgoKind};
use dynamis_bench::report::{fmt_acc, fmt_duration, fmt_gap, Table};
use dynamis_bench::time_limit;

fn main() {
    let limit = time_limit();
    for name in ["hollywood", "soc-LiveJournal"] {
        let spec = dynamis_gen::datasets::by_name(name).expect("registry");
        // Generate the largest schedule once; prefixes give the sweep.
        let (g, ups, init) = dataset_workload(spec, 1_000_000);
        let reference = init.reference();
        eprintln!(
            "[fig8] {name}: n={} m={} max updates={}",
            g.num_vertices(),
            g.num_edges(),
            ups.len()
        );
        let mut t = Table::new(vec!["#updates", "algo", "time", "gap", "acc"]);
        let steps = 5usize;
        for i in 1..=steps {
            let cut = ups.len() * i / steps;
            for kind in AlgoKind::paper_lineup() {
                let out = run(kind, &g, init.solution(), &ups[..cut], limit);
                t.row(vec![
                    cut.to_string(),
                    kind.label(),
                    if out.dnf {
                        "-".into()
                    } else {
                        fmt_duration(out.elapsed)
                    },
                    if out.dnf {
                        "-".into()
                    } else {
                        fmt_gap(out.size, reference)
                    },
                    if out.dnf {
                        "-".into()
                    } else {
                        fmt_acc(out.size, reference)
                    },
                ]);
            }
        }
        println!(
            "\n# Fig. 8 — scalability in #updates on {name} (reference {} = {}{})\n",
            if init.is_exact() { "α" } else { "ARW best" },
            reference,
            if init.is_exact() { "" } else { "†" }
        );
        t.print();
    }
}
