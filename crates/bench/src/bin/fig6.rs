//! **Figure 6** — response time (a) and memory usage (b) on the hard
//! graphs under 1M-equivalent updates. The DG* baselines are expected to
//! DNF on the last five graphs.

use dynamis_bench::alloc_track::{peak_bytes, reset_peak, TrackingAlloc};
use dynamis_bench::harness::{run, AlgoKind, InitialSolution};
use dynamis_bench::report::{fmt_duration, fmt_mb, Table};
use dynamis_bench::{fast_mode, time_limit};
use dynamis_gen::{datasets, StreamConfig, UpdateStream};
use dynamis_graph::CsrGraph;
use dynamis_static::arw::{arw_local_search, ArwConfig};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let limit = time_limit();
    let kinds = AlgoKind::paper_lineup();
    let mut header = vec!["Graph".to_string()];
    for k in kinds {
        header.push(format!("{} time", k.label()));
        header.push("mem".to_string());
    }
    let mut t = Table::new(header);
    let specs: Vec<_> = datasets::hard().collect();
    let specs = if fast_mode() { &specs[..3] } else { &specs[..] };
    for spec in specs {
        eprintln!("[fig6] {} ...", spec.name);
        let g = spec.build();
        let ups = UpdateStream::new(&g, StreamConfig::default(), spec.seed() ^ 0x75D0)
            .take_updates(spec.scaled_updates(1_000_000));
        let csr = CsrGraph::from_dynamic(&g);
        let best = arw_local_search(
            &csr,
            ArwConfig {
                perturbations: 10,
                seed: 0xa1,
            },
        );
        let init = InitialSolution::Best {
            size: best.len(),
            solution: best,
        };
        let mut cells = vec![spec.name.to_string()];
        for kind in kinds {
            reset_peak();
            let out = run(kind, &g, init.solution(), &ups, limit);
            if out.dnf {
                cells.push("-".into());
                cells.push("-".into());
            } else {
                cells.push(fmt_duration(out.elapsed));
                cells.push(format!(
                    "{} ({})",
                    fmt_mb(out.heap_bytes),
                    fmt_mb(peak_bytes())
                ));
            }
        }
        t.row(cells);
    }
    println!("# Fig. 6 — response time & memory on hard graphs (1M-equivalent updates)\n");
    t.print();
}
