//! **Figure 5** — response time and memory on the easy graphs:
//! (a) time for 100k-equivalent updates, (b) peak memory for the same
//! runs, (c) time for 1M-equivalent updates on the last seven.
//!
//! Usage: `fig5 [a|b|c|all]` (default `all`).

use dynamis_bench::alloc_track::{peak_bytes, reset_peak, TrackingAlloc};
use dynamis_bench::harness::{dataset_workload, run, AlgoKind};
use dynamis_bench::report::{fmt_duration, fmt_mb, Table};
use dynamis_bench::{fast_mode, time_limit};
use dynamis_gen::datasets::{self, DatasetSpec};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn run_panel(specs: &[&DatasetSpec], paper_updates: u64, want_memory: bool, title: &str) {
    let limit = time_limit();
    let mut header = vec!["Graph".to_string()];
    let kinds = AlgoKind::paper_lineup();
    for k in kinds {
        header.push(k.label());
    }
    let mut t = Table::new(header);
    for spec in specs {
        eprintln!("[fig5] {} ...", spec.name);
        let (g, ups, init) = dataset_workload(spec, paper_updates);
        let mut cells = vec![spec.name.to_string()];
        for kind in kinds {
            reset_peak();
            let out = run(kind, &g, init.solution(), &ups, limit);
            let peak = peak_bytes();
            cells.push(if out.dnf {
                "-".into()
            } else if want_memory {
                // Allocator peak covers the engine plus the shared
                // workload; engine-reported bytes isolate the algorithm.
                format!("{} ({})", fmt_mb(out.heap_bytes), fmt_mb(peak))
            } else {
                fmt_duration(out.elapsed)
            });
        }
        t.row(cells);
    }
    println!("\n# {title}\n");
    t.print();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let easy: Vec<_> = datasets::easy().collect();
    let easy = if fast_mode() { &easy[..4] } else { &easy[..] };
    let large: Vec<_> = datasets::easy_large().collect();
    let large = if fast_mode() { &large[..3] } else { &large[..] };
    if which == "a" || which == "all" {
        run_panel(
            easy,
            100_000,
            false,
            "Fig. 5(a) — response time, 100k-equivalent updates, easy graphs",
        );
    }
    if which == "b" || which == "all" {
        run_panel(
            easy,
            100_000,
            true,
            "Fig. 5(b) — memory usage (engine bytes (allocator peak)), easy graphs",
        );
    }
    if which == "c" || which == "all" {
        run_panel(
            large,
            1_000_000,
            false,
            "Fig. 5(c) — response time, 1M-equivalent updates, last seven easy graphs",
        );
    }
}
