//! **Theorem 3 ablation** — the worst-case families `K'_n` and `Q'_d`:
//! the original vertices form a k-maximal independent set whose size is
//! exactly `2/Δ` of the optimum, demonstrating the limit of all
//! swap-based approaches.

use dynamis_bench::report::Table;
use dynamis_gen::structured::{k_prime, q_prime};
use dynamis_graph::CsrGraph;
use dynamis_static::exact::{solve_exact, ExactConfig};
use dynamis_static::verify::is_k_maximal;

fn main() {
    let mut t = Table::new(vec![
        "family",
        "n",
        "m",
        "Δ",
        "|I| (k-max)",
        "α",
        "ratio α/|I|",
        "Δ/2",
        "k-maximal up to",
    ]);
    for n in [4usize, 5, 6, 7] {
        let g = k_prime(n);
        let csr = CsrGraph::from_dynamic(&g);
        let originals: Vec<u32> = (0..n as u32).collect();
        let alpha = solve_exact(&csr, ExactConfig::default())
            .map(|r| r.alpha)
            .unwrap_or(0);
        let kmax = (1..=3)
            .take_while(|&k| is_k_maximal(&csr, &originals, k))
            .last()
            .unwrap_or(0);
        t.row(vec![
            format!("K'_{n}"),
            csr.num_vertices().to_string(),
            csr.num_edges().to_string(),
            csr.max_degree().to_string(),
            originals.len().to_string(),
            alpha.to_string(),
            format!("{:.2}", alpha as f64 / originals.len() as f64),
            format!("{:.2}", csr.max_degree() as f64 / 2.0),
            format!("k={kmax}"),
        ]);
    }
    for d in [3usize, 4] {
        let g = q_prime(d);
        let csr = CsrGraph::from_dynamic(&g);
        let originals: Vec<u32> = (0..(1u32 << d)).collect();
        let alpha = solve_exact(&csr, ExactConfig::default())
            .map(|r| r.alpha)
            .unwrap_or(0);
        let kmax = (1..=4)
            .take_while(|&k| is_k_maximal(&csr, &originals, k))
            .last()
            .unwrap_or(0);
        t.row(vec![
            format!("Q'_{d}"),
            csr.num_vertices().to_string(),
            csr.num_edges().to_string(),
            csr.max_degree().to_string(),
            originals.len().to_string(),
            alpha.to_string(),
            format!("{:.2}", alpha as f64 / originals.len() as f64),
            format!("{:.2}", csr.max_degree() as f64 / 2.0),
            format!("k={kmax}"),
        ]);
    }
    println!("# Theorem 3 — worst-case families: ratio approaches Δ/2 and no k helps\n");
    t.print();
}
