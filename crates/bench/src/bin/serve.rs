//! Serving-layer throughput bench: the single-writer / delta-broadcast
//! architecture of `dynamis-serve` vs. the obvious alternative, a
//! mutex-wrapped engine shared by the writer and every reader.
//!
//! Two workloads over the paper's 100k-vertex Chung–Lu graph (or, with
//! `--graph FILE`, over a real SNAP edge-list trace):
//!
//! * the default mixed insert/delete stream (§V-A), and
//! * the deletion-heavy adversarial stream of
//!   [`dynamis_gen::adversarial`] (insert-burst-then-targeted-delete of
//!   high-degree solution vertices).
//!
//! For each workload × architecture, two phases:
//!
//! * **ingest** — the pure write path, no readers: updates/sec from
//!   first submit to flushed queue (serve's adaptive batching vs. a
//!   per-update lock-and-apply loop);
//! * **mixed** — the same ingest while reader threads issue
//!   point-membership queries nonstop (with a periodic yield so
//!   low-core machines still schedule the writer): updates/sec under
//!   read pressure plus aggregate queries/sec over the same window.
//!
//! Reader count adapts to the machine (`available_parallelism - 2`,
//! clamped to 1..=4) and is recorded in the JSON.
//!
//! Writes `BENCH_PR3.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1`.

use dynamis_bench::alloc_track::TrackingAlloc;
use dynamis_core::{DyTwoSwap, DynamicMis, EngineBuilder};
use dynamis_gen::adversarial::{AdversarialConfig, AdversarialStream};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::io::edgelist::read_dynamic;
use dynamis_graph::{DynamicGraph, Update};
use dynamis_serve::{MisService, ServeConfig, ServiceStats};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

/// Reader threads for the mixed phase: leave room for the writer and
/// the feeder, keep at least one.
fn reader_count() -> usize {
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    cores.saturating_sub(2).clamp(1, 4)
}

struct RunReport {
    workload: &'static str,
    arch: &'static str,
    phase: &'static str,
    readers: usize,
    updates: usize,
    run_secs: f64,
    updates_per_sec: f64,
    queries: u64,
    queries_per_sec: f64,
    solution_size: usize,
    serve_stats: Option<ServiceStats>,
}

/// Pseudo-random query key sequence (Knuth multiplicative hashing) —
/// identical across architectures so reads hit the same distribution.
#[inline]
fn next_key(v: u32) -> u32 {
    v.wrapping_mul(2_654_435_761).wrapping_add(1)
}

fn run_serve(
    workload: &'static str,
    base: &DynamicGraph,
    ups: &[Update],
    n: usize,
    readers: usize,
) -> RunReport {
    let (service, mut reader0) = MisService::spawn(
        EngineBuilder::on(base.clone()).k(2),
        ServeConfig {
            queue_updates: 1024,
            burst: 256,
            log_window: 1024,
            first_seq: 0,
        },
    )
    .expect("engine construction");
    let stop = Arc::new(AtomicBool::new(false));
    let reader_threads: Vec<_> = (0..readers)
        .map(|i| {
            let mut r = service.reader();
            let stop = Arc::clone(&stop);
            let n = n as u32;
            thread::spawn(move || {
                let (mut queries, mut v) = (0u64, i as u32);
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(r.contains(v % n));
                    v = next_key(v);
                    queries += 1;
                    if queries % 64 == 0 {
                        thread::yield_now();
                    }
                }
                queries
            })
        })
        .collect();

    let t = Instant::now();
    for u in ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown(); // flush
    let run_secs = t.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let queries: u64 = reader_threads.into_iter().map(|h| h.join().unwrap()).sum();

    assert_eq!(report.stats.applied as usize, ups.len());
    assert_eq!(report.stats.desyncs, 0, "broadcast must never desync");
    assert_eq!(
        reader0.snapshot(),
        report.solution,
        "reader mirror must equal the engine solution at quiesce"
    );

    RunReport {
        workload,
        arch: "serve",
        phase: if readers == 0 { "ingest" } else { "mixed" },
        readers,
        updates: ups.len(),
        run_secs,
        updates_per_sec: ups.len() as f64 / run_secs,
        queries,
        queries_per_sec: queries as f64 / run_secs,
        solution_size: report.solution.len(),
        serve_stats: Some(report.stats),
    }
}

fn run_mutex(
    workload: &'static str,
    base: &DynamicGraph,
    ups: &[Update],
    n: usize,
    readers: usize,
) -> RunReport {
    let engine: DyTwoSwap = EngineBuilder::on(base.clone())
        .k(2)
        .build_as()
        .expect("engine construction");
    let engine = Arc::new(Mutex::new(engine));
    let stop = Arc::new(AtomicBool::new(false));
    let reader_threads: Vec<_> = (0..readers)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let n = n as u32;
            thread::spawn(move || {
                let (mut queries, mut v) = (0u64, i as u32);
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(engine.lock().unwrap().contains(v % n));
                    v = next_key(v);
                    queries += 1;
                    if queries % 64 == 0 {
                        thread::yield_now();
                    }
                }
                queries
            })
        })
        .collect();

    let t = Instant::now();
    for u in ups {
        engine
            .lock()
            .unwrap()
            .try_apply(u)
            .expect("generated stream is valid");
    }
    let run_secs = t.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let queries: u64 = reader_threads.into_iter().map(|h| h.join().unwrap()).sum();
    let solution_size = engine.lock().unwrap().size();

    RunReport {
        workload,
        arch: "mutex",
        phase: if readers == 0 { "ingest" } else { "mixed" },
        readers,
        updates: ups.len(),
        run_secs,
        updates_per_sec: ups.len() as f64 / run_secs,
        queries,
        queries_per_sec: queries as f64 / run_secs,
        solution_size,
        serve_stats: None,
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates) = if fast {
        (10_000, 20_000)
    } else {
        (100_000, 200_000)
    };
    let (beta, avg_degree, seed) = (2.4, 8.0, 77);
    let graph_file = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--graph")
            .map(|i| args.get(i + 1).expect("--graph needs a FILE").clone())
    };

    let (base, model) = match &graph_file {
        Some(path) => {
            eprintln!("serve: loading edge list {path}");
            (
                read_dynamic(path).expect("readable SNAP edge list"),
                format!("edge list {path}"),
            )
        }
        None => {
            eprintln!(
                "serve: building Chung-Lu base graph (n = {n}, beta = {beta}, d = {avg_degree})"
            );
            (chung_lu(n, beta, avg_degree, seed), "chung_lu".to_string())
        }
    };
    // Query keys and stream generation follow the actual graph, which
    // for a file trace differs from the synthetic n.
    let n = base.capacity();
    let mixed =
        UpdateStream::new(&base, StreamConfig::default(), seed ^ 0xfeed).take_updates(updates);
    let adversarial = AdversarialStream::new(&base, AdversarialConfig::default(), seed ^ 0xdead)
        .take_updates(updates);
    let readers = reader_count();
    eprintln!(
        "serve: m = {}, {} updates per workload, {readers} readers (mixed phase); 8 runs",
        base.num_edges(),
        updates
    );

    let mut reports = Vec::new();
    for (workload, ups) in [("mixed", &mixed), ("adversarial", &adversarial)] {
        reports.push(run_serve(workload, &base, ups, n, 0));
        reports.push(run_mutex(workload, &base, ups, n, 0));
        reports.push(run_serve(workload, &base, ups, n, readers));
        reports.push(run_mutex(workload, &base, ups, n, readers));
    }

    let mut table = dynamis_bench::Table::new(vec![
        "workload",
        "arch",
        "phase",
        "updates/s",
        "queries/s",
        "mean batch",
        "|I|",
    ]);
    for r in &reports {
        table.row(vec![
            r.workload.to_string(),
            r.arch.to_string(),
            r.phase.to_string(),
            format!("{:.0}", r.updates_per_sec),
            if r.readers == 0 {
                "-".to_string()
            } else {
                format!("{:.0}", r.queries_per_sec)
            },
            r.serve_stats
                .as_ref()
                .map_or("-".into(), |s| format!("{:.1}", s.mean_batch())),
            r.solution_size.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"serve\",").unwrap();
    let cores = thread::available_parallelism().map_or(1, |c| c.get());
    writeln!(
        json,
        "  \"workload\": {{\"model\": \"{model}\", \"n\": {n}, \"beta\": {beta}, \
         \"avg_degree\": {avg_degree}, \"updates\": {updates}, \"seed\": {seed}, \
         \"readers\": {readers}, \"cores\": {cores}, \"fast\": {fast}}},"
    )
    .unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, r) in reports.iter().enumerate() {
        let serve_extra = r.serve_stats.as_ref().map_or(String::from("null"), |s| {
            let hist: Vec<String> = s.batch_hist.iter().map(|b| b.to_string()).collect();
            format!(
                "{{\"batches\": {}, \"mean_batch\": {:.2}, \"batch_hist\": [{}], \
                 \"head_seq\": {}, \"resyncs\": {}, \"desyncs\": {}}}",
                s.batches,
                s.mean_batch(),
                hist.join(", "),
                s.head_seq,
                s.resyncs,
                s.desyncs
            )
        });
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"arch\": \"{}\", \"phase\": \"{}\", \
             \"readers\": {}, \"updates\": {}, \
             \"run_secs\": {:.3}, \"updates_per_sec\": {:.1}, \"queries\": {}, \
             \"queries_per_sec\": {:.1}, \"solution_size\": {}, \"serve\": {}}}{}",
            r.workload,
            r.arch,
            r.phase,
            r.readers,
            r.updates,
            r.run_secs,
            r.updates_per_sec,
            r.queries,
            r.queries_per_sec,
            r.solution_size,
            serve_extra,
            if i + 1 < reports.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR3.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("serve: wrote {out}");

    for w in ["mixed", "adversarial"] {
        for phase in ["ingest", "mixed"] {
            let get = |arch: &str, f: fn(&RunReport) -> f64| {
                reports
                    .iter()
                    .find(|r| r.workload == w && r.arch == arch && r.phase == phase)
                    .map(f)
                    .unwrap()
            };
            let queries = if phase == "mixed" {
                format!(
                    ", {:.2}x queries/s",
                    get("serve", |r| r.queries_per_sec) / get("mutex", |r| r.queries_per_sec)
                )
            } else {
                String::new()
            };
            eprintln!(
                "serve: {w}/{phase} — serve vs mutex: {:.2}x updates/s{queries}",
                get("serve", |r| r.updates_per_sec) / get("mutex", |r| r.updates_per_sec),
            );
        }
    }
}
