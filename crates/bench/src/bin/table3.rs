//! **Table III** — gap & accuracy on the last seven easy graphs after
//! 1 000 000-equivalent updates (the "huge number of updates" regime
//! where the index-based baselines degrade).

use dynamis_bench::harness::{dataset_workload, run, AlgoKind};
use dynamis_bench::report::{fmt_acc, fmt_gap, Table};
use dynamis_bench::{fast_mode, time_limit};
use dynamis_gen::datasets;

fn main() {
    let limit = time_limit();
    let mut t = Table::new(vec![
        "Graph",
        "ref(α)",
        "DGOne gap",
        "acc",
        "DGTwo gap",
        "acc",
        "DyARW gap",
        "acc",
        "DyOne gap",
        "acc",
        "gap*",
        "DyTwo gap",
        "acc",
        "gap*",
    ]);
    let specs: Vec<_> = datasets::easy_large().collect();
    let specs = if fast_mode() { &specs[..3] } else { &specs[..] };
    for spec in specs {
        eprintln!("[table3] {} ...", spec.name);
        let (g, ups, init) = dataset_workload(spec, 1_000_000);
        let reference = init.reference();
        let mut cells = vec![
            format!("{}{}", spec.name, if init.is_exact() { "" } else { "†" }),
            reference.to_string(),
        ];
        for kind in [
            AlgoKind::DgOneDis,
            AlgoKind::DgTwoDis,
            AlgoKind::DyArw,
            AlgoKind::DyOneSwap,
            AlgoKind::DyOneSwapPerturb,
            AlgoKind::DyTwoSwap,
            AlgoKind::DyTwoSwapPerturb,
        ] {
            let out = run(kind, &g, init.solution(), &ups, limit);
            let is_star = matches!(
                kind,
                AlgoKind::DyOneSwapPerturb | AlgoKind::DyTwoSwapPerturb
            );
            if out.dnf {
                cells.push("-".into());
                if !is_star {
                    cells.push("-".into());
                }
                continue;
            }
            cells.push(fmt_gap(out.size, reference));
            if !is_star {
                cells.push(fmt_acc(out.size, reference));
            }
        }
        t.row(cells);
    }
    println!("# Table III — gap & accuracy, last seven easy graphs (1M-equivalent updates)\n");
    t.print();
}
