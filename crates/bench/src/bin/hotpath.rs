//! Hot-path throughput bench: intrusive half-edge handles vs. the
//! hash-indexed baseline layout.
//!
//! Runs the paper's default power-law dynamic workload (Chung–Lu base
//! graph + mixed insert/delete update stream) through the production
//! engines (`DyOneSwap` / `DyTwoSwap`, intrusive layout) and through the
//! preserved hash-indexed replicas
//! ([`dynamis_bench::hash_baseline`]), reporting per engine:
//!
//! * updates/sec over the timed update loop,
//! * allocator calls per update (via the tracking global allocator),
//! * bookkeeping hash probes per update — **0 by construction** for the
//!   intrusive layout, one-or-more per count transition for the baseline,
//! * entry-point pair-index probes per update (intrusive engines only;
//!   the baseline buries them inside `insert_edge`/`remove_edge`),
//! * final solution size and approximate heap bytes.
//!
//! Writes `BENCH_PR1.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1` for a quick run.

use dynamis_bench::alloc_track::{self, TrackingAlloc};
use dynamis_bench::hash_baseline::{HashIndexedOneSwap, HashIndexedTwoSwap};
use dynamis_core::{DyOneSwap, DyTwoSwap, DynamicMis, EngineBuilder};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::Update;
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

struct EngineReport {
    name: &'static str,
    layout: &'static str,
    updates_per_sec: f64,
    allocs_per_update: f64,
    hot_hash_probes: u64,
    hot_probes_per_update: f64,
    entry_probes_per_update: f64,
    solution_size: usize,
    heap_bytes: usize,
    build_secs: f64,
    run_secs: f64,
}

fn run_engine<E, B>(
    name: &'static str,
    layout: &'static str,
    build: B,
    ups: &[Update],
) -> EngineReport
where
    E: DynamicMis,
    B: FnOnce() -> E,
    E: HotProbes,
{
    let t0 = Instant::now();
    let mut e = build();
    let build_secs = t0.elapsed().as_secs_f64();

    let probes_before = e.hot_probes();
    let allocs_before = alloc_track::alloc_count();
    let t1 = Instant::now();
    for u in ups {
        e.try_apply(u).expect("generated stream is valid");
    }
    let run_secs = t1.elapsed().as_secs_f64();
    let allocs = alloc_track::alloc_count() - allocs_before;
    let hot = e.hot_probes() - probes_before;
    let n_ups = ups.len() as f64;

    EngineReport {
        name,
        layout,
        updates_per_sec: n_ups / run_secs,
        allocs_per_update: allocs as f64 / n_ups,
        hot_hash_probes: hot,
        hot_probes_per_update: hot as f64 / n_ups,
        entry_probes_per_update: e.entry_probes().map_or(f64::NAN, |p| p as f64 / n_ups),
        solution_size: e.size(),
        heap_bytes: e.heap_bytes(),
        build_secs,
        run_secs,
    }
}

/// Uniform access to the probe counters across the two layouts.
trait HotProbes: DynamicMis {
    fn hot_probes(&self) -> u64;
    fn entry_probes(&self) -> Option<u64> {
        None
    }
}

impl HotProbes for DyOneSwap {
    fn hot_probes(&self) -> u64 {
        self.stats().hot_hash_probes
    }
    fn entry_probes(&self) -> Option<u64> {
        Some(self.stats().entry_hash_probes)
    }
}

impl HotProbes for DyTwoSwap {
    fn hot_probes(&self) -> u64 {
        self.stats().hot_hash_probes
    }
    fn entry_probes(&self) -> Option<u64> {
        Some(self.stats().entry_hash_probes)
    }
}

impl HotProbes for HashIndexedOneSwap {
    fn hot_probes(&self) -> u64 {
        self.hot_hash_probes()
    }
}

impl HotProbes for HashIndexedTwoSwap {
    fn hot_probes(&self) -> u64 {
        self.hot_hash_probes()
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates) = if fast {
        (10_000, 20_000)
    } else {
        (100_000, 200_000)
    };
    let (beta, avg_degree, seed) = (2.4, 8.0, 77);

    eprintln!("hotpath: building Chung-Lu base graph (n = {n}, beta = {beta}, d = {avg_degree})");
    let base = chung_lu(n, beta, avg_degree, seed);
    let ups =
        UpdateStream::new(&base, StreamConfig::default(), seed ^ 0xfeed).take_updates(updates);
    eprintln!(
        "hotpath: m = {}, {} updates; running 4 engines",
        base.num_edges(),
        ups.len()
    );

    let reports = vec![
        run_engine::<DyOneSwap, _>(
            "DyOneSwap",
            "intrusive",
            || EngineBuilder::on(base.clone()).build_as().unwrap(),
            &ups,
        ),
        run_engine::<HashIndexedOneSwap, _>(
            "HashOneSwap",
            "hash-indexed",
            || HashIndexedOneSwap::new(base.clone(), &[]),
            &ups,
        ),
        run_engine::<DyTwoSwap, _>(
            "DyTwoSwap",
            "intrusive",
            || EngineBuilder::on(base.clone()).build_as().unwrap(),
            &ups,
        ),
        run_engine::<HashIndexedTwoSwap, _>(
            "HashTwoSwap",
            "hash-indexed",
            || HashIndexedTwoSwap::new(base.clone(), &[]),
            &ups,
        ),
    ];

    // Human-readable table.
    let mut table = dynamis_bench::Table::new(vec![
        "engine",
        "layout",
        "updates/s",
        "allocs/upd",
        "hot probes/upd",
        "entry probes/upd",
        "|I|",
        "heap MiB",
    ]);
    for r in &reports {
        table.row(vec![
            r.name.to_string(),
            r.layout.to_string(),
            format!("{:.0}", r.updates_per_sec),
            format!("{:.3}", r.allocs_per_update),
            format!("{:.2}", r.hot_probes_per_update),
            if r.entry_probes_per_update.is_nan() {
                "-".to_string()
            } else {
                format!("{:.2}", r.entry_probes_per_update)
            },
            r.solution_size.to_string(),
            format!("{:.1}", r.heap_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    table.print();

    // Hard claims of the PR, asserted at bench time.
    for r in &reports {
        if r.layout == "intrusive" {
            assert_eq!(
                r.hot_hash_probes, 0,
                "{}: intrusive layout must not hash on the inner loop",
                r.name
            );
            // Candidate-vector pooling (C₁ recycle + in-place
            // validation) keeps steady-state allocations near
            // ~1.07 (k=1) / ~1.25 (k=2) — the remainder is the delta
            // vectors the session API hands to callers by ownership.
            // The bound sits between that and the pre-pooling
            // ~1.53/1.85, so a dead pool fails loudly while normal
            // workload variance does not.
            assert!(
                r.allocs_per_update < 1.4,
                "{}: allocs/update regressed to {:.3} (pooling broken?)",
                r.name,
                r.allocs_per_update
            );
        } else {
            assert!(
                r.hot_hash_probes > 0,
                "{}: baseline replica must actually hash",
                r.name
            );
        }
    }

    // JSON report.
    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"hotpath\",").unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"model\": \"chung_lu\", \"n\": {n}, \"beta\": {beta}, \
         \"avg_degree\": {avg_degree}, \"updates\": {}, \"seed\": {seed}, \"fast\": {fast}}},",
        ups.len()
    )
    .unwrap();
    writeln!(json, "  \"engines\": [").unwrap();
    for (i, r) in reports.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"layout\": \"{}\", \"updates_per_sec\": {:.1}, \
             \"allocs_per_update\": {:.4}, \"hot_hash_probes\": {}, \
             \"hot_probes_per_update\": {:.4}, \"entry_probes_per_update\": {}, \
             \"solution_size\": {}, \"heap_bytes\": {}, \"build_secs\": {:.3}, \
             \"run_secs\": {:.3}}}{}",
            r.name,
            r.layout,
            r.updates_per_sec,
            r.allocs_per_update,
            r.hot_hash_probes,
            r.hot_probes_per_update,
            if r.entry_probes_per_update.is_nan() {
                "null".to_string()
            } else {
                format!("{:.4}", r.entry_probes_per_update)
            },
            r.solution_size,
            r.heap_bytes,
            r.build_secs,
            r.run_secs,
            if i + 1 < reports.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR1.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("hotpath: wrote {out}");

    // Headline comparison for the log.
    let speedup = |a: &str, b: &str| {
        let fa = reports
            .iter()
            .find(|r| r.name == a)
            .unwrap()
            .updates_per_sec;
        let fb = reports
            .iter()
            .find(|r| r.name == b)
            .unwrap()
            .updates_per_sec;
        fa / fb
    };
    eprintln!(
        "hotpath: intrusive vs hash-indexed — k=1: {:.2}x, k=2: {:.2}x",
        speedup("DyOneSwap", "HashOneSwap"),
        speedup("DyTwoSwap", "HashTwoSwap"),
    );
}
