//! **Figure 9** — scalability in k: response time (a) and gap/accuracy
//! (b) of the k-maximal engine for k = 1..4 on one mid-size graph.
//! "A larger k means higher solution quality but also higher time
//! consumption."

use dynamis_bench::harness::{dataset_workload, run, AlgoKind};
use dynamis_bench::report::{fmt_acc, fmt_duration, fmt_gap, Table};
use dynamis_bench::time_limit;

fn main() {
    let limit = time_limit();
    let spec = dynamis_gen::datasets::by_name("web-Google").expect("registry");
    let (g, ups, init) = dataset_workload(spec, 100_000);
    let reference = init.reference();
    eprintln!("[fig9] {}: {} updates", spec.name, ups.len());
    let mut t = Table::new(vec!["k", "engine", "time", "gap", "acc"]);
    for k in 1..=4usize {
        // The specialized engines cover k ≤ 2; the generic engine carries
        // the sweep beyond (the paper, too, only builds eager structures
        // for k ≤ 2).
        let kind = match k {
            1 => AlgoKind::DyOneSwap,
            2 => AlgoKind::DyTwoSwap,
            _ => AlgoKind::Generic(k),
        };
        let out = run(kind, &g, init.solution(), &ups, limit);
        t.row(vec![
            k.to_string(),
            kind.label(),
            if out.dnf {
                "-".into()
            } else {
                fmt_duration(out.elapsed)
            },
            if out.dnf {
                "-".into()
            } else {
                fmt_gap(out.size, reference)
            },
            if out.dnf {
                "-".into()
            } else {
                fmt_acc(out.size, reference)
            },
        ]);
    }
    println!(
        "\n# Fig. 9 — effect of k on {} (reference {}{})\n",
        spec.name,
        reference,
        if init.is_exact() { "" } else { "†" }
    );
    t.print();
}
