//! Sharded-maintenance bench with a partitioner axis: degree-greedy vs.
//! locality-aware `ShardMap`s, on the paper's Chung–Lu workload (random
//! — the cut-bound worst case) and a planted-community workload (the
//! massive-real-graph regime the source paper targets, where locality
//! partitioning pays).
//!
//! Three measurement families, per workload:
//!
//! * **partitions** — static cut quality: cut edges / cut share and
//!   per-shard degree loads for P ∈ {1, 2, 4} under both partitioners;
//! * **coordination** — the sharded write path's unit cost: a direct
//!   `ShardedEngine` run over the update stream (batched like the
//!   service ingests) recording `coordination_stats` exchanges and
//!   commands per update for P ∈ {2, 4} under both partitioners. The
//!   solutions are asserted identical across partitioners — the
//!   partition may only move coordination cost;
//! * **runs** — end-to-end service throughput behind the backpressured
//!   ingest queue: the single-writer serve baseline vs. the sharded
//!   service at P = 1 and P ∈ {2, 4} × both partitioners.
//!
//! Per-run the JSON records the core count — barrier-dominated numbers
//! on a 1-core CI box say nothing about multicore scaling, but cut share
//! and exchanges/update are scheduling-independent.
//!
//! Writes `BENCH_PR5.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1`.

use dynamis_bench::alloc_track::TrackingAlloc;
use dynamis_core::{DynamicMis, EngineBuilder, Partitioner};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::structured::planted_communities;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, ShardMap, Update};
use dynamis_serve::{MisService, ServeConfig, ServiceStats};
use dynamis_shard::{ShardedEngine, ShardedService};
use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

const PARTITIONERS: [Partitioner; 2] = [Partitioner::DegreeGreedy, Partitioner::Locality];

struct Workload {
    name: &'static str,
    model: &'static str,
    graph: DynamicGraph,
    ups: Vec<Update>,
    seed: u64,
}

struct PartitionReport {
    workload: &'static str,
    shards: usize,
    partitioner: Partitioner,
    cut_edges: usize,
    cut_share: f64,
    degree_loads: Vec<u64>,
}

struct CoordReport {
    workload: &'static str,
    shards: usize,
    partitioner: Partitioner,
    updates: usize,
    exchanges: u64,
    cmds: u64,
    run_secs: f64,
    solution: Vec<u32>,
}

struct RunReport {
    workload: &'static str,
    arch: String,
    shards: usize,
    partitioner: &'static str,
    updates: usize,
    run_secs: f64,
    updates_per_sec: f64,
    solution_size: usize,
    stats: ServiceStats,
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_updates: 1024,
        burst: 256,
        log_window: 1024,
    }
}

/// Ingest phase: submit the whole stream fire-and-forget, shut down (=
/// flush), report wall-clock throughput.
fn run_single(w: &Workload) -> RunReport {
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(w.graph.clone()).k(2), serve_cfg()).expect("spawn");
    let t = Instant::now();
    for u in &w.ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown();
    let run_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.stats.applied as usize, w.ups.len());
    RunReport {
        workload: w.name,
        arch: "serve".into(),
        shards: 1,
        partitioner: "-",
        updates: w.ups.len(),
        run_secs,
        updates_per_sec: w.ups.len() as f64 / run_secs,
        solution_size: report.solution.len(),
        stats: report.stats,
    }
}

fn run_sharded(w: &Workload, shards: usize, partitioner: Partitioner) -> RunReport {
    let (service, mut reader) = ShardedService::spawn(
        EngineBuilder::on(w.graph.clone())
            .k(2)
            .shards(shards)
            .partitioner(partitioner),
        serve_cfg(),
    )
    .expect("spawn");
    let t = Instant::now();
    for u in &w.ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown();
    let run_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.stats.applied as usize, w.ups.len());
    assert_eq!(
        reader.snapshot(),
        report.solution,
        "merged per-shard cut must equal the final solution"
    );
    RunReport {
        workload: w.name,
        arch: format!("sharded-p{shards}-{partitioner}"),
        shards,
        partitioner: partitioner.name(),
        updates: w.ups.len(),
        run_secs,
        updates_per_sec: w.ups.len() as f64 / run_secs,
        solution_size: report.solution.len(),
        stats: report.stats,
    }
}

/// Direct engine run (no service): the coordination-cost measurement.
/// Batches of 256 mirror the service's ingest bursts.
fn run_coordination(w: &Workload, shards: usize, partitioner: Partitioner) -> CoordReport {
    let mut e: ShardedEngine = EngineBuilder::on(w.graph.clone())
        .k(2)
        .shards(shards)
        .partitioner(partitioner)
        .build_as()
        .expect("build sharded engine");
    let t = Instant::now();
    for chunk in w.ups.chunks(256) {
        e.try_apply_batch(chunk).expect("stream is valid");
    }
    let run_secs = t.elapsed().as_secs_f64();
    let (exchanges, cmds) = e.coordination_stats();
    CoordReport {
        workload: w.name,
        shards,
        partitioner,
        updates: w.ups.len(),
        exchanges,
        cmds,
        run_secs,
        solution: e.solution(),
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates) = if fast {
        (10_000, 8_000)
    } else {
        (100_000, 60_000)
    };
    let seed = 77u64;
    let cores = thread::available_parallelism().map_or(1, |c| c.get());

    eprintln!("shard: building workloads (n = {n}, {updates} updates, {cores} cores)");
    let cl = chung_lu(n, 2.4, 8.0, seed);
    let cl_ups =
        UpdateStream::new(&cl, StreamConfig::default(), seed ^ 0xfeed).take_updates(updates);
    // Planted communities sized to the same n: blocks of 400 (full) /
    // 200 (fast), ~2% of edges crossing.
    let (blocks, block_size) = if fast { (50, 200) } else { (250, 400) };
    let pc = planted_communities(blocks, block_size, 8, n / 12, seed);
    let pc_ups =
        UpdateStream::new(&pc, StreamConfig::default(), seed ^ 0xbeef).take_updates(updates);
    let workloads = [
        Workload {
            name: "chung_lu",
            model: "chung_lu(beta=2.4, d=8)",
            graph: cl,
            ups: cl_ups,
            seed,
        },
        Workload {
            name: "planted",
            model: "planted_communities(intra_degree=8)",
            graph: pc,
            ups: pc_ups,
            seed,
        },
    ];

    // Static partition quality per workload, P, partitioner.
    let mut partitions = Vec::new();
    for w in &workloads {
        let m = w.graph.num_edges() as f64;
        for p in [1usize, 2, 4] {
            for part in PARTITIONERS {
                let map = ShardMap::with_partitioner(&w.graph, p, part);
                let cut = map.cut_edges(&w.graph);
                partitions.push(PartitionReport {
                    workload: w.name,
                    shards: p,
                    partitioner: part,
                    cut_edges: cut,
                    cut_share: cut as f64 / m,
                    degree_loads: map.degree_loads(&w.graph),
                });
            }
        }
    }
    for r in &partitions {
        eprintln!(
            "shard: {} P = {} {}: {} cut edges ({:.1}% of m)",
            r.workload,
            r.shards,
            r.partitioner,
            r.cut_edges,
            100.0 * r.cut_share
        );
    }

    // Coordination cost per update, both partitioners, P ∈ {2, 4}. The
    // solutions must agree pairwise — the partition is coordination-only.
    let mut coordination = Vec::new();
    for w in &workloads {
        for p in [2usize, 4] {
            let reports: Vec<CoordReport> = PARTITIONERS
                .iter()
                .map(|&part| run_coordination(w, p, part))
                .collect();
            assert_eq!(
                reports[0].solution, reports[1].solution,
                "{} P = {p}: partitioner changed the solution",
                w.name
            );
            for r in reports {
                eprintln!(
                    "shard: {} P = {} {}: {:.2} exchanges/update, {:.2} cmds/update",
                    r.workload,
                    r.shards,
                    r.partitioner,
                    r.exchanges as f64 / r.updates as f64,
                    r.cmds as f64 / r.updates as f64
                );
                coordination.push(r);
            }
        }
    }

    // End-to-end service throughput.
    let mut runs = Vec::new();
    for w in &workloads {
        runs.push(run_single(w));
        runs.push(run_sharded(w, 1, Partitioner::DegreeGreedy));
        for p in [2usize, 4] {
            for part in PARTITIONERS {
                runs.push(run_sharded(w, p, part));
            }
        }
    }

    let mut table =
        dynamis_bench::Table::new(vec!["workload", "arch", "updates/s", "mean batch", "|I|"]);
    for r in &runs {
        table.row(vec![
            r.workload.to_string(),
            r.arch.clone(),
            format!("{:.0}", r.updates_per_sec),
            format!("{:.1}", r.stats.mean_batch()),
            r.solution_size.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"shard\",").unwrap();
    writeln!(json, "  \"workloads\": [").unwrap();
    for (i, w) in workloads.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"n\": {}, \"m\": {}, \
             \"updates\": {}, \"seed\": {}, \"cores\": {cores}, \"fast\": {fast}}}{}",
            w.name,
            w.model,
            w.graph.num_vertices(),
            w.graph.num_edges(),
            w.ups.len(),
            w.seed,
            if i + 1 < workloads.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"partitions\": [").unwrap();
    for (i, r) in partitions.iter().enumerate() {
        let loads: Vec<String> = r.degree_loads.iter().map(|l| l.to_string()).collect();
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"shards\": {}, \"partitioner\": \"{}\", \
             \"cut_edges\": {}, \"cut_share\": {:.4}, \"degree_loads\": [{}]}}{}",
            r.workload,
            r.shards,
            r.partitioner,
            r.cut_edges,
            r.cut_share,
            loads.join(", "),
            if i + 1 < partitions.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"coordination\": [").unwrap();
    for (i, r) in coordination.iter().enumerate() {
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"shards\": {}, \"partitioner\": \"{}\", \
             \"updates\": {}, \"exchanges\": {}, \"cmds\": {}, \
             \"exchanges_per_update\": {:.3}, \"cmds_per_update\": {:.3}, \
             \"run_secs\": {:.3}, \"solution_size\": {}}}{}",
            r.workload,
            r.shards,
            r.partitioner,
            r.updates,
            r.exchanges,
            r.cmds,
            r.exchanges as f64 / r.updates as f64,
            r.cmds as f64 / r.updates as f64,
            r.run_secs,
            r.solution.len(),
            if i + 1 < coordination.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, r) in runs.iter().enumerate() {
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"arch\": \"{}\", \"shards\": {}, \
             \"partitioner\": \"{}\", \"updates\": {}, \"run_secs\": {:.3}, \
             \"updates_per_sec\": {:.1}, \"solution_size\": {}, \"batches\": {}, \
             \"mean_batch\": {:.2}}}{}",
            r.workload,
            r.arch,
            r.shards,
            r.partitioner,
            r.updates,
            r.run_secs,
            r.updates_per_sec,
            r.solution_size,
            r.stats.batches,
            r.stats.mean_batch(),
            if i + 1 < runs.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR5.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("shard: wrote {out}");
}
