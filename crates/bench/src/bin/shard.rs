//! Sharded-maintenance throughput bench: the canonical sharded service
//! (`dynamis-shard`, P writer threads behind a coordinator) vs. the
//! single-writer serve layer, on the paper's Chung–Lu workload.
//!
//! Architectures, all behind the same backpressured ingest queue:
//!
//! * **serve** — the PR3 baseline: one writer thread owning `DyTwoSwap`
//!   (the fastest sequential engine) with adaptive batching;
//! * **sharded P ∈ {1, 2, 4}** — the canonical sharded engine: the
//!   coordinator drives P shard cells on their own writer threads, each
//!   publishing its per-shard delta log.
//!
//! The comparison isolates two costs the architecture doc discusses:
//! the *protocol* cost (sharded P = 1 vs. serve — same sequential work,
//! plus phase barriers and canonical ordering) and the *coordination*
//! cost/benefit of spreading cell work across threads (P = 2, 4 vs.
//! P = 1). Per-run the JSON records the partition (cut edges, per-shard
//! degree loads) and the core count — barrier-dominated numbers on a
//! 1-core CI box are expected and say nothing about multicore scaling.
//!
//! Writes `BENCH_PR4.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1`.

use dynamis_bench::alloc_track::TrackingAlloc;
use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, ShardMap, Update};
use dynamis_serve::{MisService, ServeConfig, ServiceStats};
use dynamis_shard::ShardedService;
use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

struct RunReport {
    arch: String,
    shards: usize,
    updates: usize,
    run_secs: f64,
    updates_per_sec: f64,
    solution_size: usize,
    stats: ServiceStats,
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_updates: 1024,
        burst: 256,
        log_window: 1024,
    }
}

/// Ingest phase: submit the whole stream fire-and-forget, shut down (=
/// flush), report wall-clock throughput.
fn run_single(base: &DynamicGraph, ups: &[Update]) -> RunReport {
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(base.clone()).k(2), serve_cfg()).expect("spawn");
    let t = Instant::now();
    for u in ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown();
    let run_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.stats.applied as usize, ups.len());
    RunReport {
        arch: "serve".into(),
        shards: 1,
        updates: ups.len(),
        run_secs,
        updates_per_sec: ups.len() as f64 / run_secs,
        solution_size: report.solution.len(),
        stats: report.stats,
    }
}

fn run_sharded(base: &DynamicGraph, ups: &[Update], shards: usize) -> RunReport {
    let (service, mut reader) = ShardedService::spawn(
        EngineBuilder::on(base.clone()).k(2).shards(shards),
        serve_cfg(),
    )
    .expect("spawn");
    let t = Instant::now();
    for u in ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown();
    let run_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.stats.applied as usize, ups.len());
    assert_eq!(
        reader.snapshot(),
        report.solution,
        "merged per-shard cut must equal the final solution"
    );
    RunReport {
        arch: format!("sharded-p{shards}"),
        shards,
        updates: ups.len(),
        run_secs,
        updates_per_sec: ups.len() as f64 / run_secs,
        solution_size: report.solution.len(),
        stats: report.stats,
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates) = if fast {
        (10_000, 8_000)
    } else {
        (100_000, 60_000)
    };
    let (beta, avg_degree, seed) = (2.4, 8.0, 77);

    eprintln!("shard: building Chung-Lu base graph (n = {n}, beta = {beta}, d = {avg_degree})");
    let base = chung_lu(n, beta, avg_degree, seed);
    let ups =
        UpdateStream::new(&base, StreamConfig::default(), seed ^ 0xfeed).take_updates(updates);
    let cores = thread::available_parallelism().map_or(1, |c| c.get());
    eprintln!(
        "shard: m = {}, {updates} updates, {cores} cores; serve baseline + sharded P in {{1, 2, 4}}",
        base.num_edges()
    );

    // Partition shape per P (the write path pays for the cut).
    let mut partitions = Vec::new();
    for p in [1usize, 2, 4] {
        let map = ShardMap::degree_aware(&base, p);
        partitions.push((p, map.cut_edges(&base), map.degree_loads(&base)));
    }
    for (p, cut, loads) in &partitions {
        eprintln!(
            "shard: P = {p}: {cut} cut edges ({:.1}% of m), degree loads {loads:?}",
            100.0 * *cut as f64 / base.num_edges() as f64
        );
    }

    let mut reports = Vec::new();
    reports.push(run_single(&base, &ups));
    for p in [1usize, 2, 4] {
        reports.push(run_sharded(&base, &ups, p));
    }

    let mut table =
        dynamis_bench::Table::new(vec!["arch", "shards", "updates/s", "mean batch", "|I|"]);
    for r in &reports {
        table.row(vec![
            r.arch.clone(),
            r.shards.to_string(),
            format!("{:.0}", r.updates_per_sec),
            format!("{:.1}", r.stats.mean_batch()),
            r.solution_size.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"shard\",").unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"model\": \"chung_lu\", \"n\": {n}, \"beta\": {beta}, \
         \"avg_degree\": {avg_degree}, \"updates\": {updates}, \"seed\": {seed}, \
         \"cores\": {cores}, \"fast\": {fast}}},"
    )
    .unwrap();
    writeln!(json, "  \"partitions\": [").unwrap();
    for (i, (p, cut, loads)) in partitions.iter().enumerate() {
        let loads: Vec<String> = loads.iter().map(|l| l.to_string()).collect();
        writeln!(
            json,
            "    {{\"shards\": {p}, \"cut_edges\": {cut}, \"degree_loads\": [{}]}}{}",
            loads.join(", "),
            if i + 1 < partitions.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, r) in reports.iter().enumerate() {
        writeln!(
            json,
            "    {{\"arch\": \"{}\", \"shards\": {}, \"updates\": {}, \"run_secs\": {:.3}, \
             \"updates_per_sec\": {:.1}, \"solution_size\": {}, \"batches\": {}, \
             \"mean_batch\": {:.2}}}{}",
            r.arch,
            r.shards,
            r.updates,
            r.run_secs,
            r.updates_per_sec,
            r.solution_size,
            r.stats.batches,
            r.stats.mean_batch(),
            if i + 1 < reports.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("shard: wrote {out}");

    let base_rate = reports[0].updates_per_sec;
    for r in &reports[1..] {
        eprintln!(
            "shard: {} vs serve: {:.2}x updates/s",
            r.arch,
            r.updates_per_sec / base_rate
        );
    }
}
