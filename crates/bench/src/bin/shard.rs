//! Sharded-maintenance bench with a partitioner axis: degree-greedy vs.
//! locality-aware `ShardMap`s, on the paper's Chung–Lu workload (random
//! — the cut-bound worst case), a planted-community workload (the
//! massive-real-graph regime the source paper targets, where locality
//! partitioning pays), and a *partition-local* planted workload whose
//! update stream is region-biased (`UpdateStream::with_regions`) — the
//! traffic shape a sharded deployment actually serves. Pass
//! `--graph FILE` to additionally bench a real SNAP edge-list trace.
//!
//! Three measurement families, per workload:
//!
//! * **partitions** — static cut quality: cut edges / cut share and
//!   per-shard degree loads for P ∈ {1, 2, 4} under both partitioners;
//! * **coordination** — the sharded write path's unit cost: a direct
//!   `ShardedEngine` run over the update stream (batched like the
//!   service ingests) recording `coordination_stats` exchanges and
//!   commands per update plus the fused-round counters
//!   (`swap_round_stats`), for P ∈ {2, 4} under both partitioners, and
//!   a `swap_wave(1)` serialized-commit run at P = 4 to isolate what
//!   concurrent independent commits save. Solutions are asserted
//!   identical across partitioners — partition and wave only move
//!   coordination cost;
//! * **runs** — end-to-end service throughput behind the backpressured
//!   ingest queue: the single-writer serve baseline vs. the sharded
//!   service at P = 1 and P ∈ {2, 4} × both partitioners.
//!
//! The JSON records the detected core count (top-level `"cores"` and
//! per-workload) — barrier-dominated numbers on a 1-core CI box say
//! nothing about multicore scaling, but cut share and exchanges/update
//! are scheduling-independent.
//!
//! Writes `BENCH_PR6.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1`.

use dynamis_bench::alloc_track::TrackingAlloc;
use dynamis_core::{DynamicMis, EngineBuilder, Partitioner};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::structured::planted_communities;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::io::edgelist::read_dynamic;
use dynamis_graph::{DynamicGraph, ShardMap, Update};
use dynamis_serve::{MisService, ServeConfig, ServiceStats};
use dynamis_shard::{ShardedEngine, ShardedService, SwapRoundStats};
use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

const PARTITIONERS: [Partitioner; 2] = [Partitioner::DegreeGreedy, Partitioner::Locality];

struct Workload {
    name: String,
    model: String,
    graph: DynamicGraph,
    ups: Vec<Update>,
    seed: u64,
}

struct PartitionReport {
    workload: String,
    shards: usize,
    partitioner: Partitioner,
    cut_edges: usize,
    cut_share: f64,
    degree_loads: Vec<u64>,
}

struct CoordReport {
    workload: String,
    shards: usize,
    partitioner: Partitioner,
    /// Per-round co-commit cap (0 = unlimited, the fused default).
    wave: usize,
    updates: usize,
    exchanges: u64,
    cmds: u64,
    swap_stats: SwapRoundStats,
    run_secs: f64,
    solution: Vec<u32>,
}

struct RunReport {
    workload: String,
    arch: String,
    shards: usize,
    partitioner: &'static str,
    updates: usize,
    run_secs: f64,
    updates_per_sec: f64,
    solution_size: usize,
    stats: ServiceStats,
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_updates: 1024,
        burst: 256,
        log_window: 1024,
        first_seq: 0,
    }
}

/// Ingest phase: submit the whole stream fire-and-forget, shut down (=
/// flush), report wall-clock throughput.
fn run_single(w: &Workload) -> RunReport {
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(w.graph.clone()).k(2), serve_cfg()).expect("spawn");
    let t = Instant::now();
    for u in &w.ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown();
    let run_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.stats.applied as usize, w.ups.len());
    RunReport {
        workload: w.name.clone(),
        arch: "serve".into(),
        shards: 1,
        partitioner: "-",
        updates: w.ups.len(),
        run_secs,
        updates_per_sec: w.ups.len() as f64 / run_secs,
        solution_size: report.solution.len(),
        stats: report.stats,
    }
}

fn run_sharded(w: &Workload, shards: usize, partitioner: Partitioner) -> RunReport {
    let (service, mut reader) = ShardedService::spawn(
        EngineBuilder::on(w.graph.clone())
            .k(2)
            .shards(shards)
            .partitioner(partitioner),
        serve_cfg(),
    )
    .expect("spawn");
    let t = Instant::now();
    for u in &w.ups {
        service.submit_detached(u.clone()).expect("service alive");
    }
    let report = service.shutdown();
    let run_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.stats.applied as usize, w.ups.len());
    assert_eq!(
        reader.snapshot(),
        report.solution,
        "merged per-shard cut must equal the final solution"
    );
    RunReport {
        workload: w.name.clone(),
        arch: format!("sharded-p{shards}-{partitioner}"),
        shards,
        partitioner: partitioner.name(),
        updates: w.ups.len(),
        run_secs,
        updates_per_sec: w.ups.len() as f64 / run_secs,
        solution_size: report.solution.len(),
        stats: report.stats,
    }
}

/// Direct engine run (no service): the coordination-cost measurement.
/// Batches of 256 mirror the service's ingest bursts. `wave` caps the
/// per-round co-commits (0 = unlimited fused rounds; 1 serializes
/// commits like the pre-fused protocol).
fn run_coordination(
    w: &Workload,
    shards: usize,
    partitioner: Partitioner,
    wave: usize,
) -> CoordReport {
    let mut e: ShardedEngine = EngineBuilder::on(w.graph.clone())
        .k(2)
        .shards(shards)
        .partitioner(partitioner)
        .swap_wave(wave)
        .build_as()
        .expect("build sharded engine");
    let t = Instant::now();
    for chunk in w.ups.chunks(256) {
        e.try_apply_batch(chunk).expect("stream is valid");
    }
    let run_secs = t.elapsed().as_secs_f64();
    let (exchanges, cmds) = e.coordination_stats();
    CoordReport {
        workload: w.name.clone(),
        shards,
        partitioner,
        wave,
        updates: w.ups.len(),
        exchanges,
        cmds,
        swap_stats: e.swap_round_stats(),
        run_secs,
        solution: e.solution(),
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates) = if fast {
        (10_000, 8_000)
    } else {
        (100_000, 60_000)
    };
    let seed = 77u64;
    let cores = thread::available_parallelism().map_or(1, |c| c.get());
    let graph_file = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--graph")
            .map(|i| args.get(i + 1).expect("--graph needs a FILE").clone())
    };

    eprintln!("shard: building workloads (n = {n}, {updates} updates, {cores} cores)");
    let cl = chung_lu(n, 2.4, 8.0, seed);
    let cl_ups =
        UpdateStream::new(&cl, StreamConfig::default(), seed ^ 0xfeed).take_updates(updates);
    // Planted communities sized to the same n: blocks of 400 (full) /
    // 200 (fast), ~2% of edges crossing.
    let (blocks, block_size) = if fast { (50, 200) } else { (250, 400) };
    let pc = planted_communities(blocks, block_size, 8, n / 12, seed);
    let pc_ups =
        UpdateStream::new(&pc, StreamConfig::default(), seed ^ 0xbeef).take_updates(updates);
    // The partition-local variant: same planted graph, but the update
    // stream keeps 90% of edge-insert endpoints inside one community —
    // the traffic shape a locality partition turns into shard-local
    // work.
    let regions: Vec<u32> = (0..pc.capacity() as u32)
        .map(|v| v / block_size as u32)
        .collect();
    let pl_ups =
        UpdateStream::with_regions(&pc, StreamConfig::default(), seed ^ 0xcafe, &regions, 0.9)
            .take_updates(updates);
    let mut workloads = vec![
        Workload {
            name: "chung_lu".into(),
            model: "chung_lu(beta=2.4, d=8)".into(),
            graph: cl,
            ups: cl_ups,
            seed,
        },
        Workload {
            name: "planted".into(),
            model: "planted_communities(intra_degree=8)".into(),
            graph: pc.clone(),
            ups: pc_ups,
            seed,
        },
        Workload {
            name: "planted_local".into(),
            model: "planted_communities + region-biased stream (bias=0.9)".into(),
            graph: pc,
            ups: pl_ups,
            seed,
        },
    ];
    if let Some(path) = graph_file {
        eprintln!("shard: loading edge list {path}");
        let g = read_dynamic(&path).expect("readable SNAP edge list");
        let ups =
            UpdateStream::new(&g, StreamConfig::default(), seed ^ 0xf11e).take_updates(updates);
        let stem = std::path::Path::new(&path)
            .file_stem()
            .map_or_else(|| "file".to_string(), |s| s.to_string_lossy().into_owned());
        eprintln!(
            "shard: {stem}: n = {}, m = {}",
            g.num_vertices(),
            g.num_edges()
        );
        workloads.push(Workload {
            name: format!("file_{stem}"),
            model: format!("edge list {path}"),
            graph: g,
            ups,
            seed,
        });
    }

    // Static partition quality per workload, P, partitioner.
    let mut partitions = Vec::new();
    for w in &workloads {
        let m = w.graph.num_edges() as f64;
        for p in [1usize, 2, 4] {
            for part in PARTITIONERS {
                let map = ShardMap::with_partitioner(&w.graph, p, part);
                let cut = map.cut_edges(&w.graph);
                partitions.push(PartitionReport {
                    workload: w.name.clone(),
                    shards: p,
                    partitioner: part,
                    cut_edges: cut,
                    cut_share: cut as f64 / m,
                    degree_loads: map.degree_loads(&w.graph),
                });
            }
        }
    }
    for r in &partitions {
        eprintln!(
            "shard: {} P = {} {}: {} cut edges ({:.1}% of m)",
            r.workload,
            r.shards,
            r.partitioner,
            r.cut_edges,
            100.0 * r.cut_share
        );
    }

    // Coordination cost per update: fused rounds (wave = 0) at
    // P ∈ {2, 4} plus serialized commits (wave = 1) at P = 4, both
    // partitioners each. Solutions must agree across partitioners within
    // a wave setting — the partition is coordination-only. (Wave changes
    // *which* canonical function runs, so fused and serialized solutions
    // are not compared.)
    let mut coordination = Vec::new();
    for w in &workloads {
        for (p, wave) in [(2usize, 0usize), (4, 0), (4, 1)] {
            let reports: Vec<CoordReport> = PARTITIONERS
                .iter()
                .map(|&part| run_coordination(w, p, part, wave))
                .collect();
            assert_eq!(
                reports[0].solution, reports[1].solution,
                "{} P = {p} wave = {wave}: partitioner changed the solution",
                w.name
            );
            for r in reports {
                eprintln!(
                    "shard: {} P = {} {} wave = {}: {:.2} exchanges/update, \
                     {:.2} cmds/update, {} swaps in {} rounds (max wave {}, {} deferred)",
                    r.workload,
                    r.shards,
                    r.partitioner,
                    r.wave,
                    r.exchanges as f64 / r.updates as f64,
                    r.cmds as f64 / r.updates as f64,
                    r.swap_stats.swaps,
                    r.swap_stats.rounds,
                    r.swap_stats.max_wave,
                    r.swap_stats.deferred
                );
                coordination.push(r);
            }
        }
    }

    // End-to-end service throughput.
    let mut runs = Vec::new();
    for w in &workloads {
        runs.push(run_single(w));
        runs.push(run_sharded(w, 1, Partitioner::DegreeGreedy));
        for p in [2usize, 4] {
            for part in PARTITIONERS {
                runs.push(run_sharded(w, p, part));
            }
        }
    }

    let mut table =
        dynamis_bench::Table::new(vec!["workload", "arch", "updates/s", "mean batch", "|I|"]);
    for r in &runs {
        table.row(vec![
            r.workload.to_string(),
            r.arch.clone(),
            format!("{:.0}", r.updates_per_sec),
            format!("{:.1}", r.stats.mean_batch()),
            r.solution_size.to_string(),
        ]);
    }
    table.print();

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"shard\",").unwrap();
    writeln!(json, "  \"cores\": {cores},").unwrap();
    writeln!(json, "  \"workloads\": [").unwrap();
    for (i, w) in workloads.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \"model\": \"{}\", \"n\": {}, \"m\": {}, \
             \"updates\": {}, \"seed\": {}, \"cores\": {cores}, \"fast\": {fast}}}{}",
            w.name,
            w.model,
            w.graph.num_vertices(),
            w.graph.num_edges(),
            w.ups.len(),
            w.seed,
            if i + 1 < workloads.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"partitions\": [").unwrap();
    for (i, r) in partitions.iter().enumerate() {
        let loads: Vec<String> = r.degree_loads.iter().map(|l| l.to_string()).collect();
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"shards\": {}, \"partitioner\": \"{}\", \
             \"cut_edges\": {}, \"cut_share\": {:.4}, \"degree_loads\": [{}]}}{}",
            r.workload,
            r.shards,
            r.partitioner,
            r.cut_edges,
            r.cut_share,
            loads.join(", "),
            if i + 1 < partitions.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"coordination\": [").unwrap();
    for (i, r) in coordination.iter().enumerate() {
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"shards\": {}, \"partitioner\": \"{}\", \
             \"wave\": {}, \"updates\": {}, \"exchanges\": {}, \"cmds\": {}, \
             \"exchanges_per_update\": {:.3}, \"cmds_per_update\": {:.3}, \
             \"swap_rounds\": {}, \"swaps\": {}, \"max_wave\": {}, \"deferred\": {}, \
             \"run_secs\": {:.3}, \"solution_size\": {}}}{}",
            r.workload,
            r.shards,
            r.partitioner,
            r.wave,
            r.updates,
            r.exchanges,
            r.cmds,
            r.exchanges as f64 / r.updates as f64,
            r.cmds as f64 / r.updates as f64,
            r.swap_stats.rounds,
            r.swap_stats.swaps,
            r.swap_stats.max_wave,
            r.swap_stats.deferred,
            r.run_secs,
            r.solution.len(),
            if i + 1 < coordination.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"runs\": [").unwrap();
    for (i, r) in runs.iter().enumerate() {
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"arch\": \"{}\", \"shards\": {}, \
             \"partitioner\": \"{}\", \"updates\": {}, \"run_secs\": {:.3}, \
             \"updates_per_sec\": {:.1}, \"solution_size\": {}, \"batches\": {}, \
             \"mean_batch\": {:.2}}}{}",
            r.workload,
            r.arch,
            r.shards,
            r.partitioner,
            r.updates,
            r.run_secs,
            r.updates_per_sec,
            r.solution_size,
            r.stats.batches,
            r.stats.mean_batch(),
            if i + 1 < runs.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR6.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("shard: wrote {out}");
}
