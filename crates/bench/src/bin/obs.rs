//! Telemetry overhead guard: the engine hot path with stage timers
//! enabled must stay within a few percent of the same loop with the
//! process-wide obs gate off.
//!
//! Runs the paper's default power-law dynamic workload through
//! `DyOneSwap` and `DyTwoSwap`. Measuring the two modes as separate
//! whole runs does not work on a shared host — the machines this runs
//! on show double-digit throughput swings at multi-second scale, far
//! above the ≲3% effect under test. Instead each pass over the stream
//! **interleaves** the modes at millisecond granularity: the stream is
//! split into chunks and the obs gate alternates per chunk, so any
//! interference burst lands on both modes in nearly equal measure.
//! The alternation phase flips on every pass, cancelling both
//! position-in-stream cost differences and any first-vs-second bias
//! within a chunk pair. Each pass yields one `t_enabled/t_disabled`
//! ratio; the reported overhead is the median across passes.
//!
//! Reports per engine: per-mode updates/sec (over summed chunk times)
//! and the median relative overhead. The enabled chunks' registry
//! snapshot is embedded in the JSON so the report doubles as evidence
//! the timers actually recorded (a gate stuck off would show 0%
//! overhead *and* empty histograms).
//!
//! Writes `BENCH_PR8.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1` for a quick run. The ≤3% bound is asserted only
//! under `DYNAMIS_ENFORCE_OVERHEAD=1` — even interleaved measurement
//! can flake on a badly disturbed runner, so the hard gate is opt-in.

use dynamis_core::{DyOneSwap, DyTwoSwap, DynamicMis, EngineBuilder};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, Update};
use std::fmt::Write as _;
use std::time::Instant;

const MAX_OVERHEAD_PCT: f64 = 3.0;
/// Updates per timed chunk: ~2–4 ms of work, two orders of magnitude
/// finer than the interference bursts being cancelled.
const CHUNK: usize = 2048;

struct ModeTotals {
    /// Summed chunk wall time across all passes, seconds.
    secs: f64,
    updates: u64,
    updates_per_sec: f64,
}

struct EngineReport {
    name: &'static str,
    disabled: ModeTotals,
    enabled: ModeTotals,
    overhead_pct: f64,
}

/// One pass: a fresh engine consumes the whole stream, the obs gate
/// alternating per chunk (`phase` flips which parity is enabled).
/// Returns (disabled_secs, enabled_secs, disabled_updates,
/// enabled_updates) for this pass; construction is untimed — it is
/// identical in both modes and would only dilute the signal.
fn interleaved_pass<E, B>(build: &B, ups: &[Update], phase: usize) -> (f64, f64, u64, u64)
where
    E: DynamicMis,
    B: Fn() -> E,
{
    let mut engine = build();
    let (mut t_dis, mut t_en) = (0.0, 0.0);
    let (mut n_dis, mut n_en) = (0u64, 0u64);
    for (ci, chunk) in ups.chunks(CHUNK).enumerate() {
        let on = (ci + phase) % 2 == 1;
        dynamis_obs::set_enabled(on);
        let t = Instant::now();
        for u in chunk {
            engine.try_apply(u).expect("generated stream is valid");
        }
        let secs = t.elapsed().as_secs_f64();
        if on {
            t_en += secs;
            n_en += chunk.len() as u64;
        } else {
            t_dis += secs;
            n_dis += chunk.len() as u64;
        }
    }
    // Keep the solution observable so the loop cannot be dead-code
    // eliminated out from under the timers.
    assert!(engine.size() > 0);
    (t_dis, t_en, n_dis, n_en)
}

fn bench_engine<E, B>(name: &'static str, build: B, ups: &[Update], passes: usize) -> EngineReport
where
    E: DynamicMis,
    B: Fn() -> E,
{
    // One untimed warm-up pass to fault in the allocator and branch
    // predictors before anything is measured.
    interleaved_pass(&build, ups, 0);

    let (mut dis, mut en) = (
        ModeTotals {
            secs: 0.0,
            updates: 0,
            updates_per_sec: 0.0,
        },
        ModeTotals {
            secs: 0.0,
            updates: 0,
            updates_per_sec: 0.0,
        },
    );
    let mut ratios = Vec::with_capacity(passes);
    for phase in 0..passes {
        let (t_dis, t_en, n_dis, n_en) = interleaved_pass(&build, ups, phase);
        dis.secs += t_dis;
        dis.updates += n_dis;
        en.secs += t_en;
        en.updates += n_en;
        // Normalize by update counts: with an odd chunk count the two
        // modes cover slightly different shares of the stream.
        ratios.push((t_en / n_en as f64) / (t_dis / n_dis as f64));
    }
    dynamis_obs::set_enabled(false);
    dis.updates_per_sec = dis.updates as f64 / dis.secs;
    en.updates_per_sec = en.updates as f64 / en.secs;

    // Median across passes: robust to a badly disturbed pass.
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = if ratios.len() % 2 == 1 {
        ratios[ratios.len() / 2]
    } else {
        (ratios[ratios.len() / 2 - 1] + ratios[ratios.len() / 2]) / 2.0
    };

    EngineReport {
        name,
        disabled: dis,
        enabled: en,
        overhead_pct: (median - 1.0) * 100.0,
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates, passes) = if fast {
        (10_000, 20_000, 5)
    } else {
        (100_000, 200_000, 9)
    };
    let (beta, avg_degree, seed) = (2.4, 8.0, 77);

    eprintln!("obs: building Chung-Lu base graph (n = {n}, beta = {beta}, d = {avg_degree})");
    let base = chung_lu(n, beta, avg_degree, seed);
    let ups =
        UpdateStream::new(&base, StreamConfig::default(), seed ^ 0xfeed).take_updates(updates);
    eprintln!(
        "obs: m = {}, {} updates; {passes} interleaved passes ({CHUNK}-update chunks) x 2 engines",
        base.num_edges(),
        ups.len()
    );

    let build1 = {
        let base: DynamicGraph = base.clone();
        move || -> DyOneSwap { EngineBuilder::on(base.clone()).build_as().unwrap() }
    };
    let build2 = {
        let base = base.clone();
        move || -> DyTwoSwap { EngineBuilder::on(base.clone()).build_as().unwrap() }
    };
    let reports = vec![
        bench_engine("DyOneSwap", build1, &ups, passes),
        bench_engine("DyTwoSwap", build2, &ups, passes),
    ];

    // The enabled chunks above populated the global registry; a
    // zero-count core histogram here means the gate never opened and
    // the "overhead" numbers are vacuous.
    let snap = dynamis_obs::global().snapshot();
    let core_samples = snap.histogram("core_apply_ns").map_or(0, |h| h.count);
    assert!(
        core_samples > 0,
        "enabled chunks must record core_apply_ns samples"
    );

    let mut table = dynamis_bench::Table::new(vec![
        "engine",
        "off updates/s",
        "on updates/s",
        "overhead %",
    ]);
    for r in &reports {
        table.row(vec![
            r.name.to_string(),
            format!("{:.0}", r.disabled.updates_per_sec),
            format!("{:.0}", r.enabled.updates_per_sec),
            format!("{:+.2}", r.overhead_pct),
        ]);
    }
    table.print();

    let enforce = std::env::var("DYNAMIS_ENFORCE_OVERHEAD").is_ok_and(|v| v == "1");
    for r in &reports {
        if enforce {
            assert!(
                r.overhead_pct <= MAX_OVERHEAD_PCT,
                "{}: telemetry overhead {:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget",
                r.name,
                r.overhead_pct
            );
        } else if r.overhead_pct > MAX_OVERHEAD_PCT {
            eprintln!(
                "obs: WARNING {}: overhead {:.2}% exceeds {MAX_OVERHEAD_PCT}% \
                 (not enforced; set DYNAMIS_ENFORCE_OVERHEAD=1 to fail)",
                r.name, r.overhead_pct
            );
        }
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"obs-overhead\",").unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"model\": \"chung_lu\", \"n\": {n}, \"beta\": {beta}, \
         \"avg_degree\": {avg_degree}, \"updates\": {}, \"seed\": {seed}, \
         \"passes\": {passes}, \"chunk\": {CHUNK}, \"fast\": {fast}}},",
        ups.len()
    )
    .unwrap();
    writeln!(json, "  \"max_overhead_pct\": {MAX_OVERHEAD_PCT},").unwrap();
    writeln!(json, "  \"enforced\": {enforce},").unwrap();
    writeln!(json, "  \"engines\": [").unwrap();
    for (i, r) in reports.iter().enumerate() {
        writeln!(
            json,
            "    {{\"name\": \"{}\", \
             \"disabled\": {{\"secs\": {:.4}, \"updates\": {}, \"updates_per_sec\": {:.1}}}, \
             \"enabled\": {{\"secs\": {:.4}, \"updates\": {}, \"updates_per_sec\": {:.1}}}, \
             \"overhead_pct\": {:.3}}}{}",
            r.name,
            r.disabled.secs,
            r.disabled.updates,
            r.disabled.updates_per_sec,
            r.enabled.secs,
            r.enabled.updates,
            r.enabled.updates_per_sec,
            r.overhead_pct,
            if i + 1 < reports.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"snapshot\": {}", snap.to_json()).unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("obs: wrote {out}");
}
