//! **Table II** — gap to the independence number and accuracy on the
//! easy graphs after 100 000-equivalent updates, for DGOneDIS, DGTwoDIS,
//! DyARW, DyOneSwap (gap/acc/gap*) and DyTwoSwap (gap/acc/gap*).

use dynamis_bench::harness::{dataset_workload, run, AlgoKind};
use dynamis_bench::report::{fmt_acc, fmt_gap, Table};
use dynamis_bench::{fast_mode, time_limit};
use dynamis_gen::datasets;

fn main() {
    let limit = time_limit();
    let mut t = Table::new(vec![
        "Graph",
        "ref(α)",
        "DGOne gap",
        "acc",
        "DGTwo gap",
        "acc",
        "DyARW gap",
        "acc",
        "DyOne gap",
        "acc",
        "gap*",
        "DyTwo gap",
        "acc",
        "gap*",
    ]);
    let specs: Vec<_> = datasets::easy().collect();
    let specs = if fast_mode() { &specs[..4] } else { &specs[..] };
    for spec in specs {
        eprintln!("[table2] {} ...", spec.name);
        let (g, ups, init) = dataset_workload(spec, 100_000);
        let reference = init.reference();
        let mut cells = vec![
            format!("{}{}", spec.name, if init.is_exact() { "" } else { "†" }),
            reference.to_string(),
        ];
        for kind in [
            AlgoKind::DgOneDis,
            AlgoKind::DgTwoDis,
            AlgoKind::DyArw,
            AlgoKind::DyOneSwap,
            AlgoKind::DyOneSwapPerturb,
            AlgoKind::DyTwoSwap,
            AlgoKind::DyTwoSwapPerturb,
        ] {
            let out = run(kind, &g, init.solution(), &ups, limit);
            let is_star = matches!(
                kind,
                AlgoKind::DyOneSwapPerturb | AlgoKind::DyTwoSwapPerturb
            );
            if out.dnf {
                cells.push("-".into());
                if !is_star {
                    cells.push("-".into());
                }
                continue;
            }
            cells.push(fmt_gap(out.size, reference));
            if !is_star {
                cells.push(fmt_acc(out.size, reference));
            }
        }
        t.row(cells);
    }
    println!("# Table II — gap & accuracy on easy graphs (100k-equivalent updates)");
    println!("# († = exact solver timed out; reference is the ARW best, as in Table IV)\n");
    t.print();
}
