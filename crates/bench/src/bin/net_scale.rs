//! Network scale-out bench: the hub worker pool, filtered
//! subscriptions, and the snapshot cold-start, measured end to end
//! over loopback against a child-process server (so client and server
//! file-descriptor budgets stay separate, as in `net.rs`).
//!
//! Three phases:
//!
//! - **fan-out** — the same subscriber-heavy load against 1 hub and
//!   against 4 hubs; records aggregate delivery throughput
//!   (subscriber events per second). On a multi-core box the 4-hub
//!   run must beat the single hub; on one core the numbers are
//!   recorded but the ordering is not asserted.
//! - **filtered** — every odd subscriber takes `shard:0/2` and every
//!   subscriber cold-starts via bootstrap; asserts zero out-of-filter
//!   deliveries and full stream integrity.
//! - **cold-start** — a mirror seeded by `bootstrap` and a mirror
//!   replayed from sequence 0 must both equal the server snapshot at
//!   quiesce (history deeper than the log window, so the bootstrap
//!   base is non-zero).
//!
//! Writes `BENCH_PR10.json` (override with `DYNAMIS_BENCH_OUT`);
//! honors `DYNAMIS_FAST=1`.

use dynamis_core::EngineBuilder;
use dynamis_gen::powerlaw::chung_lu;
use dynamis_graph::Update;
use dynamis_net::{
    load, LoadConfig, NetBackend, NetClient, NetConfig, NetError, NetServer, RemoteMirror,
    SubEvent, SubFilter,
};
use dynamis_serve::{MisService, ServeConfig};
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Graph-model constants shared by parent and child.
const BETA: f64 = 2.4;
const AVG_DEGREE: f64 = 8.0;
const GRAPH_SEED: u64 = 83;

/// The child role: build the graph, serve it with the requested hub
/// count, announce `LISTENING <addr>`, run until stdin closes.
fn child_serve(n: usize, hubs: usize) -> ! {
    let base = chung_lu(n, BETA, AVG_DEGREE, GRAPH_SEED);
    let (service, _reader) =
        MisService::spawn(EngineBuilder::on(base).k(2), ServeConfig::default())
            .expect("engine construction");
    let handle = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::single(&service),
        NetConfig {
            hubs,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    println!("LISTENING {}", handle.local_addr());
    std::io::stdout().flush().expect("announce address");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.shutdown();
    service.shutdown();
    std::process::exit(0);
}

/// A running child server plus the handle needed to stop it cleanly.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(n: usize, hubs: usize) -> Server {
        let exe = std::env::current_exe().expect("own path");
        let mut child = Command::new(exe)
            .env("DYNAMIS_NET_CHILD", n.to_string())
            .env("DYNAMIS_NET_HUBS", hubs.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn server child");
        let mut out = BufReader::new(child.stdout.take().expect("child stdout piped"));
        let addr = {
            let mut line = String::new();
            loop {
                line.clear();
                if out.read_line(&mut line).expect("child announces") == 0 {
                    panic!("server child exited before announcing its address");
                }
                if let Some(rest) = line.trim().strip_prefix("LISTENING ") {
                    break rest.to_string();
                }
            }
        };
        Server { child, addr }
    }

    fn stop(mut self) {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("child exit status");
        assert!(status.success(), "server child did not shut down cleanly");
    }
}

/// Applies subscription events until the mirror reaches `target`.
fn drain_to(sub: &mut dynamis_net::Subscription, mirror: &mut RemoteMirror, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while mirror.seq() < target {
        assert!(
            Instant::now() < deadline,
            "drain timed out at seq {}",
            mirror.seq()
        );
        match sub.next_event() {
            Ok(Some(ev)) => mirror.apply_event(&ev).unwrap(),
            Ok(None) => {}
            Err(e) => panic!("subscription failed at seq {}: {e}", mirror.seq()),
        }
    }
}

fn main() {
    if let Ok(v) = std::env::var("DYNAMIS_NET_CHILD") {
        let hubs = std::env::var("DYNAMIS_NET_HUBS")
            .ok()
            .and_then(|h| h.parse().ok())
            .unwrap_or(1);
        child_serve(
            v.parse().expect("DYNAMIS_NET_CHILD carries the graph size"),
            hubs,
        );
    }

    let fast = dynamis_bench::fast_mode();
    let (n, subscribers, writers, updates) = if fast {
        (2_000, 300, 2, 2_000)
    } else {
        (10_000, 4_000, 4, 10_000)
    };
    let cores = thread::available_parallelism().map_or(1, |c| c.get());
    eprintln!(
        "net_scale: {subscribers} subscribers + {writers} writers × {updates} updates \
         against n = {n} on {cores} cores"
    );

    // ---- Phase A: fan-out, 1 hub vs 4 hubs -------------------------
    let mut fanout = Vec::new();
    for hubs in [1usize, 4] {
        let server = Server::spawn(n, hubs);
        let cfg = LoadConfig {
            addr: server.addr.clone(),
            subscribers,
            writers,
            updates,
            vertices: n as u32,
            batch: 16,
            seed: 5150 + hubs as u64,
            ..LoadConfig::default()
        };
        let t = Instant::now();
        let report = load::run(&cfg).expect("fan-out load run");
        let secs = t.elapsed().as_secs_f64();
        server.stop();
        assert_eq!(report.gaps, 0, "hubs={hubs}: sequence gap");
        assert_eq!(report.lost_deltas, 0, "hubs={hubs}: lost deltas");
        assert_eq!(report.mirror_errors, 0, "hubs={hubs}: mirror desync");
        assert!(report.verified_mirrors > 0, "hubs={hubs}: nothing verified");
        let delivery = report.sub_events as f64 / secs;
        eprintln!(
            "net_scale: hubs={hubs}: {} subscriber events in {secs:.2}s = {delivery:.0}/s",
            report.sub_events
        );
        fanout.push((hubs, secs, report.sub_events, delivery, report.to_json()));
    }
    let single = fanout[0].3;
    let multi = fanout[1].3;
    if cores >= 2 {
        assert!(
            multi > single,
            "4 hubs must out-deliver 1 hub on {cores} cores ({multi:.0}/s vs {single:.0}/s)"
        );
    } else {
        eprintln!(
            "net_scale: single core — recording fan-out numbers without asserting the ordering \
             ({multi:.0}/s vs {single:.0}/s)"
        );
    }

    // ---- Phase B: filtered subscribers, bootstrap cold-start -------
    let server = Server::spawn(n, 2);
    let cfg = LoadConfig {
        addr: server.addr.clone(),
        subscribers,
        writers,
        updates,
        vertices: n as u32,
        batch: 16,
        seed: 6021,
        filter: SubFilter::Shard { id: 0, of: 2 },
        bootstrap: true,
    };
    let t = Instant::now();
    let filtered = load::run(&cfg).expect("filtered load run");
    let filtered_secs = t.elapsed().as_secs_f64();
    server.stop();
    assert_eq!(filtered.gaps, 0, "filtered: sequence gap");
    assert_eq!(filtered.lost_deltas, 0, "filtered: lost deltas");
    assert_eq!(filtered.mirror_errors, 0, "filtered: mirror desync");
    assert_eq!(
        filtered.out_of_filter, 0,
        "a filtered subscriber received an out-of-filter vertex"
    );
    assert!(filtered.filtered_subscribers > 0, "nobody was filtered");
    assert!(filtered.bootstraps > 0, "nobody cold-started");
    assert!(filtered.verified_mirrors > 0, "filtered: nothing verified");
    eprintln!(
        "net_scale: filtered: {} filtered subscribers, {} bootstraps, 0 out-of-filter",
        filtered.filtered_subscribers, filtered.bootstraps
    );

    // ---- Phase C: cold-start equality ------------------------------
    // Deep history (head beyond the log window) so the bootstrap base
    // is non-zero, then: bootstrap-seeded mirror ≡ from-0 mirror ≡
    // server snapshot.
    let n_c = if fast { 1_000 } else { 4_000 };
    let deep = 1_200u64; // ServeConfig::default().log_window is 1024
    let server = Server::spawn(n_c, 1);
    // Random edge toggles, applied singly (one broadcast log entry per
    // accepted update) until the head outruns the retained window and
    // the base checkpoint moves. Rejections (duplicate insert, missing
    // remove) are expected and tolerated.
    let mut writer = NetClient::connect(&server.addr).unwrap();
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as u32
    };
    let head = {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            for _ in 0..256 {
                let (a, b) = (step() % n_c as u32, step() % n_c as u32);
                if a == b {
                    continue;
                }
                let u = if step() & 1 == 0 {
                    Update::InsertEdge(a, b)
                } else {
                    Update::RemoveEdge(a, b)
                };
                loop {
                    match writer.apply(u.clone()) {
                        Ok(_) | Err(NetError::Rejected(_)) => break,
                        Err(NetError::Busy { .. }) => thread::sleep(Duration::from_millis(2)),
                        Err(e) => panic!("cold-start history write failed: {e}"),
                    }
                }
            }
            let s = writer.stats().unwrap();
            if s.queue_depth == 0 && s.head_seq > deep {
                break s.head_seq;
            }
            assert!(
                Instant::now() < deadline,
                "history never outgrew the window (head {})",
                s.head_seq
            );
        }
    };

    let mut cold = NetClient::connect(&server.addr).unwrap();
    let (base_seq, members) = cold.bootstrap().expect("bootstrap stream");
    assert!(
        base_seq > 0,
        "deep history (head {head}) must yield a non-zero base"
    );
    let mut boot_mirror = RemoteMirror::new();
    boot_mirror
        .apply_event(&SubEvent::Checkpoint {
            seq: base_seq,
            solution: members,
        })
        .unwrap();
    let mut boot_sub = cold.subscribe(base_seq).unwrap();
    boot_sub
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    drain_to(&mut boot_sub, &mut boot_mirror, head);

    let mut zero_sub = NetClient::connect(&server.addr)
        .unwrap()
        .subscribe(0)
        .unwrap();
    zero_sub
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    let mut zero_mirror = RemoteMirror::new();
    drain_to(&mut zero_sub, &mut zero_mirror, head);

    let (snap_seq, snap) = writer.snapshot().unwrap();
    assert_eq!(snap_seq, head);
    assert_eq!(
        boot_mirror.solution(),
        snap,
        "bootstrap-seeded mirror diverged from the snapshot"
    );
    assert_eq!(
        zero_mirror.solution(),
        snap,
        "from-zero mirror diverged from the snapshot"
    );
    server.stop();
    eprintln!(
        "net_scale: cold-start: base seq {base_seq}, head {head}, both mirrors ≡ snapshot \
         (|I| = {})",
        snap.len()
    );

    // ---- Report ----------------------------------------------------
    let mut table = dynamis_bench::Table::new(vec![
        "phase",
        "hubs",
        "events",
        "secs",
        "delivery/s",
        "out-of-filter",
    ]);
    for (hubs, secs, events, delivery, _) in &fanout {
        table.row(vec![
            "fan-out".into(),
            hubs.to_string(),
            events.to_string(),
            format!("{secs:.2}"),
            format!("{delivery:.0}"),
            "-".into(),
        ]);
    }
    table.row(vec![
        "filtered".into(),
        "2".into(),
        filtered.sub_events.to_string(),
        format!("{filtered_secs:.2}"),
        format!("{:.0}", filtered.sub_events as f64 / filtered_secs),
        filtered.out_of_filter.to_string(),
    ]);
    table.print();

    let fanout_json: Vec<String> = fanout
        .iter()
        .map(|(hubs, secs, events, delivery, load_json)| {
            format!(
                "{{\"hubs\": {hubs}, \"secs\": {secs:.3}, \"sub_events\": {events}, \
                 \"delivery_per_s\": {delivery:.1}, \"load\": {load_json}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"net_scale\",\n  \"workload\": {{\"model\": \"chung_lu\", \
         \"n\": {n}, \"beta\": {BETA}, \"avg_degree\": {AVG_DEGREE}, \"batch\": 16, \
         \"subscribers\": {subscribers}, \"writers\": {writers}, \"updates\": {updates}, \
         \"cores\": {cores}, \"fast\": {fast}}},\n  \
         \"fanout\": [{fanout}],\n  \
         \"fanout_asserted\": {asserted},\n  \
         \"filtered\": {{\"secs\": {filtered_secs:.3}, \"load\": {filtered_json}}},\n  \
         \"coldstart\": {{\"n\": {n_c}, \"base_seq\": {base_seq}, \"head\": {head}, \
         \"mirrors_equal_snapshot\": true}}\n}}\n",
        fanout = fanout_json.join(", "),
        asserted = cores >= 2,
        filtered_json = filtered.to_json(),
    );
    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR10.json".into());
    std::fs::write(&out, json).expect("write bench report");
    eprintln!("net_scale: report written to {out}");
}
