//! **Figure 10** — power-law random (PLR) graphs: response time (a) and
//! gap/accuracy (b) while the growth exponent β sweeps 1.9 → 2.7
//! (n = 10⁵ scaled from the paper's 10⁶; generator: Chung–Lu, standing
//! in for NetworkX — see DESIGN.md).

use dynamis_bench::harness::{initial_solution_timed, run, AlgoKind};
use dynamis_bench::report::{fmt_acc, fmt_duration, fmt_gap, Table};
use dynamis_bench::{fast_mode, time_limit};
use dynamis_gen::{powerlaw::chung_lu, StreamConfig, UpdateStream};
use dynamis_graph::CsrGraph;
use std::time::Duration;

fn main() {
    let limit = time_limit();
    let n = if fast_mode() { 20_000 } else { 100_000 };
    let updates = n / 5;
    let betas = [1.9, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7];
    let mut t = Table::new(vec!["β", "m", "algo", "time", "gap", "acc"]);
    for beta in betas {
        let g = chung_lu(n, beta, 8.0, 0xF10);
        let ups = UpdateStream::new(&g, StreamConfig::default(), 0xF10 ^ 7).take_updates(updates);
        let csr = CsrGraph::from_dynamic(&g);
        let init = initial_solution_timed(&csr, 3_000_000, Duration::from_secs(15));
        let reference = init.reference();
        eprintln!("[fig10] beta={beta}: m={} ref={}", g.num_edges(), reference);
        for kind in AlgoKind::paper_lineup() {
            let out = run(kind, &g, init.solution(), &ups, limit);
            t.row(vec![
                format!("{beta}"),
                g.num_edges().to_string(),
                kind.label(),
                if out.dnf {
                    "-".into()
                } else {
                    fmt_duration(out.elapsed)
                },
                if out.dnf {
                    "-".into()
                } else {
                    fmt_gap(out.size, reference)
                },
                if out.dnf {
                    "-".into()
                } else {
                    fmt_acc(out.size, reference)
                },
            ]);
        }
    }
    println!("\n# Fig. 10 — PLR graphs, β sweep (n = {n}, {updates} updates)\n");
    t.print();
}
