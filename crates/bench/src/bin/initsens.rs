//! Extension experiment: sensitivity to the initial solution.
//!
//! The paper criticizes the lazy-search predecessor \[20\] because "when
//! the initial independent set is not optimal, the quality of the
//! maintained solution is not satisfying after a few rounds of updates",
//! and credits the index of \[21\] with being "less sensitive to the
//! quality of the initial independent set". The swap framework has a
//! stronger answer: k-maximality is re-established after every update,
//! so the starting point can only matter up to the invariant.
//!
//! This binary starts every engine from four initial sets of very
//! different quality — empty, a random maximal set (worst of 5 Luby
//! runs), min-degree greedy, and ARW — applies the same update schedule,
//! and reports the final sizes. Expected shape: per engine, the four
//! columns agree to within noise.

use dynamis_bench::harness::AlgoKind;
use dynamis_bench::Table;
use dynamis_gen::{powerlaw::chung_lu, StreamConfig, UpdateStream};
use dynamis_graph::CsrGraph;
use dynamis_static::{arw_local_search, greedy_mis, luby_mis, ArwConfig};

fn main() {
    let fast = dynamis_bench::fast_mode();
    let n = if fast { 4_000 } else { 20_000 };
    let updates = if fast { 8_000 } else { 40_000 };
    let g = chung_lu(n, 2.3, 8.0, 61);
    let csr = CsrGraph::from_dynamic(&g);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 62).take_updates(updates);

    let worst_luby = (0..5u64)
        .map(|s| luby_mis(&csr, s).solution)
        .min_by_key(Vec::len)
        .expect("five runs");
    let greedy = greedy_mis(&csr);
    let arw = arw_local_search(
        &csr,
        ArwConfig {
            perturbations: 10,
            seed: 63,
        },
    );
    let initials: [(&str, Vec<u32>); 4] = [
        ("empty", Vec::new()),
        ("luby-worst", worst_luby),
        ("greedy", greedy),
        ("arw", arw),
    ];
    println!(
        "# initial-solution sensitivity — n = {n}, {updates} updates; initial sizes: {}",
        initials
            .iter()
            .map(|(l, s)| format!("{l} = {}", s.len()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    let mut table = Table::new(vec![
        "algorithm",
        "from empty",
        "from luby-worst",
        "from greedy",
        "from arw",
        "spread",
    ]);
    for kind in [
        AlgoKind::MaximalOnly,
        AlgoKind::DyOneSwap,
        AlgoKind::DyTwoSwap,
    ] {
        let mut sizes = Vec::with_capacity(4);
        for (_, initial) in &initials {
            let mut e = kind.build(&g, initial);
            for u in &ups {
                e.try_apply(u).expect("generated stream is valid");
            }
            sizes.push(e.size());
        }
        let spread =
            sizes.iter().max().expect("non-empty") - sizes.iter().min().expect("non-empty");
        let mut cells = vec![kind.label()];
        cells.extend(sizes.iter().map(|s| format!("{s}")));
        cells.push(format!("{spread}"));
        table.row(cells);
    }
    table.print();
}
