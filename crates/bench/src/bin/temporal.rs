//! Extension experiment: structured temporal workloads.
//!
//! The paper's streams sample operations uniformly; real social-network
//! churn is bursty and windowed (its own motivating example). This binary
//! runs the paper's engine lineup on three workload shapes of equal
//! length — uniform mixed, sliding-window, and hot-topic bursts — and
//! reports per-shape time and final solution size. The interesting
//! comparison is *within* a row: burst workloads hammer one hub's
//! neighborhood, so candidate sets stay hot and swap cascades localize.

use dynamis_bench::harness::AlgoKind;
use dynamis_bench::Table;
use dynamis_gen::temporal::{burst, sliding_window, BurstConfig, SlidingWindowConfig};
use dynamis_gen::{powerlaw::chung_lu, StreamConfig, Workload};
use std::time::Instant;

fn main() {
    let fast = dynamis_bench::fast_mode();
    let n = if fast { 3_000 } else { 15_000 };
    let count = if fast { 6_000 } else { 30_000 };

    let base = chung_lu(n, 2.3, 8.0, 51);
    let uniform = Workload::generate(base.clone(), count, StreamConfig::edges_only(), 52);
    let window = sliding_window(
        SlidingWindowConfig {
            n,
            window: 4 * n,
            arrivals: count / 2 + n * 2,
        },
        53,
    );
    let bursts = burst(
        base,
        BurstConfig {
            bursts: count / 200,
            burst_size: 128,
            decay: 0.75,
        },
        54,
    );

    println!("# temporal workloads — n = {n}, ~{count} updates per shape");
    println!();
    let mut table = Table::new(vec![
        "algorithm",
        "uniform ms",
        "uniform |I|",
        "window ms",
        "window |I|",
        "burst ms",
        "burst |I|",
    ]);

    for kind in [
        AlgoKind::MaximalOnly,
        AlgoKind::DyArw,
        AlgoKind::DyOneSwap,
        AlgoKind::DyTwoSwap,
    ] {
        let mut cells = vec![kind.label()];
        for wl in [&uniform, &window, &bursts] {
            let t0 = Instant::now();
            let mut e = kind.build(&wl.graph, &[]);
            for u in &wl.updates {
                e.try_apply(u).expect("recorded trace is valid");
            }
            cells.push(format!("{}", t0.elapsed().as_millis()));
            cells.push(format!("{}", e.size()));
        }
        table.row(cells);
    }
    table.print();
    println!();
    println!(
        "workload lengths: uniform {}, window {}, burst {}",
        uniform.updates.len(),
        window.updates.len(),
        bursts.updates.len()
    );
}
