//! **Figure 7** — the §III-B optimization ablations:
//! (a/b) lazy collection — response time and memory of the eager engines
//! vs their lazy-collection counterparts (k = 1, 2);
//! (c) perturbation — response-time overhead of the `gap*` variants;
//! (d) lazy-vs-eager time ratio as k grows (eager exists for k ≤ 2; the
//! generic lazy engine carries the sweep to k = 3, 4).

use dynamis_bench::alloc_track::{peak_bytes, reset_peak, TrackingAlloc};
use dynamis_bench::harness::{run, AlgoKind};
use dynamis_bench::report::{fmt_duration, fmt_mb, Table};
use dynamis_bench::time_limit;
use dynamis_gen::{datasets, StreamConfig, UpdateStream};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let limit = time_limit();
    let spec = datasets::by_name("com-dblp").expect("registry");
    let g = spec.build();
    let ups = UpdateStream::new(&g, StreamConfig::default(), 0xF16)
        .take_updates(spec.scaled_updates(1_000_000).max(20_000));
    eprintln!(
        "[fig7] workload: {} n={} m={} updates={}",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        ups.len()
    );

    // (a) + (b): eager vs lazy, k = 1 and k = 2.
    let mut ab = Table::new(vec!["variant", "time", "engine mem", "alloc peak", "|I|"]);
    for (label, kind) in [
        ("DyOneSwap (eager)", AlgoKind::DyOneSwap),
        ("Lazy k=1", AlgoKind::Generic(1)),
        ("DyTwoSwap (eager)", AlgoKind::DyTwoSwap),
        ("Lazy k=2", AlgoKind::Generic(2)),
    ] {
        reset_peak();
        let out = run(kind, &g, &[], &ups, limit);
        ab.row(vec![
            label.to_string(),
            if out.dnf {
                "-".into()
            } else {
                fmt_duration(out.elapsed)
            },
            fmt_mb(out.heap_bytes),
            fmt_mb(peak_bytes()),
            out.size.to_string(),
        ]);
    }
    println!(
        "\n# Fig. 7(a/b) — lazy collection: time & memory ({})\n",
        spec.name
    );
    ab.print();

    // (c): perturbation overhead.
    let mut c = Table::new(vec!["variant", "time", "|I|"]);
    for (label, kind) in [
        ("DyOneSwap", AlgoKind::DyOneSwap),
        ("DyOneSwap*", AlgoKind::DyOneSwapPerturb),
        ("DyTwoSwap", AlgoKind::DyTwoSwap),
        ("DyTwoSwap*", AlgoKind::DyTwoSwapPerturb),
    ] {
        let out = run(kind, &g, &[], &ups, limit);
        c.row(vec![
            label.to_string(),
            if out.dnf {
                "-".into()
            } else {
                fmt_duration(out.elapsed)
            },
            out.size.to_string(),
        ]);
    }
    println!("\n# Fig. 7(c) — perturbation: response-time overhead\n");
    c.print();

    // (d): lazy cost as k grows.
    let mut d = Table::new(vec!["k", "lazy time", "eager time", "lazy/eager"]);
    for k in 1..=4usize {
        let lazy = run(AlgoKind::Generic(k), &g, &[], &ups, limit);
        let eager = match k {
            1 => Some(run(AlgoKind::DyOneSwap, &g, &[], &ups, limit)),
            2 => Some(run(AlgoKind::DyTwoSwap, &g, &[], &ups, limit)),
            _ => None,
        };
        d.row(vec![
            k.to_string(),
            if lazy.dnf {
                "-".into()
            } else {
                fmt_duration(lazy.elapsed)
            },
            eager
                .as_ref()
                .map(|e| fmt_duration(e.elapsed))
                .unwrap_or_else(|| "n/a".into()),
            eager
                .map(|e| {
                    format!(
                        "{:.2}x",
                        lazy.elapsed.as_secs_f64() / e.elapsed.as_secs_f64()
                    )
                })
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    println!("\n# Fig. 7(d) — lazy-collection cost as k grows\n");
    d.print();
}
