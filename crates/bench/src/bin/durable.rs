//! Durability overhead guard: the single-writer ingest path with a
//! group-commit WAL underneath must stay within 15% of the same loop
//! with no WAL at all. This is the PR-9 bound that keeps durability
//! from silently eating the PR-3 ingest throughput.
//!
//! Whole-run A/B on a shared host is far too noisy for a ≲15% effect —
//! the machines this runs on show double-digit throughput swings at
//! multi-second scale. Instead each pass keeps **both** engines alive
//! and feeds them the identical update stream in alternating timed
//! chunks: WAL-off then WAL-on on even chunk indices, the reverse on
//! odd (and the phase flips per pass), so interference bursts land on
//! both modes in nearly equal measure and position-in-stream cost
//! differences cancel. Each pass yields one `t_walon/t_waloff` ratio;
//! the reported overhead is the median across passes. Both engines
//! must accept the same updates and end on the same solution — that
//! equality is asserted, so the comparison cannot quietly diverge.
//!
//! The WAL-on engine writes real files through [`FileStorage`] under
//! `SyncPolicy::Group` (the `net-serve` default: appends buffered in
//! user space, fsyncs batched on an interval off the writer thread)
//! into a scratch directory recreated per pass; point
//! `DYNAMIS_BENCH_DIR` at a tmpfs (e.g. `/dev/shm`) to measure codec +
//! batching cost without rotational fsync latency dominating.
//!
//! Writes `BENCH_PR9.json` (override with `DYNAMIS_BENCH_OUT`); honors
//! `DYNAMIS_FAST=1`. The ≤15% bound is asserted only under
//! `DYNAMIS_ENFORCE_OVERHEAD=1` — even interleaved measurement can
//! flake on a badly disturbed runner, so the hard gate is opt-in.

use dynamis_core::{DynamicMis, EngineBuilder};
use dynamis_durable::{prepare, DurableOptions, FileStorage, Logged, SyncPolicy, WalStorage};
use dynamis_gen::powerlaw::chung_lu;
use dynamis_gen::{StreamConfig, UpdateStream};
use dynamis_graph::{DynamicGraph, Update};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const MAX_OVERHEAD_PCT: f64 = 15.0;
/// Updates per timed chunk: a few ms of work, far finer than the
/// interference bursts being cancelled.
const CHUNK: usize = 2048;

fn scratch_dir() -> PathBuf {
    let base = std::env::var("DYNAMIS_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    base.join(format!("dynamis_bench_durable_{}", std::process::id()))
}

/// A fresh WAL-backed engine over a recreated scratch directory: every
/// pass pays the same bootstrap checkpoint and appends from a cold log,
/// like a server restart. Construction is untimed.
fn build_logged(g: &DynamicGraph, dir: &Path) -> Logged {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create scratch dir");
    let storage = FileStorage::open(dir).expect("open scratch dir");
    let arc: Arc<dyn WalStorage> = Arc::new(storage);
    let opts = DurableOptions {
        sync: SyncPolicy::Group,
        ..DurableOptions::default()
    };
    let mut prepared = prepare(arc, 2, opts).expect("prepare scratch dir");
    let builder = prepared.resume_builder(EngineBuilder::on(g.clone()).k(2));
    prepared
        .attach(builder.build().unwrap())
        .expect("attach logged engine")
}

fn drive(engine: &mut dyn DynamicMis, chunk: &[Update]) -> (f64, u64) {
    let t = Instant::now();
    let mut accepted = 0u64;
    for u in chunk {
        if engine.try_apply(u).is_ok() {
            accepted += 1;
        }
    }
    (t.elapsed().as_secs_f64(), accepted)
}

/// One pass: both engines consume the whole stream in alternating timed
/// chunks. Returns (off_secs, on_secs, accepted, wal_bytes).
fn interleaved_pass(
    g: &DynamicGraph,
    ups: &[Update],
    dir: &Path,
    phase: usize,
) -> (f64, f64, u64, u64) {
    let mut plain = EngineBuilder::on(g.clone()).k(2).build().unwrap();
    let mut logged = build_logged(g, dir);
    let (mut t_off, mut t_on) = (0.0, 0.0);
    let (mut a_off, mut a_on) = (0u64, 0u64);
    for (ci, chunk) in ups.chunks(CHUNK).enumerate() {
        if (ci + phase).is_multiple_of(2) {
            let (t, a) = drive(plain.as_mut(), chunk);
            t_off += t;
            a_off += a;
            let (t, a) = drive(&mut logged, chunk);
            t_on += t;
            a_on += a;
        } else {
            let (t, a) = drive(&mut logged, chunk);
            t_on += t;
            a_on += a;
            let (t, a) = drive(plain.as_mut(), chunk);
            t_off += t;
            a_off += a;
        }
    }
    // Identical engine, identical stream: the WAL must be invisible to
    // acceptance and to the final solution, or the timing comparison is
    // comparing different work.
    assert!(logged.wal_healthy(), "WAL hit a storage error mid-bench");
    assert_eq!(a_off, a_on, "the WAL changed which updates were accepted");
    assert_eq!(plain.solution(), logged.solution(), "states diverged");
    drop(logged); // untimed: shutdown flush is not ingest cost
    let bytes: u64 = std::fs::read_dir(dir)
        .expect("read scratch dir")
        .filter_map(|e| e.ok()?.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum();
    (t_off, t_on, a_off, bytes)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    if xs.len() % 2 == 1 {
        xs[xs.len() / 2]
    } else {
        (xs[xs.len() / 2 - 1] + xs[xs.len() / 2]) / 2.0
    }
}

fn main() {
    let fast = dynamis_bench::fast_mode();
    let (n, updates, passes) = if fast {
        (10_000, 20_000, 5)
    } else {
        (50_000, 100_000, 9)
    };
    let (beta, avg_degree, seed) = (2.4, 8.0, 91);

    eprintln!("durable: building Chung-Lu base graph (n = {n}, beta = {beta}, d = {avg_degree})");
    let base = chung_lu(n, beta, avg_degree, seed);
    let ups =
        UpdateStream::new(&base, StreamConfig::default(), seed ^ 0xbeef).take_updates(updates);
    let dir = scratch_dir();
    eprintln!(
        "durable: m = {}, {} updates; {passes} interleaved passes ({CHUNK}-update chunks), \
         WAL scratch at {}",
        base.num_edges(),
        ups.len(),
        dir.display()
    );

    // Warm-up: one untimed pass.
    interleaved_pass(&base, &ups, &dir, 0);

    let (mut off_secs, mut on_secs) = (0.0f64, 0.0f64);
    let mut accepted = 0u64;
    let mut wal_bytes = 0u64;
    let mut ratios = Vec::with_capacity(passes);
    for phase in 0..passes {
        let (t_off, t_on, a, bytes) = interleaved_pass(&base, &ups, &dir, phase);
        off_secs += t_off;
        on_secs += t_on;
        accepted = a;
        wal_bytes = bytes;
        ratios.push(t_on / t_off);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let overhead_pct = (median(&mut ratios) - 1.0) * 100.0;
    let off_ups = (passes as f64 * ups.len() as f64) / off_secs;
    let on_ups = (passes as f64 * ups.len() as f64) / on_secs;

    let mut table =
        dynamis_bench::Table::new(vec!["mode", "updates/s", "accepted", "wal bytes/pass"]);
    table.row(vec![
        "wal-off".into(),
        format!("{off_ups:.0}"),
        format!("{accepted}"),
        "-".into(),
    ]);
    table.row(vec![
        "wal-on (group)".into(),
        format!("{on_ups:.0}"),
        format!("{accepted}"),
        format!("{wal_bytes}"),
    ]);
    table.print();
    eprintln!("durable: median WAL overhead {overhead_pct:+.2}% (budget {MAX_OVERHEAD_PCT}%)");

    let enforce = std::env::var("DYNAMIS_ENFORCE_OVERHEAD").is_ok_and(|v| v == "1");
    if enforce {
        assert!(
            overhead_pct <= MAX_OVERHEAD_PCT,
            "WAL overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% budget"
        );
    } else if overhead_pct > MAX_OVERHEAD_PCT {
        eprintln!(
            "durable: WARNING overhead {overhead_pct:.2}% exceeds {MAX_OVERHEAD_PCT}% \
             (not enforced; set DYNAMIS_ENFORCE_OVERHEAD=1 to fail)"
        );
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"durable-wal-overhead\",").unwrap();
    writeln!(
        json,
        "  \"workload\": {{\"model\": \"chung_lu\", \"n\": {n}, \"beta\": {beta}, \
         \"avg_degree\": {avg_degree}, \"updates\": {}, \"seed\": {seed}, \
         \"passes\": {passes}, \"chunk\": {CHUNK}, \"fast\": {fast}}},",
        ups.len()
    )
    .unwrap();
    writeln!(json, "  \"sync_policy\": \"group\",").unwrap();
    writeln!(json, "  \"max_overhead_pct\": {MAX_OVERHEAD_PCT},").unwrap();
    writeln!(json, "  \"enforced\": {enforce},").unwrap();
    writeln!(
        json,
        "  \"wal_off\": {{\"secs\": {off_secs:.4}, \"updates_per_sec\": {off_ups:.1}, \
         \"accepted\": {accepted}}},"
    )
    .unwrap();
    writeln!(
        json,
        "  \"wal_on\": {{\"secs\": {on_secs:.4}, \"updates_per_sec\": {on_ups:.1}, \
         \"accepted\": {accepted}, \"wal_bytes_per_pass\": {wal_bytes}}},"
    )
    .unwrap();
    writeln!(json, "  \"overhead_pct\": {overhead_pct:.3}").unwrap();
    writeln!(json, "}}").unwrap();

    let out = std::env::var("DYNAMIS_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    std::fs::write(&out, &json).expect("write bench report");
    eprintln!("durable: wrote {out}");
}
