//! Extension experiment: the amortized cost of recompute-from-scratch.
//!
//! The introduction dismisses static methods because they "need to
//! recompute the solution from scratch after each update". This binary
//! quantifies the claim: the `Restart` baseline is swept over its
//! recompute interval and compared against `DyOneSwap`/`DyTwoSwap` on an
//! identical schedule. Columns: total wall time, full solves performed,
//! and the final solution size (higher is better).
//!
//! Expected shape: interval = 1 is orders of magnitude slower than the
//! dynamic engines at equal-or-worse quality; large intervals approach
//! the engines' speed but go stale between solves.

use dynamis_baselines::{Restart, RestartSolver};
use dynamis_bench::Table;
use dynamis_core::{DyOneSwap, DyTwoSwap, DynamicMis, EngineBuilder};
use dynamis_gen::{powerlaw::chung_lu, StreamConfig, UpdateStream};
use std::time::Instant;

fn main() {
    let fast = dynamis_bench::fast_mode();
    let n = if fast { 4_000 } else { 20_000 };
    let updates = if fast { 4_000 } else { 20_000 };
    let g = chung_lu(n, 2.3, 8.0, 41);
    let ups = UpdateStream::new(&g, StreamConfig::default(), 42).take_updates(updates);

    println!("# restart ablation — n = {n}, {updates} mixed updates, Chung-Lu beta = 2.3");
    println!();
    let mut table = Table::new(vec!["algorithm", "time (ms)", "solves", "final |I|"]);

    for interval in [1usize, 10, 100, 1_000] {
        let t0 = Instant::now();
        let mut r = Restart::from_builder(
            EngineBuilder::on(g.clone()),
            RestartSolver::Greedy,
            interval,
        )
        .expect("valid session");
        for u in &ups {
            r.try_apply(u).expect("generated stream is valid");
        }
        table.row(vec![
            format!("Restart(Greedy, every {interval})"),
            format!("{}", t0.elapsed().as_millis()),
            format!("{}", r.recomputes),
            format!("{}", r.size()),
        ]);
    }

    let t0 = Instant::now();
    let mut one: DyOneSwap = EngineBuilder::on(g.clone()).build_as().unwrap();
    for u in &ups {
        one.try_apply(u).expect("generated stream is valid");
    }
    table.row(vec![
        "DyOneSwap".to_string(),
        format!("{}", t0.elapsed().as_millis()),
        "0".to_string(),
        format!("{}", one.size()),
    ]);

    let t0 = Instant::now();
    let mut two: DyTwoSwap = EngineBuilder::on(g.clone()).build_as().unwrap();
    for u in &ups {
        two.try_apply(u).expect("generated stream is valid");
    }
    table.row(vec![
        "DyTwoSwap".to_string(),
        format!("{}", t0.elapsed().as_millis()),
        "0".to_string(),
        format!("{}", two.size()),
    ]);

    table.print();
}
