//! **Table IV** — gap to the best result obtained by the ARW local
//! search on the hard graphs after 1 000 000-equivalent updates. The
//! dependency-index baselines are expected to DNF on the last five
//! graphs (printed "-"), and the swap engines can *exceed* the reference
//! (marked ↑), exactly as in the paper.

use dynamis_bench::harness::{run, AlgoKind, InitialSolution};
use dynamis_bench::report::{fmt_gap, Table};
use dynamis_bench::{fast_mode, time_limit};
use dynamis_gen::{datasets, StreamConfig, UpdateStream};
use dynamis_graph::CsrGraph;
use dynamis_static::arw::{arw_local_search, ArwConfig};

fn main() {
    let limit = time_limit();
    let mut t = Table::new(vec![
        "Graph",
        "Best(ARW)",
        "DGOneDIS",
        "DGTwoDIS",
        "DyARW",
        "DyOneSwap",
        "(gap*)",
        "DyTwoSwap",
        "(gap*)",
    ]);
    let specs: Vec<_> = datasets::hard().collect();
    let specs = if fast_mode() { &specs[..3] } else { &specs[..] };
    for spec in specs {
        eprintln!("[table4] {} ...", spec.name);
        let g = spec.build();
        let count = spec.scaled_updates(1_000_000);
        let ups = UpdateStream::new(&g, StreamConfig::default(), spec.seed() ^ 0x75D0)
            .take_updates(count);
        // Hard regime: the reference is ARW's best static result.
        let csr = CsrGraph::from_dynamic(&g);
        let best = arw_local_search(
            &csr,
            ArwConfig {
                perturbations: 30,
                seed: 0xa1,
            },
        );
        let init = InitialSolution::Best {
            size: best.len(),
            solution: best,
        };
        let reference = init.reference();
        let mut cells = vec![spec.name.to_string(), reference.to_string()];
        for kind in [
            AlgoKind::DgOneDis,
            AlgoKind::DgTwoDis,
            AlgoKind::DyArw,
            AlgoKind::DyOneSwap,
            AlgoKind::DyOneSwapPerturb,
            AlgoKind::DyTwoSwap,
            AlgoKind::DyTwoSwapPerturb,
        ] {
            let out = run(kind, &g, init.solution(), &ups, limit);
            if out.dnf {
                cells.push("-".into());
            } else {
                cells.push(fmt_gap(out.size, reference));
            }
        }
        t.row(cells);
    }
    println!("# Table IV — gap to the ARW best on hard graphs (1M-equivalent updates)");
    println!("# ('-' = exceeded the time limit, ↑ = larger than the reference)\n");
    t.print();
}
