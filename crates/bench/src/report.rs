//! Markdown table rendering for the experiment binaries.

/// Column-aligned markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:>w$} |", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration as engineering-style seconds/milliseconds.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 10_000.0 {
        format!("{:.1}s", ms / 1e3)
    } else {
        format!("{ms:.1}ms")
    }
}

/// Formats bytes as MB with one decimal.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.1}MB", bytes as f64 / (1024.0 * 1024.0))
}

/// Accuracy as a percentage string (the paper's `acc` columns).
pub fn fmt_acc(size: usize, reference: usize) -> String {
    if reference == 0 {
        "n/a".into()
    } else {
        format!("{:.2}%", 100.0 * size as f64 / reference as f64)
    }
}

/// Gap with the paper's ↑ marker when the maintained solution *exceeds*
/// the reference (possible in the hard regime, where the reference is a
/// heuristic).
pub fn fmt_gap(size: usize, reference: usize) -> String {
    if size > reference {
        format!("{}↑", size - reference)
    } else {
        format!("{}", reference - size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(vec!["graph", "gap"]);
        t.row(vec!["Epinions", "12"]);
        t.row(vec!["x", "10000"]);
        let r = t.render();
        assert!(r.contains("| Epinions |"));
        assert!(r.lines().count() == 4);
        let widths: Vec<usize> = r.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {r}");
    }

    #[test]
    fn gap_marker() {
        assert_eq!(fmt_gap(90, 100), "10");
        assert_eq!(fmt_gap(105, 100), "5↑");
        assert_eq!(fmt_acc(50, 100), "50.00%");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
