//! Workload runner: builds any algorithm, replays an update schedule
//! under a wall-clock limit, and reports size/time/memory.

use dynamis_baselines::{DgDis, DyArw, MaximalOnly};
use dynamis_core::{DyOneSwap, DyTwoSwap, DynamicMis, EngineBuilder, EngineConfig, GenericKSwap};
use dynamis_graph::{CsrGraph, DynamicGraph, Update};
use dynamis_static::arw::{arw_local_search, ArwConfig};
use dynamis_static::exact::{solve_exact, ExactConfig};
use std::time::{Duration, Instant};

/// Every dynamic algorithm the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    /// Repair-only floor (ablation).
    MaximalOnly,
    /// Zheng et al. dependency index, degree-one reductions.
    DgOneDis,
    /// Zheng et al. dependency index, degree-one + degree-two.
    DgTwoDis,
    /// Dynamic ARW (sorted adjacency, 1-swaps).
    DyArw,
    /// This paper, k = 1.
    DyOneSwap,
    /// This paper, k = 1, with perturbation (the `gap*` columns).
    DyOneSwapPerturb,
    /// This paper, k = 2.
    DyTwoSwap,
    /// This paper, k = 2, with perturbation.
    DyTwoSwapPerturb,
    /// Generic lazy engine with the given k.
    Generic(usize),
}

impl AlgoKind {
    /// Table/figure label.
    pub fn label(&self) -> String {
        match self {
            AlgoKind::MaximalOnly => "MaximalOnly".into(),
            AlgoKind::DgOneDis => "DGOneDIS".into(),
            AlgoKind::DgTwoDis => "DGTwoDIS".into(),
            AlgoKind::DyArw => "DyARW".into(),
            AlgoKind::DyOneSwap => "DyOneSwap".into(),
            AlgoKind::DyOneSwapPerturb => "DyOneSwap*".into(),
            AlgoKind::DyTwoSwap => "DyTwoSwap".into(),
            AlgoKind::DyTwoSwapPerturb => "DyTwoSwap*".into(),
            AlgoKind::Generic(k) => format!("Lazy(k={k})"),
        }
    }

    /// The five-algorithm lineup of Tables II–IV.
    pub fn paper_lineup() -> [AlgoKind; 5] {
        [
            AlgoKind::DgOneDis,
            AlgoKind::DgTwoDis,
            AlgoKind::DyArw,
            AlgoKind::DyOneSwap,
            AlgoKind::DyTwoSwap,
        ]
    }

    /// Instantiates the engine over its own copy of the graph, through
    /// the one construction path ([`EngineBuilder`]). Harness inputs are
    /// trusted (generated graphs + solver-produced initial sets), so a
    /// builder rejection here is a harness bug and panics.
    pub fn build(&self, g: &DynamicGraph, initial: &[u32]) -> Box<dyn DynamicMis> {
        let b = EngineBuilder::on(g.clone()).initial(initial);
        let perturb = EngineConfig {
            perturbation: true,
            perturb_budget: 2,
        };
        let built: Result<Box<dyn DynamicMis>, _> = match self {
            AlgoKind::MaximalOnly => b.build_as::<MaximalOnly>().map(|e| Box::new(e) as _),
            AlgoKind::DgOneDis => DgDis::one_dis(b).map(|e| Box::new(e) as _),
            AlgoKind::DgTwoDis => DgDis::two_dis(b).map(|e| Box::new(e) as _),
            AlgoKind::DyArw => b.build_as::<DyArw>().map(|e| Box::new(e) as _),
            AlgoKind::DyOneSwap => b.build_as::<DyOneSwap>().map(|e| Box::new(e) as _),
            AlgoKind::DyOneSwapPerturb => b
                .config(perturb)
                .build_as::<DyOneSwap>()
                .map(|e| Box::new(e) as _),
            AlgoKind::DyTwoSwap => b.build_as::<DyTwoSwap>().map(|e| Box::new(e) as _),
            AlgoKind::DyTwoSwapPerturb => b
                .config(perturb)
                .build_as::<DyTwoSwap>()
                .map(|e| Box::new(e) as _),
            AlgoKind::Generic(k) => b.k(*k).build_as::<GenericKSwap>().map(|e| Box::new(e) as _),
        };
        built.unwrap_or_else(|e| panic!("harness session for {} invalid: {e}", self.label()))
    }
}

/// Result of one (algorithm, workload) run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm label.
    pub name: String,
    /// Solution size after the last processed update.
    pub size: usize,
    /// Wall-clock time spent in the update loop.
    pub elapsed: Duration,
    /// Engine-reported heap footprint after the run.
    pub heap_bytes: usize,
    /// Number of updates actually processed.
    pub processed: usize,
    /// True when the time limit fired before the schedule finished
    /// (printed as "-" in the tables, like the paper's five-hour DNFs).
    pub dnf: bool,
}

/// Replays `updates` through algorithm `kind`, enforcing `limit` on the
/// update loop (checked every 128 updates).
pub fn run(
    kind: AlgoKind,
    g: &DynamicGraph,
    initial: &[u32],
    updates: &[Update],
    limit: Duration,
) -> RunOutcome {
    let mut engine = kind.build(g, initial);
    let start = Instant::now();
    let mut processed = 0usize;
    let mut dnf = false;
    for chunk in updates.chunks(128) {
        for u in chunk {
            engine
                .try_apply(u)
                .unwrap_or_else(|e| panic!("workload update {u:?} rejected: {e}"));
        }
        processed += chunk.len();
        if start.elapsed() > limit {
            dnf = processed < updates.len();
            break;
        }
    }
    RunOutcome {
        name: kind.label(),
        size: engine.size(),
        elapsed: start.elapsed(),
        heap_bytes: engine.heap_bytes(),
        processed,
        dnf,
    }
}

/// Ground truth for gap/accuracy columns.
#[derive(Debug, Clone)]
pub enum InitialSolution {
    /// The exact solver finished: gaps are measured against true α
    /// (the paper's "easy" regime, VCSolver).
    Exact {
        /// The independence number.
        alpha: usize,
        /// A maximum independent set, used as the initial solution.
        solution: Vec<u32>,
    },
    /// Exact timed out: gaps are measured against the ARW local-search
    /// best (the paper's "hard" regime).
    Best {
        /// Size of the best solution found.
        size: usize,
        /// The ARW solution, used as the initial solution.
        solution: Vec<u32>,
    },
}

impl InitialSolution {
    /// Reference value the gap columns subtract from.
    pub fn reference(&self) -> usize {
        match self {
            InitialSolution::Exact { alpha, .. } => *alpha,
            InitialSolution::Best { size, .. } => *size,
        }
    }

    /// The initial independent set handed to every engine.
    pub fn solution(&self) -> &[u32] {
        match self {
            InitialSolution::Exact { solution, .. } => solution,
            InitialSolution::Best { solution, .. } => solution,
        }
    }

    /// Whether the exact regime applies.
    pub fn is_exact(&self) -> bool {
        matches!(self, InitialSolution::Exact { .. })
    }
}

/// The paper's §V-A initialization policy: "for easy graphs, we use a
/// MaxIS computed by VCSolver as the initial independent set, and for
/// hard graphs we treat the independent set returned by ARW as the input
/// one".
pub fn initial_solution(csr: &CsrGraph, exact_budget: u64) -> InitialSolution {
    if let Some(r) = solve_exact(
        csr,
        ExactConfig {
            node_budget: exact_budget,
        },
    ) {
        InitialSolution::Exact {
            alpha: r.alpha,
            solution: r.solution,
        }
    } else {
        let best = arw_local_search(
            csr,
            ArwConfig {
                perturbations: 30,
                seed: 0xa1,
            },
        );
        InitialSolution::Best {
            size: best.len(),
            solution: best,
        }
    }
}

/// [`initial_solution`] with an additional wall-clock cap: the exact
/// attempt runs on a helper thread and is abandoned (falling back to the
/// ARW regime) if it exceeds `wall_limit`. This is the scaled analogue of
/// the paper's five-hour VCSolver cutoff that defines Table I's
/// easy/hard split.
pub fn initial_solution_timed(
    csr: &CsrGraph,
    exact_budget: u64,
    wall_limit: Duration,
) -> InitialSolution {
    let (tx, rx) = std::sync::mpsc::channel();
    let snapshot = csr.clone();
    std::thread::spawn(move || {
        let r = solve_exact(
            &snapshot,
            ExactConfig {
                node_budget: exact_budget,
            },
        );
        let _ = tx.send(r);
    });
    match rx.recv_timeout(wall_limit) {
        Ok(Some(r)) => InitialSolution::Exact {
            alpha: r.alpha,
            solution: r.solution,
        },
        _ => {
            let best = arw_local_search(
                csr,
                ArwConfig {
                    perturbations: 30,
                    seed: 0xa1,
                },
            );
            InitialSolution::Best {
                size: best.len(),
                solution: best,
            }
        }
    }
}

/// Builds the full workload for one dataset stand-in: the graph, the
/// scaled update schedule, and the paper-policy initial solution.
pub fn dataset_workload(
    spec: &dynamis_gen::DatasetSpec,
    paper_updates: u64,
) -> (DynamicGraph, Vec<Update>, InitialSolution) {
    let g = spec.build();
    let count = spec.scaled_updates(paper_updates);
    let ups = dynamis_gen::UpdateStream::new(
        &g,
        dynamis_gen::StreamConfig::default(),
        spec.seed() ^ 0x75D0,
    )
    .take_updates(count);
    let csr = CsrGraph::from_dynamic(&g);
    let init = initial_solution_timed(&csr, 3_000_000, Duration::from_secs(20));
    (g, ups, init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_gen::{stream::StreamConfig, uniform::gnm, UpdateStream};

    #[test]
    fn run_executes_full_schedule_within_limit() {
        let g = gnm(50, 100, 1);
        let ups = UpdateStream::new(&g, StreamConfig::default(), 2).take_updates(200);
        let out = run(AlgoKind::DyOneSwap, &g, &[], &ups, Duration::from_secs(30));
        assert!(!out.dnf);
        assert_eq!(out.processed, 200);
        assert!(out.size > 0);
    }

    #[test]
    fn run_dnfs_on_zero_limit() {
        let g = gnm(50, 100, 1);
        let ups = UpdateStream::new(&g, StreamConfig::default(), 2).take_updates(5_000);
        let out = run(AlgoKind::DyTwoSwap, &g, &[], &ups, Duration::from_nanos(1));
        assert!(out.dnf);
        assert!(out.processed < 5_000);
    }

    #[test]
    fn initial_solution_policy() {
        let g = gnm(30, 45, 3);
        let csr = CsrGraph::from_dynamic(&g);
        // Ample budget: exact regime.
        assert!(initial_solution(&csr, 10_000_000).is_exact());
        // Starved budget: ARW regime.
        let dense = gnm(60, 900, 4);
        let csr = CsrGraph::from_dynamic(&dense);
        let init = initial_solution(&csr, 1);
        assert!(!init.is_exact());
        assert!(init.reference() > 0);
    }

    #[test]
    fn every_kind_builds_and_runs() {
        let g = gnm(20, 30, 9);
        let ups = UpdateStream::new(&g, StreamConfig::default(), 5).take_updates(50);
        for kind in [
            AlgoKind::MaximalOnly,
            AlgoKind::DgOneDis,
            AlgoKind::DgTwoDis,
            AlgoKind::DyArw,
            AlgoKind::DyOneSwap,
            AlgoKind::DyOneSwapPerturb,
            AlgoKind::DyTwoSwap,
            AlgoKind::DyTwoSwapPerturb,
            AlgoKind::Generic(3),
        ] {
            let out = run(kind, &g, &[], &ups, Duration::from_secs(30));
            assert_eq!(out.processed, 50, "{} failed", out.name);
        }
    }
}
