//! # dynamis-bench — the experiment harness
//!
//! One binary per table/figure of the paper's §V (see DESIGN.md for the
//! full index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — dataset statistics |
//! | `table2` | Table II — gap/accuracy on easy graphs, 100k-equivalent updates |
//! | `table3` | Table III — gap/accuracy on the last 7 easy graphs, 1M-equivalent |
//! | `table4` | Table IV — gap to the ARW best on hard graphs (with DNFs) |
//! | `fig5`   | Fig. 5 — response time & memory on easy graphs |
//! | `fig6`   | Fig. 6 — response time & memory on hard graphs |
//! | `fig7`   | Fig. 7 — lazy collection & perturbation ablations |
//! | `fig8`   | Fig. 8 — scalability in the number of updates |
//! | `fig9`   | Fig. 9 — scalability in k |
//! | `fig10`  | Fig. 10 — power-law random graphs, β sweep |
//! | `worstcase` | Theorem 3 families |
//! | `plbcheck`  | Theorem 4 / Lemma 2 constants on every dataset |
//!
//! Beyond the paper, `hotpath` measures the update-loop substrate itself:
//! intrusive half-edge handles vs. the preserved [`hash_baseline`]
//! layout, reporting updates/sec, allocations/update, and hash
//! probes/update into `BENCH_PR1.json`.
//!
//! Environment knobs: `DYNAMIS_FAST=1` restricts each experiment to a
//! representative subset of datasets; `DYNAMIS_TIME_LIMIT_SECS` overrides
//! the per-run DNF limit (default 120 s — the scaled stand-in for the
//! paper's five-hour cutoff).

pub mod alloc_track;
pub mod harness;
pub mod hash_baseline;
pub mod report;

pub use harness::{initial_solution, run, AlgoKind, InitialSolution, RunOutcome};
pub use report::Table;

/// Whether the fast-subset mode is enabled.
pub fn fast_mode() -> bool {
    std::env::var("DYNAMIS_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Per-run wall-clock limit standing in for the paper's five-hour cutoff.
pub fn time_limit() -> std::time::Duration {
    let secs = std::env::var("DYNAMIS_TIME_LIMIT_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(120);
    std::time::Duration::from_secs(secs)
}
