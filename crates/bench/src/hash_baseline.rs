//! The *hash-indexed* maintenance path, preserved as a benchmark
//! baseline.
//!
//! Before the intrusive half-edge rewrite, the framework emulated the
//! paper's in-edge pointers with global hash maps: `dkey(u, v) →
//! position` tables for `I(u)` and `¯I₁(v)` membership, a pair-keyed
//! bucket map for `¯I₂(S)`, and a pair-keyed grouping map inside the
//! `C₂` queue — one or more probes on **every count transition of every
//! update**. This module is a faithful, self-contained replica of that
//! design (same algorithms, same candidate discovery, same drain order)
//! so the `hotpath` bench can report updates/sec and probes/update for
//! the two layouts side by side. `hot_hash_probes` counts every hash-map
//! operation issued by the bookkeeping and swap search.
//!
//! Not used by any production path — benchmark and differential-test
//! reference only.

use dynamis_core::{DeltaFeed, DynamicMis, EngineError, SolutionDelta};
use dynamis_graph::collections::StampSet;
use dynamis_graph::hash::{pair_key, unpack_pair, FxHashMap};
use dynamis_graph::{DynamicGraph, Update};
use std::collections::VecDeque;

#[inline]
fn dkey(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CountEvent {
    To0,
    To1 { parent: u32 },
    To2 { a: u32, b: u32 },
    Other,
}

/// The `¯I₂` tier with pair-keyed bucket map and dkey'd by-parent index —
/// the seed's layout.
#[derive(Debug, Default)]
struct PairTier {
    bucket: FxHashMap<u64, Vec<u32>>,
    pos: Vec<u32>,
    key_of: Vec<u64>,
    by_parent: Vec<Vec<u32>>,
    bp_pos: FxHashMap<u64, u32>,
}

/// Hash-indexed framework state (the seed's `SwapState`).
#[derive(Debug)]
struct HashState {
    g: DynamicGraph,
    status: Vec<bool>,
    count: Vec<u32>,
    sol_list: Vec<Vec<u32>>,
    sol_pos: FxHashMap<u64, u32>,
    bar1: Vec<Vec<u32>>,
    bar1_pos: FxHashMap<u64, u32>,
    pairs: Option<PairTier>,
    size: usize,
    /// Hash-map operations issued by bookkeeping + swap search.
    probes: u64,
}

impl HashState {
    fn new(g: DynamicGraph, initial: &[u32], track_pairs: bool) -> Self {
        let cap = g.capacity();
        let mut st = HashState {
            g,
            status: vec![false; cap],
            count: vec![0; cap],
            sol_list: vec![Vec::new(); cap],
            sol_pos: FxHashMap::default(),
            bar1: vec![Vec::new(); cap],
            bar1_pos: FxHashMap::default(),
            pairs: track_pairs.then(PairTier::default),
            size: 0,
            probes: 0,
        };
        if let Some(p) = st.pairs.as_mut() {
            Self::tier_ensure(p, cap);
        }
        for &v in initial {
            st.status[v as usize] = true;
        }
        st.size = initial.len();
        for v in 0..cap as u32 {
            if !st.g.is_alive(v) || st.status[v as usize] {
                continue;
            }
            let sols: Vec<u32> =
                st.g.neighbors(v)
                    .filter(|&u| st.status[u as usize])
                    .collect();
            st.count[v as usize] = sols.len() as u32;
            for (i, &s) in sols.iter().enumerate() {
                st.probes += 1;
                st.sol_pos.insert(dkey(v, s), i as u32);
            }
            match sols.len() {
                1 => st.bar1_add(sols[0], v),
                2 => st.pair_add(v, sols[0], sols[1]),
                _ => {}
            }
            st.sol_list[v as usize] = sols;
        }
        st
    }

    fn tier_ensure(p: &mut PairTier, cap: usize) {
        if p.pos.len() < cap {
            p.pos.resize(cap, 0);
            p.key_of.resize(cap, 0);
            p.by_parent.resize_with(cap, Vec::new);
        }
    }

    fn ensure_capacity(&mut self, cap: usize) {
        if self.status.len() < cap {
            self.status.resize(cap, false);
            self.count.resize(cap, 0);
            self.sol_list.resize_with(cap, Vec::new);
            self.bar1.resize_with(cap, Vec::new);
        }
        if let Some(p) = self.pairs.as_mut() {
            Self::tier_ensure(p, cap);
        }
    }

    fn in_solution(&self, v: u32) -> bool {
        self.status[v as usize]
    }

    fn count(&self, v: u32) -> u32 {
        self.count[v as usize]
    }

    fn parent1(&self, u: u32) -> u32 {
        self.sol_list[u as usize][0]
    }

    fn parents2(&self, u: u32) -> (u32, u32) {
        let l = &self.sol_list[u as usize];
        (l[0].min(l[1]), l[0].max(l[1]))
    }

    fn bar2(&mut self, a: u32, b: u32) -> Vec<u32> {
        self.probes += 1;
        self.pairs
            .as_ref()
            .and_then(|p| p.bucket.get(&pair_key(a, b)))
            .cloned()
            .unwrap_or_default()
    }

    fn bar1_add(&mut self, parent: u32, u: u32) {
        let list = &mut self.bar1[parent as usize];
        self.probes += 1;
        self.bar1_pos.insert(dkey(parent, u), list.len() as u32);
        list.push(u);
    }

    fn bar1_remove(&mut self, parent: u32, u: u32) {
        self.probes += 1;
        let i = self
            .bar1_pos
            .remove(&dkey(parent, u))
            .expect("bar1 entry must exist") as usize;
        let list = &mut self.bar1[parent as usize];
        list.swap_remove(i);
        if i < list.len() {
            self.probes += 1;
            self.bar1_pos.insert(dkey(parent, list[i]), i as u32);
        }
    }

    fn pair_add(&mut self, u: u32, a: u32, b: u32) {
        let Some(p) = self.pairs.as_mut() else { return };
        let key = pair_key(a, b);
        self.probes += 1;
        let list = p.bucket.entry(key).or_default();
        p.pos[u as usize] = list.len() as u32;
        p.key_of[u as usize] = key;
        list.push(u);
        for parent in [a, b] {
            let bl = &mut p.by_parent[parent as usize];
            self.probes += 1;
            p.bp_pos.insert(dkey(parent, u), bl.len() as u32);
            bl.push(u);
        }
    }

    fn pair_remove(&mut self, u: u32) {
        let Some(p) = self.pairs.as_mut() else { return };
        let key = p.key_of[u as usize];
        self.probes += 1;
        let list = p.bucket.get_mut(&key).expect("bucket must exist");
        let i = p.pos[u as usize] as usize;
        list.swap_remove(i);
        if i < list.len() {
            p.pos[list[i] as usize] = i as u32;
        }
        if list.is_empty() {
            self.probes += 1;
            p.bucket.remove(&key);
        }
        let (a, b) = unpack_pair(key);
        for parent in [a, b] {
            self.probes += 1;
            let i = p
                .bp_pos
                .remove(&dkey(parent, u))
                .expect("by-parent entry must exist") as usize;
            let bl = &mut p.by_parent[parent as usize];
            bl.swap_remove(i);
            if i < bl.len() {
                self.probes += 1;
                p.bp_pos.insert(dkey(parent, bl[i]), i as u32);
            }
        }
    }

    fn inc_count(&mut self, u: u32, v: u32) -> CountEvent {
        let list = &mut self.sol_list[u as usize];
        self.probes += 1;
        self.sol_pos.insert(dkey(u, v), list.len() as u32);
        list.push(v);
        self.count[u as usize] += 1;
        match self.count[u as usize] {
            1 => {
                self.bar1_add(v, u);
                CountEvent::To1 { parent: v }
            }
            2 => {
                let old = self.sol_list[u as usize][0];
                self.bar1_remove(old, u);
                self.pair_add(u, old, v);
                CountEvent::To2 {
                    a: old.min(v),
                    b: old.max(v),
                }
            }
            3 => {
                self.pair_remove(u);
                CountEvent::Other
            }
            _ => CountEvent::Other,
        }
    }

    fn dec_count(&mut self, u: u32, v: u32) -> CountEvent {
        let old_count = self.count[u as usize];
        self.probes += 1;
        let i = self
            .sol_pos
            .remove(&dkey(u, v))
            .expect("sol entry must exist") as usize;
        let list = &mut self.sol_list[u as usize];
        list.swap_remove(i);
        if i < list.len() {
            self.probes += 1;
            self.sol_pos.insert(dkey(u, list[i]), i as u32);
        }
        self.count[u as usize] -= 1;
        match old_count {
            1 => {
                self.bar1_remove(v, u);
                CountEvent::To0
            }
            2 => {
                self.pair_remove(u);
                let parent = self.sol_list[u as usize][0];
                self.bar1_add(parent, u);
                CountEvent::To1 { parent }
            }
            3 => {
                let l = &self.sol_list[u as usize];
                let (a, b) = (l[0].min(l[1]), l[0].max(l[1]));
                self.pair_add(u, a, b);
                CountEvent::To2 { a, b }
            }
            _ => CountEvent::Other,
        }
    }

    fn purge_outsider(&mut self, v: u32) {
        match self.count[v as usize] {
            1 => {
                let p = self.sol_list[v as usize][0];
                self.bar1_remove(p, v);
            }
            2 => self.pair_remove(v),
            _ => {}
        }
        let sols = std::mem::take(&mut self.sol_list[v as usize]);
        for s in sols {
            self.probes += 1;
            self.sol_pos.remove(&dkey(v, s));
        }
        self.count[v as usize] = 0;
    }
}

/// The seed's pair-grouped `C₂` queue (hash map keyed by the pair).
#[derive(Debug, Default)]
struct HashC2 {
    order: VecDeque<u64>,
    queued: std::collections::HashSet<u64, std::hash::BuildHasherDefault<dynamis_graph::FxHasher>>,
    cand: FxHashMap<u64, Vec<u32>>,
    probes: u64,
}

impl HashC2 {
    fn push(&mut self, a: u32, b: u32, x: u32) {
        let key = pair_key(a, b);
        self.probes += 2;
        self.cand.entry(key).or_default().push(x);
        if self.queued.insert(key) {
            self.order.push_back(key);
        }
    }

    fn pop(&mut self) -> Option<((u32, u32), Vec<u32>)> {
        let key = self.order.pop_front()?;
        self.probes += 2;
        self.queued.remove(&key);
        let list = self.cand.remove(&key).unwrap_or_default();
        Some((unpack_pair(key), list))
    }
}

/// Dense `C₁` queue (identical to the production engine's).
#[derive(Debug, Default)]
struct DenseC1 {
    order: VecDeque<u32>,
    queued: Vec<bool>,
    cand: Vec<Vec<u32>>,
}

impl DenseC1 {
    fn ensure_capacity(&mut self, cap: usize) {
        if self.queued.len() < cap {
            self.queued.resize(cap, false);
            self.cand.resize_with(cap, Vec::new);
        }
    }

    fn push(&mut self, v: u32, u: u32) {
        self.ensure_capacity(v as usize + 1);
        self.cand[v as usize].push(u);
        if !self.queued[v as usize] {
            self.queued[v as usize] = true;
            self.order.push_back(v);
        }
    }

    fn pop(&mut self) -> Option<(u32, Vec<u32>)> {
        let v = self.order.pop_front()?;
        self.queued[v as usize] = false;
        Some((v, std::mem::take(&mut self.cand[v as usize])))
    }
}

/// Hash-indexed engine (the seed's `SwapEngine`).
#[derive(Debug)]
pub struct HashIndexedEngine {
    st: HashState,
    k2: bool,
    c1: DenseC1,
    c2: HashC2,
    repair: Vec<u32>,
    scratch: Vec<u32>,
    stamp: StampSet,
    stamp2: StampSet,
    feed: DeltaFeed,
    /// Updates processed.
    pub updates: u64,
}

impl HashIndexedEngine {
    fn new(graph: DynamicGraph, initial: &[u32], k2: bool) -> Self {
        let cap = graph.capacity();
        let st = HashState::new(graph, initial, k2);
        let mut c1 = DenseC1::default();
        c1.ensure_capacity(cap);
        let mut eng = HashIndexedEngine {
            st,
            k2,
            c1,
            c2: HashC2::default(),
            repair: Vec::new(),
            scratch: Vec::new(),
            stamp: StampSet::with_capacity(cap),
            stamp2: StampSet::with_capacity(cap),
            feed: DeltaFeed::default(),
            updates: 0,
        };
        for &v in initial {
            eng.feed.record_in(v);
        }
        eng.bootstrap();
        let _ = eng.feed.finish_update(); // close the bootstrap span
        eng
    }

    /// Total hash probes issued by bookkeeping, queueing, and swap search.
    pub fn hot_hash_probes(&self) -> u64 {
        self.st.probes + self.c2.probes
    }

    fn bootstrap(&mut self) {
        let free: Vec<u32> = self
            .st
            .g
            .vertices()
            .filter(|&v| !self.st.in_solution(v) && self.st.count(v) == 0)
            .collect();
        for v in free {
            if !self.st.in_solution(v) && self.st.count(v) == 0 {
                self.move_in(v);
            }
        }
        let sols: Vec<u32> = (0..self.st.status.len() as u32)
            .filter(|&v| self.st.status[v as usize])
            .collect();
        for v in sols {
            for i in 0..self.st.bar1[v as usize].len() {
                let u = self.st.bar1[v as usize][i];
                self.c1.push(v, u);
            }
            if self.k2 {
                let members = self
                    .st
                    .pairs
                    .as_ref()
                    .map(|p| p.by_parent[v as usize].clone())
                    .unwrap_or_default();
                for u in members {
                    let (a, b) = self.st.parents2(u);
                    self.c2.push(a, b, u);
                }
            }
        }
        self.drain();
    }

    fn handle_event(&mut self, u: u32, ev: CountEvent) {
        match ev {
            CountEvent::To0 => self.repair.push(u),
            CountEvent::To1 { parent } => self.c1.push(parent, u),
            CountEvent::To2 { a, b } => {
                if self.k2 {
                    self.c2.push(a, b, u);
                }
            }
            CountEvent::Other => {}
        }
    }

    fn move_in(&mut self, v: u32) {
        self.st.status[v as usize] = true;
        self.feed.record_in(v);
        self.st.size += 1;
        self.scratch.clear();
        self.scratch.extend(self.st.g.neighbors(v));
        for i in 0..self.scratch.len() {
            let u = self.scratch[i];
            let ev = self.st.inc_count(u, v);
            self.handle_event(u, ev);
        }
    }

    fn move_out(&mut self, v: u32) {
        self.st.status[v as usize] = false;
        self.feed.record_out(v);
        self.st.size -= 1;
        self.scratch.clear();
        self.scratch.extend(self.st.g.neighbors(v));
        for i in 0..self.scratch.len() {
            let u = self.scratch[i];
            let ev = self.st.dec_count(u, v);
            self.handle_event(u, ev);
        }
    }

    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.st.g.is_alive(u) && !self.st.in_solution(u) && self.st.count(u) == 0 {
                self.move_in(u);
            }
        }
    }

    fn drain(&mut self) {
        loop {
            self.process_repairs();
            if let Some((v, cands)) = self.c1.pop() {
                self.find_one_swap(v, cands);
            } else if self.k2 {
                if let Some(((a, b), cands)) = self.c2.pop() {
                    self.find_two_swap(a, b, cands);
                } else {
                    break;
                }
            } else {
                break;
            }
        }
    }

    fn find_one_swap(&mut self, v: u32, cands: Vec<u32>) {
        if !self.st.in_solution(v) {
            return;
        }
        self.stamp.clear();
        let mut valid: Vec<u32> = Vec::with_capacity(cands.len());
        for u in cands {
            if self.st.g.is_alive(u)
                && !self.st.in_solution(u)
                && self.st.count(u) == 1
                && self.st.parent1(u) == v
                && !self.stamp.is_marked(u)
            {
                self.stamp.mark(u);
                valid.push(u);
            }
        }
        if valid.is_empty() {
            return;
        }
        for &u in &valid {
            let bar_len = self.st.bar1[v as usize].len();
            let mut inside = 1usize;
            for w in self.st.g.neighbors(u) {
                if w != v
                    && !self.st.in_solution(w)
                    && self.st.count(w) == 1
                    && self.st.parent1(w) == v
                {
                    inside += 1;
                }
            }
            if inside < bar_len {
                self.move_out(v);
                self.move_in(u);
                self.process_repairs();
                return;
            }
        }
        if self.k2 {
            self.stamp.clear();
            for &c in &valid {
                self.stamp.mark(c);
            }
            let members = self
                .st
                .pairs
                .as_ref()
                .map(|p| p.by_parent[v as usize].clone())
                .unwrap_or_default();
            for u in members {
                let adj_c = self
                    .st
                    .g
                    .neighbors(u)
                    .filter(|&w| self.stamp.is_marked(w))
                    .count();
                if adj_c < valid.len() {
                    let (a, b) = self.st.parents2(u);
                    self.c2.push(a, b, u);
                }
            }
        }
    }

    fn find_two_swap(&mut self, a: u32, b: u32, cands: Vec<u32>) {
        if !self.st.in_solution(a) || !self.st.in_solution(b) {
            return;
        }
        self.stamp2.clear();
        let mut pivots: Vec<u32> = Vec::with_capacity(cands.len());
        for x in cands {
            if self.st.g.is_alive(x)
                && !self.st.in_solution(x)
                && self.st.count(x) == 2
                && self.st.parents2(x) == (a.min(b), a.max(b))
                && !self.stamp2.is_marked(x)
            {
                self.stamp2.mark(x);
                pivots.push(x);
            }
        }
        for x in pivots {
            self.stamp.clear();
            self.stamp.mark(x);
            for w in self.st.g.neighbors(x) {
                self.stamp.mark(w);
            }
            let bucket = self.st.bar2(a, b);
            let cy: Vec<u32> = self.st.bar1[a as usize]
                .iter()
                .chain(bucket.iter())
                .copied()
                .filter(|&y| !self.stamp.is_marked(y))
                .collect();
            if cy.is_empty() {
                continue;
            }
            let cz: Vec<u32> = self.st.bar1[b as usize]
                .iter()
                .chain(bucket.iter())
                .copied()
                .filter(|&z| !self.stamp.is_marked(z))
                .collect();
            if cz.is_empty() {
                continue;
            }
            for &y in &cy {
                self.stamp2.clear();
                self.stamp2.mark(y);
                for w in self.st.g.neighbors(y) {
                    self.stamp2.mark(w);
                }
                if let Some(&z) = cz.iter().find(|&&z| !self.stamp2.is_marked(z)) {
                    self.do_two_swap(a, b, x, y, z);
                    return;
                }
            }
        }
    }

    fn do_two_swap(&mut self, a: u32, b: u32, x: u32, y: u32, z: u32) {
        self.move_out(a);
        self.move_out(b);
        for v in [x, y, z] {
            if !self.st.in_solution(v) && self.st.count(v) == 0 {
                self.move_in(v);
            }
        }
        self.process_repairs();
    }

    /// Same rejection surface as the production engines, with the same
    /// fused edge-op validation (no extra probe beyond what the layout
    /// itself pays) so the head-to-head numbers stay honest.
    fn apply(&mut self, upd: &Update) -> Result<(), EngineError> {
        match upd {
            Update::InsertEdge(a, b) => self.insert_edge(*a, *b)?,
            Update::RemoveEdge(a, b) => self.remove_edge(*a, *b)?,
            Update::InsertVertex { id, neighbors } => self.insert_vertex(*id, neighbors)?,
            Update::RemoveVertex(v) => self.remove_vertex_upd(*v)?,
        }
        self.updates += 1;
        self.drain();
        Ok(())
    }

    fn insert_edge(&mut self, a: u32, b: u32) -> Result<(), EngineError> {
        if !self.st.g.insert_edge(a, b)? {
            return Err(EngineError::DuplicateEdge(a, b));
        }
        match (self.st.in_solution(a), self.st.in_solution(b)) {
            (false, false) => {}
            (true, false) => {
                let _ = self.st.inc_count(b, a);
            }
            (false, true) => {
                let _ = self.st.inc_count(a, b);
            }
            (true, true) => self.solution_edge_inserted(a, b),
        }
        Ok(())
    }

    fn solution_edge_inserted(&mut self, a: u32, b: u32) {
        let loser = if !self.st.bar1[b as usize].is_empty() {
            b
        } else if !self.st.bar1[a as usize].is_empty() {
            a
        } else if self.st.g.degree(b) >= self.st.g.degree(a) {
            b
        } else {
            a
        };
        let winner = if loser == a { b } else { a };
        self.st.status[loser as usize] = false;
        self.feed.record_out(loser);
        self.st.size -= 1;
        self.scratch.clear();
        let st = &self.st;
        self.scratch
            .extend(st.g.neighbors(loser).filter(|&w| w != winner));
        for i in 0..self.scratch.len() {
            let u = self.scratch[i];
            let ev = self.st.dec_count(u, loser);
            self.handle_event(u, ev);
        }
        let ev = self.st.inc_count(loser, winner);
        self.handle_event(loser, ev);
        self.process_repairs();
    }

    fn remove_edge(&mut self, a: u32, b: u32) -> Result<(), EngineError> {
        if !self.st.g.remove_edge(a, b)? {
            return Err(EngineError::MissingEdge(a, b));
        }
        match (self.st.in_solution(a), self.st.in_solution(b)) {
            (true, true) => unreachable!("solution vertices are never adjacent"),
            (true, false) => {
                let ev = self.st.dec_count(b, a);
                self.handle_event(b, ev);
                self.process_repairs();
            }
            (false, true) => {
                let ev = self.st.dec_count(a, b);
                self.handle_event(a, ev);
                self.process_repairs();
            }
            (false, false) => self.outsider_edge_removed(a, b),
        }
        Ok(())
    }

    fn outsider_edge_removed(&mut self, u: u32, v: u32) {
        let cu = self.st.count(u);
        let cv = self.st.count(v);
        if cu == 1 && cv == 1 {
            let pu = self.st.parent1(u);
            let pv = self.st.parent1(v);
            if pu == pv {
                self.c1.push(pu, u);
                self.c1.push(pu, v);
            } else if self.k2 {
                let (x, y) = (pu.min(pv), pu.max(pv));
                let bucket = self.st.bar2(x, y);
                self.st.probes += 2 * bucket.len() as u64; // has_edge probes
                if let Some(w) = bucket
                    .iter()
                    .copied()
                    .find(|&w| !self.st.g.has_edge(u, w) && !self.st.g.has_edge(v, w))
                {
                    self.do_two_swap(x, y, u, v, w);
                }
            }
            return;
        }
        if !self.k2 {
            return;
        }
        if cv == 2 && (1..=2).contains(&cu) {
            let (x, y) = self.st.parents2(v);
            if self.st.sol_list[u as usize]
                .iter()
                .all(|&p| p == x || p == y)
            {
                self.c2.push(x, y, v);
            }
        }
        if cu == 2 && (1..=2).contains(&cv) {
            let (x, y) = self.st.parents2(u);
            if self.st.sol_list[v as usize]
                .iter()
                .all(|&p| p == x || p == y)
            {
                self.c2.push(x, y, u);
            }
        }
    }

    fn insert_vertex(&mut self, id: u32, neighbors: &[u32]) -> Result<(), EngineError> {
        // Same rejection surface (and check order) as `validate_update`'s
        // InsertVertex arm, but in place: building a throwaway `Update`
        // would charge two allocations per vertex insert to this replica
        // only, skewing the bench's alloc-tracked comparison.
        let next = self.st.g.next_vertex_id();
        if next != id {
            return Err(dynamis_graph::GraphError::IdMismatch {
                expected: id,
                got: next,
            }
            .into());
        }
        for &n in neighbors {
            if !self.st.g.is_alive(n) {
                return Err(dynamis_graph::GraphError::VertexNotFound(n).into());
            }
        }
        // `validate_update` sorts and reports the smallest duplicated
        // value; match that payload so error-differential tests agree.
        let mut dup: Option<u32> = None;
        for (i, &n) in neighbors.iter().enumerate() {
            if neighbors[..i].contains(&n) {
                dup = Some(dup.map_or(n, |d| d.min(n)));
            }
        }
        if let Some(n) = dup {
            return Err(EngineError::DuplicateEdge(id, n));
        }
        let v = self.st.g.add_vertex();
        let cap = self.st.g.capacity();
        self.st.ensure_capacity(cap);
        self.c1.ensure_capacity(cap);
        for &n in neighbors {
            self.st.g.insert_edge(v, n).expect("validated");
        }
        for &n in neighbors {
            if self.st.in_solution(n) {
                let ev = self.st.inc_count(v, n);
                self.handle_event(v, ev);
            }
        }
        if self.st.count(v) == 0 {
            self.move_in(v);
        }
        self.process_repairs();
        Ok(())
    }

    fn remove_vertex_upd(&mut self, v: u32) -> Result<(), EngineError> {
        if !self.st.g.is_alive(v) {
            return Err(dynamis_graph::GraphError::VertexNotFound(v).into());
        }
        if self.st.in_solution(v) {
            self.st.status[v as usize] = false;
            self.feed.record_out(v);
            self.st.size -= 1;
            let former = self.st.g.remove_vertex(v).expect("aliveness checked");
            for u in former {
                let ev = self.st.dec_count(u, v);
                self.handle_event(u, ev);
            }
            self.process_repairs();
        } else {
            self.st.purge_outsider(v);
            self.st.g.remove_vertex(v).expect("aliveness checked");
        }
        Ok(())
    }

    fn heap_bytes_inner(&self) -> usize {
        let vecs: usize = self
            .st
            .sol_list
            .iter()
            .chain(self.st.bar1.iter())
            .map(|l| l.capacity() * 4)
            .sum();
        let tier = self.st.pairs.as_ref().map_or(0, |p| {
            p.bucket
                .values()
                .map(|v| v.capacity() * 4 + 48)
                .sum::<usize>()
                + p.by_parent.iter().map(|v| v.capacity() * 4).sum::<usize>()
                + p.pos.capacity() * 4
                + p.key_of.capacity() * 8
                + p.bp_pos.capacity() * 20
        });
        self.st.g.heap_bytes()
            + vecs
            + tier
            + (self.st.sol_pos.capacity() + self.st.bar1_pos.capacity()) * 20
    }
}

/// `DyOneSwap` on the hash-indexed substrate.
#[derive(Debug)]
pub struct HashIndexedOneSwap(HashIndexedEngine);

/// `DyTwoSwap` on the hash-indexed substrate.
#[derive(Debug)]
pub struct HashIndexedTwoSwap(HashIndexedEngine);

impl HashIndexedOneSwap {
    /// Builds the k = 1 hash-indexed engine.
    pub fn new(graph: DynamicGraph, initial: &[u32]) -> Self {
        HashIndexedOneSwap(HashIndexedEngine::new(graph, initial, false))
    }

    /// Bookkeeping hash probes so far.
    pub fn hot_hash_probes(&self) -> u64 {
        self.0.hot_hash_probes()
    }
}

impl HashIndexedTwoSwap {
    /// Builds the k = 2 hash-indexed engine.
    pub fn new(graph: DynamicGraph, initial: &[u32]) -> Self {
        HashIndexedTwoSwap(HashIndexedEngine::new(graph, initial, true))
    }

    /// Bookkeeping hash probes so far.
    pub fn hot_hash_probes(&self) -> u64 {
        self.0.hot_hash_probes()
    }
}

macro_rules! impl_dynamic_mis {
    ($ty:ty, $name:literal) => {
        impl DynamicMis for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn graph(&self) -> &DynamicGraph {
                &self.0.st.g
            }

            fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
                self.0.apply(u)?;
                let mut delta = self.0.feed.finish_update();
                delta.stats.updates = 1;
                Ok(delta)
            }

            fn drain_delta(&mut self) -> SolutionDelta {
                self.0.feed.drain()
            }

            fn size(&self) -> usize {
                self.0.st.size
            }

            fn solution(&self) -> Vec<u32> {
                (0..self.0.st.status.len() as u32)
                    .filter(|&v| self.0.st.status[v as usize])
                    .collect()
            }

            fn contains(&self, v: u32) -> bool {
                self.0.st.status[v as usize]
            }

            fn heap_bytes(&self) -> usize {
                self.0.heap_bytes_inner()
            }
        }
    };
}

impl_dynamic_mis!(HashIndexedOneSwap, "HashOneSwap");
impl_dynamic_mis!(HashIndexedTwoSwap, "HashTwoSwap");

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_gen::uniform::gnm;
    use dynamis_gen::{StreamConfig, UpdateStream};

    /// The hash-indexed replica and the intrusive production engines keep
    /// the same invariant (both k-maximal) and identical solution sizes
    /// are not required — but sizes must match the invariant floor and
    /// the replica must stay consistent under churn.
    #[test]
    fn replica_maintains_one_maximality() {
        let g = gnm(60, 150, 11);
        let ups = UpdateStream::new(&g, StreamConfig::default(), 12).take_updates(300);
        let mut e = HashIndexedOneSwap::new(g, &[]);
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        assert!(dynamis_static::verify::is_independent_dynamic(
            e.graph(),
            &e.solution()
        ));
        assert!(dynamis_static::verify::is_k_maximal_dynamic(
            e.graph(),
            &e.solution(),
            1
        ));
        assert!(e.hot_hash_probes() > 0, "the replica must actually hash");
    }

    #[test]
    fn replica_maintains_two_maximality() {
        let g = gnm(40, 90, 21);
        let ups = UpdateStream::new(&g, StreamConfig::default(), 22).take_updates(200);
        let mut e = HashIndexedTwoSwap::new(g, &[]);
        for u in &ups {
            e.try_apply(u).unwrap();
        }
        assert!(dynamis_static::verify::is_k_maximal_dynamic(
            e.graph(),
            &e.solution(),
            2
        ));
        assert!(e.hot_hash_probes() > 0);
    }
}
