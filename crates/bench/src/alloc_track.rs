//! Byte-accurate heap tracking, replacing the paper's `/usr/bin/time`
//! methodology with an in-process global allocator wrapper. Besides live
//! and peak bytes, the wrapper counts allocator *calls* (alloc + growing
//! realloc), which the `hotpath` bench divides by update count to report
//! allocations/update — the steady-state number for a well-buffered
//! engine should be near zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Global allocator that tracks live and peak heap bytes. Register in a
/// binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: dynamis_bench::alloc_track::TrackingAlloc = dynamis_bench::alloc_track::TrackingAlloc;
/// ```
pub struct TrackingAlloc;

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size > layout.size() {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            if new_size >= layout.size() {
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Allocator calls (alloc + growing realloc) since process start.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install TrackingAlloc as the global
    // allocator, so exercise the GlobalAlloc impl directly.
    #[test]
    fn counters_follow_alloc_dealloc_realloc() {
        reset_peak();
        let base = current_bytes();
        let calls = alloc_count();
        let a = TrackingAlloc;
        let layout = Layout::from_size_align(1024, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert!(alloc_count() > calls, "alloc call counted");
            assert_eq!(current_bytes(), base + 1024);
            assert!(peak_bytes() >= base + 1024);

            let grown = a.realloc(p, layout, 4096);
            assert!(!grown.is_null());
            assert_eq!(current_bytes(), base + 4096);

            let grown_layout = Layout::from_size_align(4096, 8).unwrap();
            let shrunk = a.realloc(grown, grown_layout, 512);
            assert!(!shrunk.is_null());
            assert_eq!(current_bytes(), base + 512);

            let final_layout = Layout::from_size_align(512, 8).unwrap();
            a.dealloc(shrunk, final_layout);
            assert_eq!(current_bytes(), base);
        }
        assert!(peak_bytes() >= base + 4096, "peak survives the shrink");
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }
}
