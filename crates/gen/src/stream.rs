//! Seeded update-stream generation.
//!
//! The paper's experiments "randomly insert/remove a predetermined number
//! of vertices/edges to simulate the update operations" (§V-A). The
//! [`UpdateStream`] maintains a shadow copy of the evolving graph so every
//! emitted operation is valid at the moment it is applied: edge insertions
//! never duplicate, deletions always hit existing edges, and inserted
//! vertex ids match what the consumer's own [`DynamicGraph`] will allocate
//! when the operations are replayed in order.

use dynamis_graph::collections::IndexedBag;
use dynamis_graph::hash::{pair_key, unpack_pair, FxHashMap};
use dynamis_graph::DynamicGraph;
use rand::rngs::SmallRng;
use rand::Rng;

pub use dynamis_graph::update::{apply_update, Update};

/// Relative operation weights plus the degree given to inserted vertices.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Weight of edge insertions.
    pub edge_insert: u32,
    /// Weight of edge deletions.
    pub edge_delete: u32,
    /// Weight of vertex insertions.
    pub vertex_insert: u32,
    /// Weight of vertex deletions.
    pub vertex_delete: u32,
    /// Number of edges attached to a newly inserted vertex
    /// (0 = use the graph's rounded average degree, re-read at stream
    /// construction).
    pub new_vertex_degree: usize,
}

impl Default for StreamConfig {
    /// The paper's default workload is edge-dominated with a small share of
    /// vertex churn.
    fn default() -> Self {
        StreamConfig {
            edge_insert: 45,
            edge_delete: 45,
            vertex_insert: 5,
            vertex_delete: 5,
            new_vertex_degree: 0,
        }
    }
}

impl StreamConfig {
    /// Pure edge workload (insertions and deletions only).
    pub fn edges_only() -> Self {
        StreamConfig {
            edge_insert: 50,
            edge_delete: 50,
            vertex_insert: 0,
            vertex_delete: 0,
            new_vertex_degree: 0,
        }
    }

    /// Growth-only workload (no deletions) — models the "new links are
    /// constantly established" scenario of the introduction.
    pub fn insert_only() -> Self {
        StreamConfig {
            edge_insert: 90,
            edge_delete: 0,
            vertex_insert: 10,
            vertex_delete: 0,
            new_vertex_degree: 0,
        }
    }

    fn total(&self) -> u32 {
        self.edge_insert + self.edge_delete + self.vertex_insert + self.vertex_delete
    }
}

/// Region-biased sampling state: which region each vertex belongs to
/// and a per-region bag of alive vertices for O(1) local sampling.
struct Regions {
    of: Vec<u32>,
    bags: Vec<IndexedBag>,
    bias: f64,
}

/// Generator of valid update operations against an evolving shadow graph.
pub struct UpdateStream {
    shadow: DynamicGraph,
    cfg: StreamConfig,
    rng: SmallRng,
    /// Current edges as packed pair keys, for O(1) uniform sampling.
    edge_vec: Vec<u64>,
    edge_pos: FxHashMap<u64, u32>,
    alive: IndexedBag,
    new_vertex_degree: usize,
    regions: Option<Regions>,
}

impl UpdateStream {
    /// Builds a stream over a copy of `start`.
    pub fn new(start: &DynamicGraph, cfg: StreamConfig, seed: u64) -> Self {
        assert!(cfg.total() > 0, "at least one operation weight must be set");
        let mut edge_vec = Vec::with_capacity(start.num_edges());
        let mut edge_pos = FxHashMap::default();
        for (u, v) in start.edges() {
            let k = pair_key(u, v);
            edge_pos.insert(k, edge_vec.len() as u32);
            edge_vec.push(k);
        }
        let mut alive = IndexedBag::with_capacity(start.capacity());
        for v in start.vertices() {
            alive.insert(v);
        }
        let auto_deg = start.avg_degree().round().max(1.0) as usize;
        UpdateStream {
            shadow: start.clone(),
            cfg,
            rng: crate::rng(seed),
            edge_vec,
            edge_pos,
            alive,
            new_vertex_degree: if cfg.new_vertex_degree == 0 {
                auto_deg
            } else {
                cfg.new_vertex_degree
            },
            regions: None,
        }
    }

    /// Builds a *region-biased* stream: with probability `bias` an edge
    /// insertion draws both endpoints from the same region, and a fresh
    /// vertex wires its initial edges into its home region — modeling
    /// the community-local update traffic a locality-aware partition
    /// banks on. `regions[v]` names live vertex `v`'s region (e.g. the
    /// planted community `v / block_size`); fresh vertices adopt the
    /// region of a uniformly sampled live vertex. Deletions stay
    /// uniform — removing a sampled edge or vertex is region-local by
    /// construction. `bias = 0.0` degenerates to [`UpdateStream::new`].
    pub fn with_regions(
        start: &DynamicGraph,
        cfg: StreamConfig,
        seed: u64,
        regions: &[u32],
        bias: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&bias), "bias must be in [0, 1]");
        let mut stream = Self::new(start, cfg, seed);
        let count = regions.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut bags = vec![IndexedBag::with_capacity(start.capacity()); count];
        let mut of = vec![0u32; start.capacity()];
        for v in start.vertices() {
            let r = regions[v as usize];
            of[v as usize] = r;
            bags[r as usize].insert(v);
        }
        stream.regions = Some(Regions { of, bags, bias });
        stream
    }

    /// Shadow view of the graph state after all emitted updates.
    pub fn shadow(&self) -> &DynamicGraph {
        &self.shadow
    }

    fn record_edge(&mut self, u: u32, v: u32) {
        let k = pair_key(u, v);
        self.edge_pos.insert(k, self.edge_vec.len() as u32);
        self.edge_vec.push(k);
    }

    fn erase_edge(&mut self, u: u32, v: u32) {
        let k = pair_key(u, v);
        if let Some(p) = self.edge_pos.remove(&k) {
            self.edge_vec.swap_remove(p as usize);
            if (p as usize) < self.edge_vec.len() {
                let moved = self.edge_vec[p as usize];
                self.edge_pos.insert(moved, p);
            }
        }
    }

    fn random_alive(&mut self) -> Option<u32> {
        if self.alive.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.alive.len());
        Some(self.alive.as_slice()[i])
    }

    /// A random live member of `u`'s region (possibly `u` itself), or
    /// `None` when the stream is unbiased or the local roll fails.
    fn random_local_to(&mut self, u: u32) -> Option<u32> {
        let reg = self.regions.as_ref()?;
        if !self.rng.gen_bool(reg.bias) {
            return None;
        }
        let bag = &reg.bags[reg.of[u as usize] as usize];
        if bag.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..bag.len());
        Some(bag.as_slice()[i])
    }

    fn try_edge_insert(&mut self) -> Option<Update> {
        let n = self.alive.len();
        if n < 2 {
            return None;
        }
        for _ in 0..64 {
            let u = self.random_alive()?;
            let v = match self.random_local_to(u) {
                Some(w) => w,
                None => self.random_alive()?,
            };
            if u != v && !self.shadow.has_edge(u, v) {
                self.shadow.insert_edge(u, v).unwrap();
                self.record_edge(u, v);
                return Some(Update::InsertEdge(u, v));
            }
        }
        None
    }

    fn try_edge_delete(&mut self) -> Option<Update> {
        if self.edge_vec.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.edge_vec.len());
        let (u, v) = unpack_pair(self.edge_vec[i]);
        self.shadow.remove_edge(u, v).unwrap();
        self.erase_edge(u, v);
        Some(Update::RemoveEdge(u, v))
    }

    fn try_vertex_insert(&mut self) -> Option<Update> {
        let want = self.new_vertex_degree.min(self.alive.len());
        // The fresh vertex's home: the region of a uniformly sampled
        // live vertex, which its biased neighbor draws then stay in.
        // Unbiased streams must not touch the RNG here — their seeded
        // update sequences are pinned by downstream tests.
        let home = if self.regions.is_some() {
            self.random_alive()
                .map(|seed_v| self.regions.as_ref().map(|r| r.of[seed_v as usize]))
                .unwrap_or_default()
        } else {
            None
        };
        let mut neighbors = Vec::with_capacity(want);
        for _ in 0..64 * want.max(1) {
            if neighbors.len() == want {
                break;
            }
            let drawn = match home {
                Some(r) => {
                    // Arbitrary member of the home region as the bias
                    // anchor (regions are uniform within themselves).
                    let anchor = self.regions.as_ref().unwrap().bags[r as usize]
                        .as_slice()
                        .first()
                        .copied();
                    match anchor.and_then(|a| self.random_local_to(a)) {
                        Some(w) => Some(w),
                        None => self.random_alive(),
                    }
                }
                None => self.random_alive(),
            };
            if let Some(u) = drawn {
                if !neighbors.contains(&u) {
                    neighbors.push(u);
                }
            } else {
                break;
            }
        }
        let id = self.shadow.add_vertex();
        self.alive.insert(id);
        if let Some(reg) = self.regions.as_mut() {
            let r = home.unwrap_or(0);
            if reg.of.len() <= id as usize {
                reg.of.resize(id as usize + 1, 0);
            }
            reg.of[id as usize] = r;
            reg.bags[r as usize].insert(id);
        }
        for &u in &neighbors {
            self.shadow.insert_edge(id, u).unwrap();
            self.record_edge(id, u);
        }
        Some(Update::InsertVertex { id, neighbors })
    }

    fn try_vertex_delete(&mut self) -> Option<Update> {
        if self.alive.len() <= 2 {
            return None;
        }
        let v = self.random_alive()?;
        let former = self.shadow.remove_vertex(v).unwrap();
        for u in former {
            self.erase_edge(v, u);
        }
        self.alive.remove(v);
        if let Some(reg) = self.regions.as_mut() {
            reg.bags[reg.of[v as usize] as usize].remove(v);
        }
        Some(Update::RemoveVertex(v))
    }

    /// Emits the next update. Falls back across operation kinds when the
    /// sampled kind is momentarily impossible (e.g. deleting from an
    /// edgeless graph), so a stream never stalls on a non-degenerate graph.
    pub fn next_update(&mut self) -> Update {
        let roll = self.rng.gen_range(0..self.cfg.total());
        let ei = self.cfg.edge_insert;
        let ed = ei + self.cfg.edge_delete;
        let vi = ed + self.cfg.vertex_insert;
        let order: [u8; 4] = if roll < ei {
            [0, 1, 2, 3]
        } else if roll < ed {
            [1, 0, 3, 2]
        } else if roll < vi {
            [2, 0, 1, 3]
        } else {
            [3, 1, 0, 2]
        };
        for kind in order {
            let upd = match kind {
                0 => self.try_edge_insert(),
                1 => self.try_edge_delete(),
                2 => self.try_vertex_insert(),
                _ => self.try_vertex_delete(),
            };
            if let Some(u) = upd {
                return u;
            }
        }
        // Unreachable in practice: vertex insertion always succeeds.
        self.try_vertex_insert()
            .expect("vertex insertion cannot fail")
    }

    /// Emits `count` updates.
    pub fn take_updates(&mut self, count: usize) -> Vec<Update> {
        (0..count).map(|_| self.next_update()).collect()
    }
}

/// A starting graph plus a pre-generated update schedule — the unit of
/// work every experiment harness consumes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Initial graph `G_0`.
    pub graph: DynamicGraph,
    /// Updates producing `G_1 … G_T`.
    pub updates: Vec<Update>,
}

impl Workload {
    /// Generates a workload of `count` updates over `graph`.
    pub fn generate(graph: DynamicGraph, count: usize, cfg: StreamConfig, seed: u64) -> Self {
        let mut stream = UpdateStream::new(&graph, cfg, seed);
        let updates = stream.take_updates(count);
        Workload { graph, updates }
    }

    /// The graph state after applying every update (recomputed).
    pub fn final_graph(&self) -> DynamicGraph {
        let mut g = self.graph.clone();
        for u in &self.updates {
            apply_update(&mut g, u).expect("workload replay must be valid");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::gnm;

    #[test]
    fn stream_ops_replay_cleanly() {
        let g = gnm(60, 150, 3);
        let wl = Workload::generate(g.clone(), 2000, StreamConfig::default(), 9);
        let mut replay = g;
        for u in &wl.updates {
            apply_update(&mut replay, u).unwrap();
        }
        replay.check_consistency().unwrap();
        assert_eq!(wl.updates.len(), 2000);
    }

    #[test]
    fn shadow_matches_replay() {
        let g = gnm(40, 80, 1);
        let mut stream = UpdateStream::new(&g, StreamConfig::default(), 4);
        let ups = stream.take_updates(500);
        let mut replay = g;
        for u in &ups {
            apply_update(&mut replay, u).unwrap();
        }
        assert_eq!(replay.num_edges(), stream.shadow().num_edges());
        assert_eq!(replay.num_vertices(), stream.shadow().num_vertices());
        for (u, v) in stream.shadow().edges() {
            assert!(replay.has_edge(u, v));
        }
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let g = gnm(30, 60, 2);
        let a = UpdateStream::new(&g, StreamConfig::default(), 11).take_updates(200);
        let b = UpdateStream::new(&g, StreamConfig::default(), 11).take_updates(200);
        assert_eq!(a, b);
        let c = UpdateStream::new(&g, StreamConfig::default(), 12).take_updates(200);
        assert_ne!(a, c);
    }

    #[test]
    fn edges_only_config_preserves_vertex_set() {
        let g = gnm(25, 50, 5);
        let wl = Workload::generate(g.clone(), 1000, StreamConfig::edges_only(), 6);
        let end = wl.final_graph();
        assert_eq!(end.num_vertices(), 25);
        assert!(wl
            .updates
            .iter()
            .all(|u| matches!(u, Update::InsertEdge(..) | Update::RemoveEdge(..))));
    }

    #[test]
    fn insert_only_grows() {
        let g = gnm(20, 30, 5);
        let wl = Workload::generate(g.clone(), 300, StreamConfig::insert_only(), 6);
        let end = wl.final_graph();
        assert!(end.num_edges() > g.num_edges());
        assert!(end.num_vertices() >= g.num_vertices());
    }

    #[test]
    fn stream_survives_degenerate_start() {
        // Start from a near-empty graph; fallbacks must keep ops flowing.
        let mut g = DynamicGraph::new();
        g.add_vertices(3);
        let mut s = UpdateStream::new(&g, StreamConfig::default(), 0);
        let ups = s.take_updates(200);
        assert_eq!(ups.len(), 200);
        let mut replay = g;
        for u in &ups {
            apply_update(&mut replay, u).unwrap();
        }
        replay.check_consistency().unwrap();
    }

    #[test]
    fn region_bias_keeps_edge_traffic_local() {
        let g = crate::structured::planted_communities(10, 40, 6, 30, 5);
        let regions: Vec<u32> = (0..g.capacity() as u32).map(|v| v / 40).collect();
        // Pure edge workload: vertex churn would reuse ids under fresh
        // home regions and make this test's static id → region map lie.
        let mut s = UpdateStream::with_regions(&g, StreamConfig::edges_only(), 21, &regions, 0.9);
        let ups = s.take_updates(4000);
        let (mut local, mut cross) = (0usize, 0usize);
        for u in &ups {
            if let Update::InsertEdge(a, b) = u {
                if regions[*a as usize] == regions[*b as usize] {
                    local += 1;
                } else {
                    cross += 1;
                }
            }
        }
        // Uniform sampling would land intra-region ~10% of the time;
        // bias 0.9 must push well past half.
        assert!(
            local > 4 * cross,
            "bias failed: {local} local vs {cross} cross inserts"
        );
        let mut replay = g;
        for u in &ups {
            apply_update(&mut replay, u).unwrap();
        }
        replay.check_consistency().unwrap();
    }

    #[test]
    fn region_streams_are_seed_deterministic() {
        let g = crate::structured::planted_communities(4, 25, 5, 10, 7);
        let regions: Vec<u32> = (0..g.capacity() as u32).map(|v| v / 25).collect();
        let a = UpdateStream::with_regions(&g, StreamConfig::default(), 13, &regions, 0.8)
            .take_updates(500);
        let b = UpdateStream::with_regions(&g, StreamConfig::default(), 13, &regions, 0.8)
            .take_updates(500);
        assert_eq!(a, b);
    }

    #[test]
    fn inserted_vertex_ids_match_consumer_allocation() {
        let g = gnm(10, 15, 8);
        let mut s = UpdateStream::new(
            &g,
            StreamConfig {
                vertex_insert: 50,
                vertex_delete: 50,
                edge_insert: 0,
                edge_delete: 0,
                new_vertex_degree: 2,
            },
            3,
        );
        let ups = s.take_updates(300);
        let mut replay = g;
        for u in &ups {
            // apply_update debug-asserts id equality internally.
            apply_update(&mut replay, u).unwrap();
        }
        replay.check_consistency().unwrap();
    }
}
