//! R-MAT (recursive matrix) graph generator.
//!
//! R-MAT (Chakrabarti, Zhan, Faloutsos, SDM 2004) drops each edge into a
//! recursively partitioned adjacency matrix: at every level the edge
//! chooses one of four quadrants with probabilities `(a, b, c, d)`. Skewed
//! quadrant weights (the classic `a = 0.57, b = c = 0.19, d = 0.05`)
//! produce heavy-tailed degree distributions and community-like structure —
//! the model behind the Graph500 benchmark and a second, independent way
//! (besides Chung–Lu) of producing the power-law workloads of §V.

use dynamis_graph::hash::{pair_key, FxHashSet};
use dynamis_graph::DynamicGraph;
use rand::Rng;

/// Quadrant probabilities of the recursive matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// Top-left quadrant (both endpoints in the low half).
    pub a: f64,
    /// Top-right quadrant.
    pub b: f64,
    /// Bottom-left quadrant.
    pub c: f64,
    /// Bottom-right quadrant.
    pub d: f64,
    /// Per-level multiplicative noise on the quadrant weights, in
    /// `[0, 1)`; Graph500 uses ~0.1 to smooth the degree staircase.
    pub noise: f64,
}

impl Default for RmatConfig {
    /// The classic skewed parameterization.
    fn default() -> Self {
        RmatConfig {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
        }
    }
}

impl RmatConfig {
    /// A symmetric (Erdős–Rényi-like) parameterization, for contrast.
    pub fn uniform() -> Self {
        RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
        }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "quadrant probabilities must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "probabilities must be non-negative"
        );
        assert!((0.0..1.0).contains(&self.noise), "noise must be in [0, 1)");
    }
}

/// Generates an R-MAT graph with `2^scale` vertices and (up to) `edges`
/// distinct undirected edges. Self-loops and duplicates are redrawn a
/// bounded number of times, so on very dense parameterizations the final
/// edge count can fall slightly short.
pub fn rmat(scale: u32, edges: usize, cfg: RmatConfig, seed: u64) -> DynamicGraph {
    cfg.validate();
    assert!(scale <= 30, "scale {scale} would overflow vertex ids");
    let n = 1usize << scale;
    let mut rng = crate::rng(seed);
    let mut seen = FxHashSet::default();
    seen.reserve(edges);
    let mut list = Vec::with_capacity(edges);
    let max_attempts = edges.saturating_mul(20).max(1000);
    let mut attempts = 0usize;
    while list.len() < edges && attempts < max_attempts {
        attempts += 1;
        let (u, v) = sample_cell(scale, &cfg, &mut rng);
        if u == v {
            continue;
        }
        if seen.insert(pair_key(u, v)) {
            list.push((u, v));
        }
    }
    DynamicGraph::from_edges(n, &list)
}

/// Draws one (row, column) cell of the recursive matrix.
fn sample_cell<R: Rng>(scale: u32, cfg: &RmatConfig, rng: &mut R) -> (u32, u32) {
    let (mut u, mut v) = (0u32, 0u32);
    for level in 0..scale {
        let bit = 1u32 << (scale - 1 - level);
        // Multiplicative noise keeps the expected weights but breaks the
        // deterministic staircase in the degree distribution.
        let jitter = |p: f64, r: &mut R| {
            if cfg.noise > 0.0 {
                p * (1.0 - cfg.noise + 2.0 * cfg.noise * r.gen::<f64>())
            } else {
                p
            }
        };
        let a = jitter(cfg.a, rng);
        let b = jitter(cfg.b, rng);
        let c = jitter(cfg.c, rng);
        let d = jitter(cfg.d, rng);
        let total = a + b + c + d;
        let roll = rng.gen::<f64>() * total;
        if roll < a {
            // top-left: no bits set
        } else if roll < a + b {
            v |= bit;
        } else if roll < a + b + c {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size() {
        let g = rmat(10, 3000, RmatConfig::default(), 7);
        assert_eq!(g.capacity(), 1024);
        // Dedup/self-loop redraws may lose a few edges but not many.
        assert!(g.num_edges() > 2800, "got {}", g.num_edges());
        g.check_consistency().unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = rmat(8, 500, RmatConfig::default(), 42);
        let b = rmat(8, 500, RmatConfig::default(), 42);
        let mut ea: Vec<_> = a.edges().collect();
        let mut eb: Vec<_> = b.edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(8, 500, RmatConfig::default(), 1);
        let b = rmat(8, 500, RmatConfig::default(), 2);
        let ea: std::collections::BTreeSet<_> = a.edges().collect();
        let eb: std::collections::BTreeSet<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn skewed_config_is_heavier_tailed_than_uniform() {
        let skewed = rmat(11, 8000, RmatConfig::default(), 3);
        let uniform = rmat(11, 8000, RmatConfig::uniform(), 3);
        assert!(
            skewed.max_degree() > 2 * uniform.max_degree(),
            "skewed Δ = {} vs uniform Δ = {}",
            skewed.max_degree(),
            uniform.max_degree()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_panic() {
        rmat(
            4,
            10,
            RmatConfig {
                a: 0.9,
                b: 0.3,
                c: 0.1,
                d: 0.1,
                noise: 0.0,
            },
            1,
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = rmat(6, 400, RmatConfig::default(), 11);
        g.check_consistency().unwrap();
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }
}
