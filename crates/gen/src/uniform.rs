//! Erdős–Rényi uniform random graphs.

use dynamis_graph::hash::{pair_key, FxHashSet};
use dynamis_graph::DynamicGraph;
use rand::Rng;

/// Samples `G(n, m)`: exactly `m` distinct edges chosen uniformly among all
/// vertex pairs. Panics if `m` exceeds the number of possible pairs.
pub fn gnm(n: usize, m: usize, seed: u64) -> DynamicGraph {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "requested {m} edges but K_{n} has only {max_m}");
    let mut rng = crate::rng(seed);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.reserve(m);
    let mut edges = Vec::with_capacity(m);
    // Dense fallback keeps rejection sampling from stalling near K_n.
    if m * 3 > max_m * 2 {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max_m);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                all.push((u, v));
            }
        }
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(m);
        return DynamicGraph::from_edges(n, &all);
    }
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && seen.insert(pair_key(u, v)) {
            edges.push((u, v));
        }
    }
    DynamicGraph::from_edges(n, &edges)
}

/// Samples `G(n, p)` by geometric edge skipping (O(n + m) expected).
pub fn gnp(n: usize, p: f64, seed: u64) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = DynamicGraph::with_capacity(n);
    g.add_vertices(n);
    if p == 0.0 || n < 2 {
        return g;
    }
    let mut rng = crate::rng(seed);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                g.insert_edge(u, v).unwrap();
            }
        }
        return g;
    }
    // Iterate pair ranks, jumping ahead by geometrically distributed gaps.
    let lq = (1.0 - p).ln();
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut rank: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / lq).floor() as u64;
        rank = rank.saturating_add(skip);
        if rank >= total {
            break;
        }
        let (u, v) = rank_to_pair(rank, n as u64);
        g.insert_edge(u, v).unwrap();
        rank += 1;
    }
    g
}

/// Maps a linear rank in `[0, n(n-1)/2)` to the pair `(u, v)`, `u < v`,
/// in lexicographic order.
fn rank_to_pair(rank: u64, n: u64) -> (u32, u32) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve by scan-free math:
    // find largest u with f(u) = u*(2n - u - 1)/2 <= rank.
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid * (2 * n - mid - 1) / 2 <= rank {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let base = u * (2 * n - u - 1) / 2;
    let v = u + 1 + (rank - base);
    (u as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm(50, 200, 1);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 200);
        g.check_consistency().unwrap();
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a: Vec<_> = {
            let mut e: Vec<_> = gnm(30, 60, 7).edges().collect();
            e.sort_unstable();
            e
        };
        let b: Vec<_> = {
            let mut e: Vec<_> = gnm(30, 60, 7).edges().collect();
            e.sort_unstable();
            e
        };
        let c: Vec<_> = {
            let mut e: Vec<_> = gnm(30, 60, 8).edges().collect();
            e.sort_unstable();
            e
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_dense_fallback_reaches_complete_graph() {
        let g = gnm(8, 28, 3);
        assert_eq!(g.num_edges(), 28);
        for u in 0..8 {
            assert_eq!(g.degree(u), 7);
        }
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn gnm_rejects_impossible_m() {
        gnm(4, 7, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(20, 0.0, 0).num_edges(), 0);
        assert_eq!(gnp(6, 1.0, 0).num_edges(), 15);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 20.0,
            "expected ~{expected}, got {got}"
        );
        g.check_consistency().unwrap();
    }

    #[test]
    fn rank_to_pair_is_bijective_on_small_n() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for rank in 0..(n * (n - 1) / 2) {
            let (u, v) = rank_to_pair(rank, n);
            assert!(u < v && (v as u64) < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }
}
