//! Deterministic structured graphs, including the worst-case families of
//! Theorem 3.
//!
//! The paper proves that for every `k ≥ 2` there are infinite graph
//! families where a k-maximal independent set is only `2/Δ` of optimal:
//! subdivide every edge of `K_n` (for `k ∈ {2,3}`) or of the hypercube
//! `Q_n` (for `k ≥ 4`). [`subdivide`] performs that construction.

use dynamis_graph::DynamicGraph;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> DynamicGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    DynamicGraph::from_edges(n, &edges)
}

/// The path `P_n` on `n` vertices.
pub fn path(n: usize) -> DynamicGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    DynamicGraph::from_edges(n, &edges)
}

/// The cycle `C_n`.
pub fn cycle(n: usize) -> DynamicGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.push((n as u32 - 1, 0));
    DynamicGraph::from_edges(n, &edges)
}

/// The star `K_{1,n-1}` centered at vertex 0.
pub fn star(n: usize) -> DynamicGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    DynamicGraph::from_edges(n, &edges)
}

/// The hypercube graph `Q_d`: `2^d` vertices, edges between ids differing
/// in exactly one bit. `Q_d` is d-regular with girth 4 (for d ≥ 2).
pub fn hypercube(d: usize) -> DynamicGraph {
    assert!(d < 28, "hypercube dimension too large");
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d / 2);
    for u in 0..n as u32 {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    DynamicGraph::from_edges(n, &edges)
}

/// Subdivides every edge: edge `(u, v)` is replaced by a fresh vertex `w`
/// and the two edges `(u, w)`, `(w, v)`.
///
/// Applied to `K_n` this yields the paper's `K'_n` (worst case for
/// `k ∈ {2,3}`); applied to `Q_n` it yields `Q'_n` (worst case for
/// `k ≥ 4`). In both, the original vertices form a k-maximal independent
/// set of size `n_orig` while the subdivision vertices form the optimum of
/// size `m_orig`.
pub fn subdivide(g: &DynamicGraph) -> DynamicGraph {
    let n = g.capacity();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut out = DynamicGraph::with_capacity(n + edges.len());
    out.add_vertices(n);
    for &(u, v) in &edges {
        let w = out.add_vertex();
        out.insert_edge(u, w).unwrap();
        out.insert_edge(w, v).unwrap();
    }
    out
}

/// The paper's `K'_n` worst-case family (Fig. 3a): subdivided complete
/// graph. Its independence number is `n(n-1)/2` while `{0..n}` is a
/// k-maximal independent set of size `n`, and `Δ = n - 1`.
pub fn k_prime(n: usize) -> DynamicGraph {
    subdivide(&complete(n))
}

/// The paper's `Q'_n` worst-case family (Fig. 3b): subdivided hypercube.
/// `α = 2^{n-1}·n` while the original `2^n` vertices are k-maximal,
/// and `Δ = n`.
pub fn q_prime(d: usize) -> DynamicGraph {
    subdivide(&hypercube(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn path_cycle_star() {
        assert_eq!(path(10).num_edges(), 9);
        assert_eq!(cycle(10).num_edges(), 10);
        let s = star(10);
        assert_eq!(s.num_edges(), 9);
        assert_eq!(s.degree(0), 9);
    }

    #[test]
    fn hypercube_is_regular_with_girth_four() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 32);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        // girth 4: no triangles — any two neighbors of a vertex differ in
        // two bits, hence are non-adjacent.
        for v in g.vertices() {
            let nb: Vec<u32> = g.neighbors(v).collect();
            for (i, &a) in nb.iter().enumerate() {
                for &b in &nb[i + 1..] {
                    assert!(!g.has_edge(a, b));
                }
            }
        }
    }

    #[test]
    fn subdivision_structure() {
        let g = k_prime(4);
        // K_4: 4 original + 6 subdivision vertices, 12 edges.
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 12);
        // Original vertices keep degree n-1 = 3, subdivision vertices are
        // degree 2.
        for v in 0..4u32 {
            assert_eq!(g.degree(v), 3);
        }
        for v in 4..10u32 {
            assert_eq!(g.degree(v), 2);
        }
        // No two original vertices remain adjacent.
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn q_prime_counts_match_paper() {
        let d = 4;
        let g = q_prime(d);
        let n0 = 1usize << d;
        let m0 = (1usize << (d - 1)) * d;
        assert_eq!(g.num_vertices(), n0 + m0);
        assert_eq!(g.num_edges(), 2 * m0);
        assert_eq!(g.max_degree(), d);
    }
}
