//! Deterministic structured graphs, including the worst-case families of
//! Theorem 3 and planted-community graphs for partition-quality tests.
//!
//! The paper proves that for every `k ≥ 2` there are infinite graph
//! families where a k-maximal independent set is only `2/Δ` of optimal:
//! subdivide every edge of `K_n` (for `k ∈ {2,3}`) or of the hypercube
//! `Q_n` (for `k ≥ 4`). [`subdivide`] performs that construction.
//!
//! [`planted_communities`] builds the opposite of a random worst case: a
//! graph whose edges overwhelmingly stay inside known communities, the
//! regime where a locality-aware shard partition beats degree balance.

use crate::rng;
use dynamis_graph::hash::{pair_key, FxHashSet};
use dynamis_graph::DynamicGraph;
use rand::Rng;

/// The complete graph `K_n`.
pub fn complete(n: usize) -> DynamicGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    DynamicGraph::from_edges(n, &edges)
}

/// The path `P_n` on `n` vertices.
pub fn path(n: usize) -> DynamicGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    DynamicGraph::from_edges(n, &edges)
}

/// The cycle `C_n`.
pub fn cycle(n: usize) -> DynamicGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.push((n as u32 - 1, 0));
    DynamicGraph::from_edges(n, &edges)
}

/// The star `K_{1,n-1}` centered at vertex 0.
pub fn star(n: usize) -> DynamicGraph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    DynamicGraph::from_edges(n, &edges)
}

/// The hypercube graph `Q_d`: `2^d` vertices, edges between ids differing
/// in exactly one bit. `Q_d` is d-regular with girth 4 (for d ≥ 2).
pub fn hypercube(d: usize) -> DynamicGraph {
    assert!(d < 28, "hypercube dimension too large");
    let n = 1usize << d;
    let mut edges = Vec::with_capacity(n * d / 2);
    for u in 0..n as u32 {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    DynamicGraph::from_edges(n, &edges)
}

/// Subdivides every edge: edge `(u, v)` is replaced by a fresh vertex `w`
/// and the two edges `(u, w)`, `(w, v)`.
///
/// Applied to `K_n` this yields the paper's `K'_n` (worst case for
/// `k ∈ {2,3}`); applied to `Q_n` it yields `Q'_n` (worst case for
/// `k ≥ 4`). In both, the original vertices form a k-maximal independent
/// set of size `n_orig` while the subdivision vertices form the optimum of
/// size `m_orig`.
pub fn subdivide(g: &DynamicGraph) -> DynamicGraph {
    let n = g.capacity();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut out = DynamicGraph::with_capacity(n + edges.len());
    out.add_vertices(n);
    for &(u, v) in &edges {
        let w = out.add_vertex();
        out.insert_edge(u, w).unwrap();
        out.insert_edge(w, v).unwrap();
    }
    out
}

/// A planted-community graph: `communities` blocks of `size` vertices
/// each (vertex `v` belongs to block `v / size`). Inside each block a
/// Hamiltonian ring guarantees connectivity and random chords raise the
/// mean intra-block degree to ≈ `intra_degree`; `inter_edges` random
/// block-crossing edges are planted on top. Deterministic in the
/// arguments (seeded [`rng`]); duplicate picks are skipped, so edge
/// counts are approximate.
///
/// The planted blocks are exactly the structure a locality-aware
/// [`ShardMap`](dynamis_graph::ShardMap) can exploit: with
/// `inter_edges ≪ m` a P-way partition along blocks cuts a tiny share
/// of edges where degree-greedy cuts ~`1 − 1/P`.
pub fn planted_communities(
    communities: usize,
    size: usize,
    intra_degree: usize,
    inter_edges: usize,
    seed: u64,
) -> DynamicGraph {
    assert!(size >= 3, "a community ring needs at least 3 vertices");
    let n = communities * size;
    let mut rng = rng(seed);
    let mut edges = Vec::new();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    let push = |seen: &mut FxHashSet<u64>, edges: &mut Vec<(u32, u32)>, u: u32, v: u32| {
        if u != v && seen.insert(pair_key(u, v)) {
            edges.push((u, v));
        }
    };
    for c in 0..communities {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            push(
                &mut seen,
                &mut edges,
                base + i,
                base + (i + 1) % size as u32,
            );
        }
        // Ring gives degree 2; each further chord adds 2/size to the
        // mean block degree.
        let chords = size * intra_degree.saturating_sub(2) / 2;
        for _ in 0..chords {
            let u = base + rng.gen_range(0..size as u32);
            let v = base + rng.gen_range(0..size as u32);
            push(&mut seen, &mut edges, u, v);
        }
    }
    if communities > 1 {
        for _ in 0..inter_edges {
            let cu = rng.gen_range(0..communities as u32);
            let cv = rng.gen_range(0..communities as u32);
            if cu == cv {
                continue;
            }
            let u = cu * size as u32 + rng.gen_range(0..size as u32);
            let v = cv * size as u32 + rng.gen_range(0..size as u32);
            push(&mut seen, &mut edges, u, v);
        }
    }
    DynamicGraph::from_edges(n, &edges)
}

/// The paper's `K'_n` worst-case family (Fig. 3a): subdivided complete
/// graph. Its independence number is `n(n-1)/2` while `{0..n}` is a
/// k-maximal independent set of size `n`, and `Δ = n - 1`.
pub fn k_prime(n: usize) -> DynamicGraph {
    subdivide(&complete(n))
}

/// The paper's `Q'_n` worst-case family (Fig. 3b): subdivided hypercube.
/// `α = 2^{n-1}·n` while the original `2^n` vertices are k-maximal,
/// and `Δ = n`.
pub fn q_prime(d: usize) -> DynamicGraph {
    subdivide(&hypercube(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn path_cycle_star() {
        assert_eq!(path(10).num_edges(), 9);
        assert_eq!(cycle(10).num_edges(), 10);
        let s = star(10);
        assert_eq!(s.num_edges(), 9);
        assert_eq!(s.degree(0), 9);
    }

    #[test]
    fn hypercube_is_regular_with_girth_four() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 32);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        // girth 4: no triangles — any two neighbors of a vertex differ in
        // two bits, hence are non-adjacent.
        for v in g.vertices() {
            let nb: Vec<u32> = g.neighbors(v).collect();
            for (i, &a) in nb.iter().enumerate() {
                for &b in &nb[i + 1..] {
                    assert!(!g.has_edge(a, b));
                }
            }
        }
    }

    #[test]
    fn subdivision_structure() {
        let g = k_prime(4);
        // K_4: 4 original + 6 subdivision vertices, 12 edges.
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 12);
        // Original vertices keep degree n-1 = 3, subdivision vertices are
        // degree 2.
        for v in 0..4u32 {
            assert_eq!(g.degree(v), 3);
        }
        for v in 4..10u32 {
            assert_eq!(g.degree(v), 2);
        }
        // No two original vertices remain adjacent.
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn planted_communities_have_sparse_cuts() {
        let (c, size) = (8, 40);
        let g = planted_communities(c, size, 8, 60, 7);
        assert_eq!(g.num_vertices(), c * size);
        // Connectivity inside each block: the ring edges are always there.
        for ci in 0..c as u32 {
            let base = ci * size as u32;
            assert!(g.has_edge(base, base + 1));
            assert!(g.has_edge(base, base + size as u32 - 1));
        }
        // Crossing edges are a small minority of the graph.
        let crossing = g
            .edges()
            .filter(|&(u, v)| u as usize / size != v as usize / size)
            .count();
        assert!(crossing > 0 && crossing <= 60);
        assert!(
            (crossing as f64) < 0.1 * g.num_edges() as f64,
            "{crossing} of {} edges cross blocks",
            g.num_edges()
        );
        // Deterministic in the seed, sensitive to it.
        let same = planted_communities(c, size, 8, 60, 7);
        assert_eq!(same.num_edges(), g.num_edges());
        assert!(g.edges().all(|(u, v)| same.has_edge(u, v)));
        let other = planted_communities(c, size, 8, 60, 8);
        assert!(g.edges().any(|(u, v)| !other.has_edge(u, v)));
    }

    #[test]
    fn q_prime_counts_match_paper() {
        let d = 4;
        let g = q_prime(d);
        let n0 = 1usize << d;
        let m0 = (1usize << (d - 1)) * d;
        assert_eq!(g.num_vertices(), n0 + m0);
        assert_eq!(g.num_edges(), 2 * m0);
        assert_eq!(g.max_degree(), d);
    }
}
