//! Power-law bounded (PLB) parameter estimation — Definition 2 of the
//! paper — and the closed-form bounds built on it (Theorem 4, Lemma 2).
//!
//! A graph is PLB with parameters `(c₁, c₂, β, t)` when for every degree
//! bucket `[2^d, 2^{d+1})` the vertex count lies between
//! `c₂ · n(t+1)^{β-1} Σ_{i=2^d}^{2^{d+1}-1} (i+t)^{-β}` and the same
//! expression with `c₁`. Fitting proceeds by (a) estimating the tail
//! exponent β with the continuous maximum-likelihood estimator, then
//! (b) taking `c₂`/`c₁` as the min/max ratio of observed to reference
//! bucket mass.

/// Riemann zeta `ζ(s)` for `s > 1`, via direct summation with an
/// Euler–Maclaurin tail correction. Used by the Lemma 2 bound.
pub fn zeta(s: f64) -> f64 {
    assert!(s > 1.0, "zeta diverges for s <= 1");
    let n = 10_000usize;
    let head: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
    let tail = (n as f64).powf(1.0 - s) / (s - 1.0) - 0.5 * (n as f64).powf(-s);
    head + tail
}

/// Discrete maximum-likelihood estimate of the power-law tail exponent β,
/// fit on all vertices with degree ≥ `dmin`.
///
/// For the zeta distribution `p(d) ∝ d^{-β}` on `d ≥ dmin`, the likelihood
/// equation is `Σ ln dᵢ / n = Σ_{d≥dmin} ln(d)·d^{-β} / Σ_{d≥dmin} d^{-β}`,
/// whose right side decreases monotonically in β — solved by bisection.
/// (The popular continuous-approximation formula is badly biased at
/// `dmin = 1`, which is exactly the regime the paper's δ = 1 analysis
/// needs, so we solve the discrete equation instead.)
pub fn estimate_beta_mle(histogram: &[usize], dmin: usize) -> Option<f64> {
    let dmin = dmin.max(1);
    let mut n_tail = 0usize;
    let mut log_sum = 0.0f64;
    for (d, &count) in histogram.iter().enumerate().skip(dmin) {
        if count > 0 {
            n_tail += count;
            log_sum += count as f64 * (d as f64).ln();
        }
    }
    if n_tail == 0 || log_sum <= 0.0 {
        return None;
    }
    let target = log_sum / n_tail as f64;
    // E_β[ln d] under the truncated zeta distribution, with an integral
    // tail correction past the summation cutoff.
    let mean_log = |beta: f64| -> f64 {
        let cutoff = 20_000usize.max(histogram.len() * 4);
        let mut num = 0.0;
        let mut den = 0.0;
        for d in dmin..cutoff {
            let w = (d as f64).powf(-beta);
            num += w * (d as f64).ln();
            den += w;
        }
        let c = cutoff as f64;
        // ∫_c^∞ x^{-β} dx and ∫_c^∞ ln(x)·x^{-β} dx.
        den += c.powf(1.0 - beta) / (beta - 1.0);
        num += c.powf(1.0 - beta) * (c.ln() / (beta - 1.0) + 1.0 / (beta - 1.0).powi(2));
        num / den
    };
    let (mut lo, mut hi) = (1.05f64, 8.0f64);
    if target >= mean_log(lo) {
        return Some(lo);
    }
    if target <= mean_log(hi) {
        return Some(hi);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mean_log(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Fitted PLB parameters for one graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlbEstimate {
    /// Tail exponent β.
    pub beta: f64,
    /// Shift parameter t (chosen by the fitter, not estimated).
    pub t: f64,
    /// Upper bucket constant.
    pub c1: f64,
    /// Lower bucket constant.
    pub c2: f64,
    /// Number of vertices the fit was computed over.
    pub n: usize,
    /// Minimum positive degree δ.
    pub delta_min: usize,
    /// Maximum degree Δ.
    pub delta_max: usize,
}

impl PlbEstimate {
    /// The approximation-ratio bound of **Theorem 4** for a 1-maximal
    /// independent set on a PLB graph with δ = 1 and β > 2:
    /// `min{ 2(t+1)/c₂ , 2c₁(t+1)^β / (c₂(β−1)(t+2)^{β−1}) + 1 }`.
    pub fn theorem4_ratio(&self) -> Option<f64> {
        if self.beta <= 2.0 || self.c2 <= 0.0 {
            return None;
        }
        let t = self.t;
        let first = 2.0 * (t + 1.0) / self.c2;
        let second = 2.0 * self.c1 * (t + 1.0).powf(self.beta)
            / (self.c2 * (self.beta - 1.0) * (t + 2.0).powf(self.beta - 1.0))
            + 1.0;
        Some(first.min(second))
    }

    /// The **Lemma 2** bound on `E[|¯I₂(v)|]`:
    /// `c₁(t+1)^β / (2c₂) · sqrt(ζ(2β−4) · d̄)`. Defined only for β > 2.5
    /// (the zeta argument must exceed 1).
    pub fn lemma2_expected_i2(&self, avg_degree: f64) -> Option<f64> {
        if self.beta <= 2.5 || self.c2 <= 0.0 {
            return None;
        }
        let z = zeta(2.0 * self.beta - 4.0);
        Some(self.c1 * (self.t + 1.0).powf(self.beta) / (2.0 * self.c2) * (z * avg_degree).sqrt())
    }
}

/// PLB fitter with its knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlbFit {
    /// Shift parameter t of Definition 2 (0 = pure power law).
    pub t: f64,
    /// Buckets whose *reference* mass is below this threshold are skipped
    /// when computing c₂: real graphs have empty buckets near Δ, which
    /// would otherwise force c₂ = 0 and void the bound.
    pub min_expected: f64,
    /// Minimum degree used by the β MLE; `0` = automatic (the rounded
    /// mean degree). In random-graph models the degree *body* below the
    /// mean is Poisson-dominated, not power-law — fitting it drags β̂
    /// down by ~0.5, so only the tail beyond the mean is used.
    pub beta_dmin: usize,
}

impl Default for PlbFit {
    fn default() -> Self {
        PlbFit {
            t: 0.0,
            min_expected: 1.0,
            beta_dmin: 0,
        }
    }
}

impl PlbFit {
    /// Fits PLB parameters to a degree histogram (`histogram[d]` = number
    /// of vertices with degree `d`). Returns `None` when the graph has no
    /// positive-degree vertices or the MLE is degenerate.
    pub fn fit(&self, histogram: &[usize]) -> Option<PlbEstimate> {
        let n: usize = histogram.iter().sum();
        let delta_min = histogram.iter().skip(1).position(|&c| c > 0)? + 1;
        let delta_max = histogram.len() - 1 - histogram.iter().rev().position(|&c| c > 0)?;
        if delta_max == 0 {
            return None;
        }
        let dmin = if self.beta_dmin == 0 {
            // Automatic: start the tail at the mean degree (≥ 2).
            let total: usize = histogram.iter().sum();
            let mass: usize = histogram.iter().enumerate().map(|(d, &c)| d * c).sum();
            ((mass as f64 / total.max(1) as f64).round() as usize).max(2)
        } else {
            self.beta_dmin
        };
        let beta = estimate_beta_mle(histogram, dmin.max(delta_min))?;
        let reference = |lo: usize, hi: usize| -> f64 {
            let mut s = 0.0;
            for i in lo..hi {
                s += (i as f64 + self.t).powf(-beta);
            }
            n as f64 * (self.t + 1.0).powf(beta - 1.0) * s
        };
        let mut c1 = 0.0f64;
        let mut c2 = f64::INFINITY;
        let d_lo = (delta_min as f64).log2().floor() as usize;
        let d_hi = (delta_max as f64).log2().floor() as usize;
        for d in d_lo..=d_hi {
            let lo = 1usize << d;
            let hi = 1usize << (d + 1);
            let actual: usize = (lo..hi.min(histogram.len())).map(|i| histogram[i]).sum();
            let expect = reference(lo, hi);
            if expect <= 0.0 {
                continue;
            }
            let ratio = actual as f64 / expect;
            c1 = c1.max(ratio);
            if expect >= self.min_expected {
                c2 = c2.min(ratio);
            }
        }
        if !c2.is_finite() {
            c2 = c1;
        }
        Some(PlbEstimate {
            beta,
            t: self.t,
            c1,
            c2,
            n,
            delta_min,
            delta_max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_graph::CsrGraph;

    #[test]
    fn zeta_known_values() {
        assert!((zeta(2.0) - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-6);
        assert!((zeta(4.0) - std::f64::consts::PI.powi(4) / 90.0).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn zeta_rejects_divergent_arguments() {
        zeta(1.0);
    }

    #[test]
    fn beta_mle_recovers_synthetic_exponent() {
        // Build an exact power-law histogram n_d = round(C d^{-2.5}).
        let mut hist = vec![0usize; 200];
        for (d, slot) in hist.iter_mut().enumerate().skip(1) {
            *slot = (1e6 * (d as f64).powf(-2.5)).round() as usize;
        }
        let beta = estimate_beta_mle(&hist, 1).unwrap();
        assert!(
            (beta - 2.5).abs() < 0.15,
            "MLE should recover beta=2.5, got {beta}"
        );
    }

    #[test]
    fn fit_on_chung_lu_graph_is_plausible() {
        let g = crate::powerlaw::chung_lu(5000, 2.5, 4.0, 17);
        let csr = CsrGraph::from_dynamic(&g);
        let est = PlbFit::default().fit(&csr.degree_histogram()).unwrap();
        assert!(est.beta > 1.8 && est.beta < 3.5, "beta = {}", est.beta);
        assert!(est.c1 >= est.c2, "c1 must dominate c2");
        assert!(est.c2 > 0.0);
        if est.beta > 2.0 {
            let r = est.theorem4_ratio().unwrap();
            assert!(r > 1.0, "ratio bound must exceed 1, got {r}");
        }
    }

    #[test]
    fn fit_none_on_empty() {
        assert!(PlbFit::default().fit(&[0, 0, 0]).is_none());
        assert!(PlbFit::default().fit(&[5]).is_none(), "all isolated");
    }

    #[test]
    fn theorem4_requires_beta_above_two() {
        let est = PlbEstimate {
            beta: 1.9,
            t: 0.0,
            c1: 1.0,
            c2: 0.5,
            n: 100,
            delta_min: 1,
            delta_max: 10,
        };
        assert!(est.theorem4_ratio().is_none());
    }

    #[test]
    fn lemma2_bound_grows_with_density() {
        let est = PlbEstimate {
            beta: 2.8,
            t: 0.0,
            c1: 2.0,
            c2: 0.5,
            n: 1000,
            delta_min: 1,
            delta_max: 64,
        };
        let lo = est.lemma2_expected_i2(4.0).unwrap();
        let hi = est.lemma2_expected_i2(16.0).unwrap();
        assert!(hi > lo);
        assert!((hi / lo - 2.0).abs() < 1e-9, "sqrt scaling in d̄");
    }
}
