//! Temporal workload models beyond the paper's uniform random updates.
//!
//! The paper motivates the dynamic setting with social networks whose
//! "amounts of reads and comments on some hot topics may grow to more
//! than a million in few minutes". Two structured workload shapes make
//! that concrete:
//!
//! * [`sliding_window`] — the standard streaming-graph model: edges
//!   arrive continuously and expire after a fixed window, so the graph is
//!   a moving snapshot of the most recent `window` interactions;
//! * [`burst`] — hot-topic cascades: a hub vertex suddenly acquires a
//!   star of new edges, which later decays; repeated for several topics.
//!
//! Both return a [`Workload`], so every engine and experiment harness
//! consumes them exactly like the uniform streams of
//! [`stream`](crate::stream).

use crate::stream::{Update, Workload};
use dynamis_graph::hash::{pair_key, FxHashSet};
use dynamis_graph::DynamicGraph;
use rand::Rng;

/// Configuration of the [`sliding_window`] workload.
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindowConfig {
    /// Number of vertices in the (fixed) vertex universe.
    pub n: usize,
    /// Maximum number of simultaneously live edges: once exceeded, the
    /// oldest edge expires with every arrival.
    pub window: usize,
    /// Total number of edge *arrivals* to generate.
    pub arrivals: usize,
}

/// Generates a sliding-window workload: every step inserts one fresh edge
/// between uniform random endpoints; when more than `window` edges are
/// live, the oldest is removed first, so each step past the warm-up emits
/// a delete–insert pair.
///
/// The starting graph is empty; the window fills during the warm-up
/// prefix. Panics if `n < 2` or the window cannot hold a single edge.
pub fn sliding_window(cfg: SlidingWindowConfig, seed: u64) -> Workload {
    assert!(cfg.n >= 2, "need at least two vertices");
    assert!(cfg.window >= 1, "window must hold at least one edge");
    let max_edges = cfg.n * (cfg.n - 1) / 2;
    assert!(
        cfg.window <= max_edges,
        "window {} exceeds the {max_edges} possible edges",
        cfg.window
    );
    let mut rng = crate::rng(seed);
    let mut graph = DynamicGraph::new();
    graph.add_vertices(cfg.n);
    let start = graph.clone();

    let mut live: FxHashSet<u64> = FxHashSet::default();
    let mut fifo: std::collections::VecDeque<(u32, u32)> =
        std::collections::VecDeque::with_capacity(cfg.window + 1);
    let mut updates = Vec::with_capacity(cfg.arrivals * 2);
    for _ in 0..cfg.arrivals {
        // Expire the oldest edge first so the window never overflows.
        if fifo.len() == cfg.window {
            let (u, v) = fifo.pop_front().expect("window is non-empty");
            live.remove(&pair_key(u, v));
            updates.push(Update::RemoveEdge(u, v));
        }
        // Sample a fresh edge; bounded retries keep this O(1) expected
        // while the window is far from the complete graph.
        let mut found = None;
        for _ in 0..64 {
            let u = rng.gen_range(0..cfg.n as u32);
            let v = rng.gen_range(0..cfg.n as u32);
            if u != v && !live.contains(&pair_key(u, v)) {
                found = Some((u.min(v), u.max(v)));
                break;
            }
        }
        let Some((u, v)) = found else {
            // Window ≈ complete graph; skip this arrival.
            continue;
        };
        live.insert(pair_key(u, v));
        fifo.push_back((u, v));
        updates.push(Update::InsertEdge(u, v));
    }
    Workload {
        graph: start,
        updates,
    }
}

/// Configuration of the [`burst`] workload.
#[derive(Debug, Clone, Copy)]
pub struct BurstConfig {
    /// Number of bursts (hot topics).
    pub bursts: usize,
    /// Edges each burst attaches to its hub.
    pub burst_size: usize,
    /// Fraction of each burst's edges that is deleted again once the
    /// topic cools down, in `[0, 1]`.
    pub decay: f64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig {
            bursts: 8,
            burst_size: 64,
            decay: 0.75,
        }
    }
}

/// Generates a burst workload over `base`: for each of `cfg.bursts`
/// topics, a uniformly chosen hub gains `burst_size` star edges to random
/// non-neighbors (the spike), after which a `decay` fraction of them is
/// removed in insertion order (the cool-down). Bursts are sequential, so
/// the maintained solution is hammered around one vertex at a time —
/// the adversarial locality pattern for swap-based maintenance.
pub fn burst(base: DynamicGraph, cfg: BurstConfig, seed: u64) -> Workload {
    assert!((0.0..=1.0).contains(&cfg.decay), "decay must be in [0, 1]");
    let mut rng = crate::rng(seed);
    let start = base.clone();
    let mut shadow = base;
    let live: Vec<u32> = shadow.vertices().collect();
    assert!(live.len() >= 2, "need at least two vertices");
    let mut updates = Vec::new();
    for _ in 0..cfg.bursts {
        let hub = live[rng.gen_range(0..live.len())];
        let mut spike = Vec::with_capacity(cfg.burst_size);
        let mut tries = 0usize;
        while spike.len() < cfg.burst_size && tries < cfg.burst_size * 30 {
            tries += 1;
            let leaf = live[rng.gen_range(0..live.len())];
            if leaf != hub && !shadow.has_edge(hub, leaf) {
                shadow
                    .insert_edge(hub, leaf)
                    .expect("endpoints are live by construction");
                spike.push(leaf);
                updates.push(Update::InsertEdge(hub, leaf));
            }
        }
        let cooled = (spike.len() as f64 * cfg.decay).round() as usize;
        for &leaf in spike.iter().take(cooled) {
            shadow
                .remove_edge(hub, leaf)
                .expect("spike edge exists until cooled");
            updates.push(Update::RemoveEdge(hub, leaf));
        }
    }
    Workload {
        graph: start,
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::apply_update;
    use crate::uniform::gnm;

    #[test]
    fn sliding_window_respects_capacity() {
        let wl = sliding_window(
            SlidingWindowConfig {
                n: 50,
                window: 40,
                arrivals: 500,
            },
            1,
        );
        let mut g = wl.graph.clone();
        let mut peak = 0;
        for u in &wl.updates {
            apply_update(&mut g, u).unwrap();
            peak = peak.max(g.num_edges());
        }
        assert!(peak <= 40, "window overflowed to {peak}");
        assert_eq!(g.num_edges(), 40, "steady state fills the window");
        g.check_consistency().unwrap();
    }

    #[test]
    fn sliding_window_warmup_is_insert_only() {
        let wl = sliding_window(
            SlidingWindowConfig {
                n: 30,
                window: 20,
                arrivals: 100,
            },
            2,
        );
        assert!(wl.updates[..20]
            .iter()
            .all(|u| matches!(u, Update::InsertEdge(..))));
        // Past warm-up, deletes appear.
        assert!(wl.updates[20..]
            .iter()
            .any(|u| matches!(u, Update::RemoveEdge(..))));
    }

    #[test]
    fn sliding_window_deletes_oldest_first() {
        let wl = sliding_window(
            SlidingWindowConfig {
                n: 40,
                window: 5,
                arrivals: 60,
            },
            3,
        );
        // The i-th delete must remove exactly the i-th inserted edge.
        let inserts: Vec<(u32, u32)> = wl
            .updates
            .iter()
            .filter_map(|u| match u {
                Update::InsertEdge(a, b) => Some((*a, *b)),
                _ => None,
            })
            .collect();
        let deletes: Vec<(u32, u32)> = wl
            .updates
            .iter()
            .filter_map(|u| match u {
                Update::RemoveEdge(a, b) => Some((*a, *b)),
                _ => None,
            })
            .collect();
        for (i, d) in deletes.iter().enumerate() {
            assert_eq!(d, &inserts[i], "delete {i} is not FIFO");
        }
    }

    #[test]
    fn sliding_window_deterministic() {
        let cfg = SlidingWindowConfig {
            n: 25,
            window: 15,
            arrivals: 200,
        };
        assert_eq!(
            sliding_window(cfg, 7).updates,
            sliding_window(cfg, 7).updates
        );
        assert_ne!(
            sliding_window(cfg, 7).updates,
            sliding_window(cfg, 8).updates
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn oversized_window_panics() {
        sliding_window(
            SlidingWindowConfig {
                n: 3,
                window: 10,
                arrivals: 5,
            },
            0,
        );
    }

    #[test]
    fn burst_replays_cleanly_and_targets_hubs() {
        let base = gnm(80, 120, 4);
        let wl = burst(base, BurstConfig::default(), 5);
        let end = wl.final_graph();
        end.check_consistency().unwrap();
        // Each burst inserts burst_size and deletes ~75%, so the graph
        // should have grown by roughly bursts * burst_size * 0.25.
        let grown = end.num_edges() as i64 - 120;
        assert!(grown > 0, "bursts should leave residual edges");
        assert!(grown <= (8 * 64) as i64);
    }

    #[test]
    fn burst_decay_fraction_zero_and_one() {
        let base = gnm(40, 0, 1);
        let keep_all = burst(
            base.clone(),
            BurstConfig {
                bursts: 2,
                burst_size: 10,
                decay: 0.0,
            },
            9,
        );
        assert!(keep_all
            .updates
            .iter()
            .all(|u| matches!(u, Update::InsertEdge(..))));
        let drop_all = burst(
            base,
            BurstConfig {
                bursts: 2,
                burst_size: 10,
                decay: 1.0,
            },
            9,
        );
        let end = drop_all.final_graph();
        assert_eq!(end.num_edges(), 0, "full decay returns to the base graph");
    }

    #[test]
    fn burst_spike_is_star_shaped() {
        let base = gnm(60, 0, 2);
        let wl = burst(
            base,
            BurstConfig {
                bursts: 1,
                burst_size: 12,
                decay: 0.0,
            },
            3,
        );
        // All inserts share one endpoint (the hub).
        let mut endpoint_counts = std::collections::HashMap::new();
        for u in &wl.updates {
            if let Update::InsertEdge(a, b) = u {
                *endpoint_counts.entry(*a).or_insert(0) += 1;
                *endpoint_counts.entry(*b).or_insert(0) += 1;
            }
        }
        let max = endpoint_counts.values().copied().max().unwrap();
        assert_eq!(max, 12, "hub touches every spike edge");
    }
}
