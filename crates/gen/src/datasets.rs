//! Registry of scaled synthetic stand-ins for the 22 real graphs of
//! Table I.
//!
//! The paper's datasets come from SNAP and the Laboratory for Web
//! Algorithmics and range up to 3.4 billion edges; they are not available
//! in this environment. Per the substitution policy in DESIGN.md, each
//! dataset is replaced by a deterministic Chung–Lu power-law graph with
//! the **same name**, the **same average degree** d̄ as Table I, and a
//! vertex count scaled down (n/500, clamped to [2 000, 100 000]) so every
//! experiment runs on one machine. The tail exponent β is chosen per
//! category (web crawls are heavier-tailed than citation networks), which
//! preserves the property the paper's analysis keys on: most real
//! networks are power-law bounded with β > 2.

use crate::powerlaw::chung_lu;
use dynamis_graph::DynamicGraph;

/// Experiment category from the paper's Table I split: "easy" graphs are
/// the ones VCSolver solved within five hours (so gaps are measured against
/// true α), "hard" graphs are measured against the best ARW result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// VCSolver finished; evaluated in Tables II/III.
    Easy,
    /// Exact solver timed out in the paper; evaluated in Table IV.
    Hard,
}

/// One Table I row plus its scaled stand-in parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name exactly as printed in Table I.
    pub name: &'static str,
    /// Vertex count reported in the paper.
    pub paper_n: u64,
    /// Edge count reported in the paper.
    pub paper_m: u64,
    /// Average degree reported in the paper.
    pub avg_degree: f64,
    /// Scaled vertex count used by this reproduction.
    pub scaled_n: usize,
    /// Power-law exponent of the stand-in generator.
    pub beta: f64,
    /// Easy/hard split.
    pub category: Category,
    /// Member of Table III ("the last seven easy graphs").
    pub in_table3: bool,
    /// DGOneDIS/DGTwoDIS did not finish within five hours in the paper
    /// ("the last five hard graphs").
    pub dg_dnf: bool,
}

impl DatasetSpec {
    /// Deterministic generator seed derived from the dataset name.
    pub fn seed(&self) -> u64 {
        self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        })
    }

    /// Builds the scaled stand-in graph.
    pub fn build(&self) -> DynamicGraph {
        // Cap the average degree so tiny stand-ins stay sparse enough to
        // be meaningful (d̄ must stay well below n).
        let d = self.avg_degree.min(self.scaled_n as f64 / 8.0);
        chung_lu(self.scaled_n, self.beta, d, self.seed())
    }

    /// Scaled update count corresponding to `paper_updates` on the real
    /// graph: the paper's 100 000 updates on a 4.8M-vertex graph touch
    /// ~2% of vertices; we keep the *ratio* of updates to vertices.
    pub fn scaled_updates(&self, paper_updates: u64) -> usize {
        let ratio = paper_updates as f64 / self.paper_n as f64;
        ((self.scaled_n as f64 * ratio).round() as usize).clamp(1_000, 200_000)
    }
}

#[allow(clippy::too_many_arguments)] // flat row-literal builder for the table below
const fn spec(
    name: &'static str,
    paper_n: u64,
    paper_m: u64,
    avg_degree: f64,
    beta: f64,
    category: Category,
    in_table3: bool,
    dg_dnf: bool,
) -> DatasetSpec {
    let scaled = paper_n / 500;
    let scaled_n = if scaled < 2_000 {
        2_000
    } else if scaled > 100_000 {
        100_000
    } else {
        scaled as usize
    };
    DatasetSpec {
        name,
        paper_n,
        paper_m,
        avg_degree,
        scaled_n,
        beta,
        category,
        in_table3,
        dg_dnf,
    }
}

/// All 22 Table I rows, in the paper's order (easy first).
pub const DATASETS: [DatasetSpec; 22] = [
    spec(
        "Epinions",
        75_879,
        405_740,
        10.69,
        2.3,
        Category::Easy,
        false,
        false,
    ),
    spec(
        "Slashdot",
        82_168,
        504_230,
        12.27,
        2.3,
        Category::Easy,
        false,
        false,
    ),
    spec(
        "Email",
        265_214,
        364_481,
        2.75,
        2.6,
        Category::Easy,
        false,
        false,
    ),
    spec(
        "com-dblp",
        317_080,
        1_049_866,
        6.62,
        2.5,
        Category::Easy,
        false,
        false,
    ),
    spec(
        "com-amazon",
        334_863,
        925_872,
        5.53,
        2.8,
        Category::Easy,
        false,
        false,
    ),
    spec(
        "web-Google",
        875_713,
        4_322_051,
        9.87,
        2.2,
        Category::Easy,
        false,
        false,
    ),
    spec(
        "web-BerkStan",
        685_230,
        6_649_470,
        19.41,
        2.1,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "in-2004",
        1_382_870,
        13_591_473,
        19.66,
        2.1,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "as-skitter",
        1_696_415,
        11_095_298,
        13.08,
        2.3,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "hollywood",
        1_985_306,
        114_492_816,
        115.34,
        2.2,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "WikiTalk",
        2_394_385,
        4_659_565,
        3.89,
        2.4,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "com-lj",
        3_997_962,
        34_681_189,
        17.35,
        2.4,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "soc-LiveJournal",
        4_847_571,
        42_851_237,
        17.68,
        2.4,
        Category::Easy,
        true,
        false,
    ),
    spec(
        "soc-pokec",
        1_632_803,
        22_301_964,
        27.32,
        2.4,
        Category::Hard,
        false,
        false,
    ),
    spec(
        "wiki-topcats",
        1_791_489,
        25_444_207,
        28.41,
        2.3,
        Category::Hard,
        false,
        false,
    ),
    spec(
        "com-orkut",
        3_072_441,
        117_185_083,
        76.28,
        2.3,
        Category::Hard,
        false,
        false,
    ),
    spec(
        "cit-Patents",
        3_774_768,
        16_518_947,
        8.75,
        2.7,
        Category::Hard,
        false,
        false,
    ),
    spec(
        "uk-2005",
        39_454_746,
        783_027_125,
        39.70,
        2.1,
        Category::Hard,
        false,
        true,
    ),
    spec(
        "it-2004",
        41_290_682,
        1_027_474_947,
        49.77,
        2.1,
        Category::Hard,
        false,
        true,
    ),
    spec(
        "twitter-2010",
        41_652_230,
        1_468_365_182,
        70.51,
        2.2,
        Category::Hard,
        false,
        true,
    ),
    spec(
        "Friendster",
        65_608_366,
        1_806_067_135,
        55.06,
        2.3,
        Category::Hard,
        false,
        true,
    ),
    spec(
        "uk-2007",
        109_499_800,
        3_448_528_200,
        62.99,
        2.1,
        Category::Hard,
        false,
        true,
    ),
];

/// The thirteen easy graphs (Tables II, Fig. 5a/5b).
pub fn easy() -> impl Iterator<Item = &'static DatasetSpec> {
    DATASETS.iter().filter(|d| d.category == Category::Easy)
}

/// The last seven easy graphs (Table III, Fig. 5c).
pub fn easy_large() -> impl Iterator<Item = &'static DatasetSpec> {
    DATASETS.iter().filter(|d| d.in_table3)
}

/// The nine hard graphs (Table IV, Fig. 6).
pub fn hard() -> impl Iterator<Item = &'static DatasetSpec> {
    DATASETS.iter().filter(|d| d.category == Category::Hard)
}

/// Lookup by the exact Table I name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shape_matches_table1() {
        assert_eq!(DATASETS.len(), 22);
        assert_eq!(easy().count(), 13);
        assert_eq!(easy_large().count(), 7);
        assert_eq!(hard().count(), 9);
        assert_eq!(hard().filter(|d| d.dg_dnf).count(), 5);
    }

    #[test]
    fn scaled_sizes_are_clamped() {
        for d in &DATASETS {
            assert!(d.scaled_n >= 2_000 && d.scaled_n <= 100_000, "{}", d.name);
        }
        assert_eq!(by_name("uk-2007").unwrap().scaled_n, 100_000);
        assert_eq!(by_name("Epinions").unwrap().scaled_n, 2_000);
    }

    #[test]
    fn builds_match_requested_density() {
        let spec = by_name("com-dblp").unwrap();
        let g = spec.build();
        assert_eq!(g.num_vertices(), spec.scaled_n);
        let got = g.avg_degree();
        assert!(
            (got - spec.avg_degree).abs() < spec.avg_degree * 0.35 + 1.0,
            "avg degree {got} too far from target {}",
            spec.avg_degree
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = by_name("Email").unwrap();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.num_edges(), b.num_edges());
        for (u, v) in a.edges() {
            assert!(b.has_edge(u, v));
        }
    }

    #[test]
    fn scaled_updates_preserve_ratio() {
        let spec = by_name("soc-LiveJournal").unwrap();
        // 1M updates on 4.85M vertices ≈ 21% of n.
        let u = spec.scaled_updates(1_000_000);
        let ratio = u as f64 / spec.scaled_n as f64;
        assert!((ratio - 0.206).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("hollywood").is_some());
        assert!(by_name("no-such-graph").is_none());
    }
}
