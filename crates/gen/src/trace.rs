//! Plain-text serialization of workload traces.
//!
//! A trace records a [`Workload`] — starting graph plus update schedule —
//! in a line-oriented format that diffs cleanly and can be replayed on any
//! machine, making experiments shareable and bit-reproducible:
//!
//! ```text
//! # dynamis trace 1
//! slots 100             vertex slots of the starting graph
//! dead 17               one line per dead slot (usually none)
//! edge 0 5              starting edges
//! ---                   separator
//! +e 3 9                InsertEdge
//! -e 0 5                RemoveEdge
//! +v 100 3 9 12         InsertVertex { id: 100, neighbors: [3, 9, 12] }
//! -v 17                 RemoveVertex
//! ```
//!
//! Dead slots are preserved so replayed `InsertVertex` ids match the
//! recorded ones (vertex slots are recycled deterministically).

use crate::stream::{Update, Workload};
use dynamis_graph::{DynamicGraph, GraphError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serializes a workload to a writer in trace format.
pub fn write_trace<W: Write>(wl: &Workload, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# dynamis trace 1")?;
    writeln!(w, "slots {}", wl.graph.capacity())?;
    for v in 0..wl.graph.capacity() as u32 {
        if !wl.graph.is_alive(v) {
            writeln!(w, "dead {v}")?;
        }
    }
    let mut edges: Vec<_> = wl.graph.edges().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        writeln!(w, "edge {u} {v}")?;
    }
    writeln!(w, "---")?;
    for u in &wl.updates {
        match u {
            Update::InsertEdge(a, b) => writeln!(w, "+e {a} {b}")?,
            Update::RemoveEdge(a, b) => writeln!(w, "-e {a} {b}")?,
            Update::InsertVertex { id, neighbors } => {
                write!(w, "+v {id}")?;
                for n in neighbors {
                    write!(w, " {n}")?;
                }
                writeln!(w)?;
            }
            Update::RemoveVertex(v) => writeln!(w, "-v {v}")?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Parses a trace from a reader.
pub fn read_trace<R: Read>(reader: R) -> Result<Workload, GraphError> {
    let mut r = BufReader::new(reader);
    let mut buf = String::new();
    let mut line_no = 0usize;
    let mut slots: Option<usize> = None;
    let mut dead = Vec::new();
    let mut edges = Vec::new();
    let mut updates = Vec::new();
    let mut in_updates = false;

    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| GraphError::Parse {
            line: line_no,
            message,
        };
        if line == "---" {
            if in_updates {
                return Err(err("duplicate separator".into()));
            }
            in_updates = true;
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().expect("non-empty line has a first token");
        let mut num = |what: &str| -> Result<u32, GraphError> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: format!("bad or missing {what}"),
                })
        };
        if !in_updates {
            match tag {
                "slots" => slots = Some(num("slot count")? as usize),
                "dead" => dead.push(num("vertex id")?),
                "edge" => {
                    let u = num("endpoint")?;
                    let v = num("endpoint")?;
                    edges.push((u, v));
                }
                other => return Err(err(format!("unknown header record `{other}`"))),
            }
        } else {
            match tag {
                "+e" => updates.push(Update::InsertEdge(num("endpoint")?, num("endpoint")?)),
                "-e" => updates.push(Update::RemoveEdge(num("endpoint")?, num("endpoint")?)),
                "+v" => {
                    let id = num("vertex id")?;
                    let mut neighbors = Vec::new();
                    loop {
                        match it.next() {
                            None => break,
                            Some(t) => {
                                neighbors.push(t.parse().map_err(|_| GraphError::Parse {
                                    line: line_no,
                                    message: format!("bad neighbor `{t}`"),
                                })?)
                            }
                        }
                    }
                    updates.push(Update::InsertVertex { id, neighbors });
                }
                "-v" => updates.push(Update::RemoveVertex(num("vertex id")?)),
                other => return Err(err(format!("unknown update record `{other}`"))),
            }
        }
    }
    let slots = slots.ok_or(GraphError::Parse {
        line: line_no,
        message: "missing `slots` header".into(),
    })?;
    let mut graph = DynamicGraph::with_capacity(slots);
    graph.add_vertices(slots);
    for v in dead {
        graph.remove_vertex(v).map_err(|e| GraphError::Parse {
            line: 0,
            message: format!("bad dead slot {v}: {e}"),
        })?;
    }
    for (u, v) in edges {
        graph.insert_edge(u, v).map_err(|e| GraphError::Parse {
            line: 0,
            message: format!("bad starting edge ({u},{v}): {e}"),
        })?;
    }
    Ok(Workload { graph, updates })
}

/// Writes a trace file.
pub fn write_trace_path<P: AsRef<Path>>(wl: &Workload, path: P) -> Result<(), GraphError> {
    write_trace(wl, std::fs::File::create(path)?)
}

/// Reads a trace file.
pub fn read_trace_path<P: AsRef<Path>>(path: P) -> Result<Workload, GraphError> {
    read_trace(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamConfig, Workload};
    use crate::uniform::gnm;

    fn assert_same_workload(a: &Workload, b: &Workload) {
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.graph.capacity(), b.graph.capacity());
        assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (u, v) in a.graph.edges() {
            assert!(b.graph.has_edge(u, v));
        }
    }

    #[test]
    fn round_trip_mixed_workload() {
        let wl = Workload::generate(gnm(50, 120, 3), 800, StreamConfig::default(), 7);
        let mut buf = Vec::new();
        write_trace(&wl, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_same_workload(&wl, &back);
        // The replayed final graphs agree too.
        assert_eq!(wl.final_graph().num_edges(), back.final_graph().num_edges());
    }

    #[test]
    fn round_trip_preserves_dead_slots() {
        let mut g = gnm(10, 12, 1);
        g.remove_vertex(4).unwrap();
        let wl = Workload {
            graph: g,
            updates: vec![Update::InsertVertex {
                id: 4,
                neighbors: vec![0, 1],
            }],
        };
        let mut buf = Vec::new();
        write_trace(&wl, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert!(!back.graph.is_alive(4));
        // The recycled id matches on replay.
        back.final_graph().check_consistency().unwrap();
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(read_trace("".as_bytes()).is_err(), "missing header");
        assert!(read_trace("slots 3\nwat 1 2\n".as_bytes()).is_err());
        assert!(read_trace("slots 3\n---\n+e 0\n".as_bytes()).is_err());
        assert!(read_trace("slots 3\n---\n---\n".as_bytes()).is_err());
        assert!(read_trace("slots 3\n---\n+v x\n".as_bytes()).is_err());
        let err = read_trace("slots 3\nedge 0 9\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("starting edge"));
    }

    #[test]
    fn empty_schedule_round_trips() {
        let wl = Workload {
            graph: gnm(5, 4, 2),
            updates: Vec::new(),
        };
        let mut buf = Vec::new();
        write_trace(&wl, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert!(back.updates.is_empty());
        assert_eq!(back.graph.num_edges(), 4);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.trace");
        let wl = Workload::generate(gnm(20, 30, 5), 100, StreamConfig::edges_only(), 2);
        write_trace_path(&wl, &path).unwrap();
        let back = read_trace_path(&path).unwrap();
        assert_same_workload(&wl, &back);
        std::fs::remove_file(&path).ok();
    }
}
