//! # dynamis-gen — workloads for the dynamic MaxIS experiments
//!
//! Everything the paper's evaluation (§V) needs as input:
//!
//! * [`uniform`] — Erdős–Rényi `G(n, m)` graphs.
//! * [`powerlaw`] — Chung–Lu graphs with power-law expected degrees and the
//!   erased configuration model (the randomness model of Lemma 2).
//! * [`ba`] — Barabási–Albert preferential attachment.
//! * [`rmat`](mod@rmat) — R-MAT recursive-matrix graphs (the Graph500 model), a
//!   second independent source of heavy-tailed workloads.
//! * [`structured`] — complete graphs, hypercubes, paths/cycles/stars, and
//!   the subdivision constructions `K'_n` / `Q'_n` that achieve the
//!   worst-case ratio of Theorem 3.
//! * [`stream`] — seeded generators of vertex/edge insert/delete update
//!   streams ("we randomly insert/remove a predetermined number of
//!   vertices/edges to simulate the update operations").
//! * [`adversarial`] — deletion-heavy worst-case streams:
//!   insert-burst-then-targeted-delete of high-degree (shadow-)solution
//!   vertices, maximizing repair cascades.
//! * [`temporal`] — structured workload shapes: sliding-window edge
//!   expiry and hot-topic burst cascades (the introduction's motivating
//!   scenario).
//! * [`trace`] — line-oriented serialization of workloads for replayable,
//!   shareable experiments.
//! * [`plb`] — estimator for the power-law bounded parameters
//!   `(c₁, c₂, β, t)` of Definition 2 plus the closed-form approximation
//!   ratio of Theorem 4 and the expectation bound of Lemma 2.
//! * [`datasets`] — the registry of scaled synthetic stand-ins for the 22
//!   SNAP/LAW graphs of Table I (see DESIGN.md for the substitution
//!   rationale).

pub mod adversarial;
pub mod ba;
pub mod datasets;
pub mod plb;
pub mod powerlaw;
pub mod rmat;
pub mod stream;
pub mod structured;
pub mod temporal;
pub mod trace;
pub mod uniform;

pub use adversarial::{AdversarialConfig, AdversarialStream};
pub use datasets::{Category, DatasetSpec, DATASETS};
pub use plb::{PlbEstimate, PlbFit};
pub use rmat::{rmat, RmatConfig};
pub use stream::{apply_update, StreamConfig, Update, UpdateStream, Workload};
pub use temporal::{burst, sliding_window, BurstConfig, SlidingWindowConfig};
pub use trace::{read_trace, read_trace_path, write_trace, write_trace_path};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic RNG used across all generators: everything in this
/// workspace is reproducible from a `u64` seed.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
