//! Barabási–Albert preferential attachment.

use dynamis_graph::DynamicGraph;
use rand::Rng;

/// Barabási–Albert graph: starts from a star on `m0 = m + 1` vertices and
/// attaches each new vertex to `m` distinct existing vertices chosen
/// proportionally to degree (implemented with the repeated-endpoint trick:
/// sampling a uniform endpoint of a uniform edge is degree-proportional).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> DynamicGraph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = crate::rng(seed);
    let mut g = DynamicGraph::with_capacity(n);
    g.add_vertices(n);
    // Endpoint pool: every half-edge contributes one entry.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * m * n);
    for v in 1..=m as u32 {
        g.insert_edge(0, v).unwrap();
        pool.push(0);
        pool.push(v);
    }
    for v in (m as u32 + 1)..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * m {
                // Degenerate early graphs: fall back to uniform choice.
                let t = rng.gen_range(0..v);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for &t in &chosen {
            g.insert_edge(v, t).unwrap();
            pool.push(v);
            pool.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_edge_count_is_exact() {
        let g = barabasi_albert(500, 3, 2);
        // star (3 edges) + 496 vertices * 3 edges
        assert_eq!(g.num_edges(), 3 + (500 - 4) * 3);
        g.check_consistency().unwrap();
    }

    #[test]
    fn ba_every_late_vertex_has_min_degree_m() {
        let g = barabasi_albert(300, 4, 5);
        for v in 5..300u32 {
            assert!(g.degree(v) >= 4);
        }
    }

    #[test]
    fn ba_develops_hubs() {
        let g = barabasi_albert(2000, 2, 7);
        assert!(
            g.max_degree() > 20,
            "preferential attachment should concentrate degree; max = {}",
            g.max_degree()
        );
    }

    #[test]
    #[should_panic(expected = "need more vertices")]
    fn ba_rejects_tiny_n() {
        barabasi_albert(3, 3, 0);
    }
}
