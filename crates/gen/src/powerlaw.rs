//! Power-law graph generators.
//!
//! Two models are provided:
//!
//! * [`chung_lu`] — each vertex gets an expected degree `w_v ∝ v^{-1/(β-1)}`
//!   (a power-law weight sequence with exponent `β`), and edge `(u, v)` is
//!   included independently with probability `min(1, w_u w_v / W)`. This is
//!   the stand-in for the NetworkX power-law random graphs of Fig. 10.
//! * [`configuration_model_erased`] — the *erased configuration model* the
//!   paper adopts for the expectation analysis of Lemma 2: stubs are
//!   matched uniformly at random, then loops and parallel edges are erased.

use dynamis_graph::DynamicGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a power-law weight/degree sequence with exponent `beta`,
/// scaled so the average is `avg_degree`, maximum clamped to `n - 1`.
///
/// Weights follow `w_i = c · (i + 1)^{-1/(β-1)}`, the standard Chung–Lu
/// parameterization whose resulting degree distribution has tail exponent
/// `β`.
pub fn powerlaw_weights(n: usize, beta: f64, avg_degree: f64) -> Vec<f64> {
    assert!(beta > 1.0, "power-law exponent must exceed 1");
    assert!(n > 0);
    let gamma = 1.0 / (beta - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_degree * n as f64 / sum;
    let cap = (n - 1) as f64;
    for x in &mut w {
        *x = (*x * scale).min(cap);
    }
    w
}

/// Chung–Lu random graph with power-law expected degrees.
///
/// Implementation follows the efficient O(n + m) algorithm of Miller &
/// Hagberg: vertices sorted by descending weight, each row samples skips
/// geometrically with probability capped at `p = min(1, w_u w_v / W)`.
pub fn chung_lu(n: usize, beta: f64, avg_degree: f64, seed: u64) -> DynamicGraph {
    let w = powerlaw_weights(n, beta, avg_degree);
    chung_lu_from_weights(&w, seed)
}

/// Chung–Lu sampling from an explicit weight sequence (must be
/// non-increasing for the skip sampler to be exact; this holds for
/// [`powerlaw_weights`]).
pub fn chung_lu_from_weights(w: &[f64], seed: u64) -> DynamicGraph {
    let n = w.len();
    let total: f64 = w.iter().sum();
    let mut g = DynamicGraph::with_capacity(n);
    g.add_vertices(n);
    if n < 2 || total <= 0.0 {
        return g;
    }
    let mut rng = crate::rng(seed);
    for u in 0..n - 1 {
        let mut v = u + 1;
        let mut p = (w[u] * w[v] / total).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                v += skip;
            }
            if v >= n {
                break;
            }
            // Accept with the corrected probability q/p (q = true prob at v).
            let q = (w[u] * w[v] / total).min(1.0);
            if rng.gen::<f64>() < q / p {
                g.insert_edge(u as u32, v as u32).unwrap();
            }
            p = q;
            v += 1;
        }
    }
    g
}

/// Erased configuration model: realizes a degree sequence by uniform stub
/// matching, then removes self-loops and duplicate edges (so realized
/// degrees can fall slightly short of requested ones).
pub fn configuration_model_erased(degrees: &[usize], seed: u64) -> DynamicGraph {
    let n = degrees.len();
    let mut stubs: Vec<u32> = Vec::with_capacity(degrees.iter().sum());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u32, d));
    }
    let mut rng = crate::rng(seed);
    stubs.shuffle(&mut rng);
    let mut g = DynamicGraph::with_capacity(n);
    g.add_vertices(n);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            let _ = g.insert_edge(pair[0], pair[1]);
        }
    }
    g
}

/// Samples an integral power-law degree sequence with exponent `beta` and
/// minimum degree `dmin`, truncated at `n - 1`, with an even stub total
/// (required by the configuration model).
pub fn powerlaw_degree_sequence(n: usize, beta: f64, dmin: usize, seed: u64) -> Vec<usize> {
    assert!(beta > 1.0);
    assert!(dmin >= 1);
    let mut rng = crate::rng(seed);
    let dmax = (n.saturating_sub(1)).max(dmin);
    // Inverse-CDF sampling of the continuous Pareto, rounded down.
    let mut seq: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let x = dmin as f64 * u.powf(-1.0 / (beta - 1.0));
            (x.floor() as usize).clamp(dmin, dmax)
        })
        .collect();
    if seq.iter().sum::<usize>() % 2 == 1 {
        seq[0] += 1;
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_scale_to_average() {
        let w = powerlaw_weights(1000, 2.5, 8.0);
        let avg = w.iter().sum::<f64>() / w.len() as f64;
        assert!((avg - 8.0).abs() < 0.5, "avg weight {avg}");
        // Non-increasing (required by the skip sampler).
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn chung_lu_degree_matches_expectation() {
        let n = 3000;
        let g = chung_lu(n, 2.3, 6.0, 11);
        let avg = g.avg_degree();
        assert!(
            (avg - 6.0).abs() < 1.5,
            "avg degree {avg} should approximate 6"
        );
        g.check_consistency().unwrap();
        // Heavy tail exists: the max degree far exceeds the mean.
        assert!(g.max_degree() > 3 * avg as usize);
    }

    #[test]
    fn chung_lu_is_seed_deterministic() {
        let g1 = chung_lu(200, 2.5, 4.0, 5);
        let g2 = chung_lu(200, 2.5, 4.0, 5);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for (u, v) in g1.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn config_model_respects_sequence_approximately() {
        let degs = vec![3usize; 100];
        let g = configuration_model_erased(&degs, 3);
        g.check_consistency().unwrap();
        // Erasure removes a few edges; realized total must be close.
        let realized: usize = g.vertices().map(|v| g.degree(v)).sum();
        assert!(realized >= 260, "too many erased stubs: {realized}");
        assert!(realized <= 300);
        assert!(g.vertices().all(|v| g.degree(v) <= 3));
    }

    #[test]
    fn degree_sequence_properties() {
        let seq = powerlaw_degree_sequence(500, 2.5, 1, 9);
        assert_eq!(seq.len(), 500);
        assert_eq!(seq.iter().sum::<usize>() % 2, 0, "stub total must be even");
        assert!(seq.iter().all(|&d| (1..500).contains(&d)));
        // Most mass at the minimum degree for beta = 2.5.
        let ones = seq.iter().filter(|&&d| d == 1).count();
        assert!(ones > 200, "expected power-law mass at dmin, got {ones}");
    }

    #[test]
    fn beta_controls_density() {
        // Smaller beta ⇒ heavier tail ⇒ larger hubs.
        let flat = chung_lu(2000, 2.9, 4.0, 1).max_degree();
        let heavy = chung_lu(2000, 1.9, 4.0, 1).max_degree();
        assert!(
            heavy > flat,
            "beta=1.9 max degree {heavy} should exceed beta=2.9 {flat}"
        );
    }
}
