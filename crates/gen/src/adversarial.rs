//! Deletion-heavy adversarial update streams.
//!
//! The mixed stream of [`crate::stream::UpdateStream`] is friendly to a
//! maintenance engine: deletions hit random edges, which rarely touch
//! the solution. This generator builds the opposite — the worst
//! realistic pattern for a k-maximal maintainer: repeated cycles of an
//! **insert burst** that piles edges onto the current (shadow) solution
//! vertices, followed by **targeted deletions** of the highest-degree
//! solution vertices. Deleting a high-degree solution vertex frees its
//! whole neighborhood at once, forcing a maximality-repair cascade and
//! fresh swap searches; the preceding burst makes that neighborhood as
//! large as possible.
//!
//! The generator cannot see the engine's actual solution, so it tracks
//! a *shadow* maximal independent set (ascending-degree greedy — the
//! same low-degree preference the swap engines converge toward) over a
//! shadow copy of the graph, recomputed each cycle. Every emitted
//! update is valid at the moment it is applied, exactly like the
//! uniform stream.

use crate::stream::Update;
use dynamis_graph::collections::IndexedBag;
use dynamis_graph::DynamicGraph;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Shape of one insert-burst / targeted-delete cycle.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialConfig {
    /// Edge insertions per cycle, each attaching to a current shadow
    /// solution vertex.
    pub burst: usize,
    /// Highest-degree shadow solution vertices deleted per cycle.
    pub targets: usize,
    /// Re-insert one fresh vertex (with roughly average degree) per
    /// deletion, keeping the graph size stationary across cycles.
    pub replace: bool,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            burst: 192,
            targets: 32,
            replace: true,
        }
    }
}

/// Generator of valid adversarial updates against an evolving shadow
/// graph; see the module docs for the attack pattern.
pub struct AdversarialStream {
    shadow: DynamicGraph,
    cfg: AdversarialConfig,
    rng: SmallRng,
    alive: IndexedBag,
    pending: VecDeque<Update>,
    new_vertex_degree: usize,
}

impl AdversarialStream {
    /// Builds a stream over a copy of `start`.
    pub fn new(start: &DynamicGraph, cfg: AdversarialConfig, seed: u64) -> Self {
        let mut alive = IndexedBag::with_capacity(start.capacity());
        for v in start.vertices() {
            alive.insert(v);
        }
        let new_vertex_degree = start.avg_degree().round().max(1.0) as usize;
        AdversarialStream {
            shadow: start.clone(),
            cfg,
            rng: crate::rng(seed),
            alive,
            pending: VecDeque::new(),
            new_vertex_degree,
        }
    }

    /// Shadow view of the graph state after all **planned** updates —
    /// i.e. every update already emitted plus the not-yet-emitted rest
    /// of the current cycle ([`AdversarialStream::pending_len`] of
    /// them). Matches the replayed state exactly at cycle boundaries.
    pub fn shadow(&self) -> &DynamicGraph {
        &self.shadow
    }

    /// Updates planned but not yet emitted from the current cycle.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Ascending-degree greedy maximal independent set over the shadow.
    fn shadow_solution(&self) -> Vec<u32> {
        let mut order: Vec<u32> = self.alive.as_slice().to_vec();
        order.sort_unstable_by_key(|&v| (self.shadow.degree(v), v));
        let mut blocked = vec![false; self.shadow.capacity()];
        let mut sol = Vec::new();
        for v in order {
            if !blocked[v as usize] {
                sol.push(v);
                for u in self.shadow.neighbors(v) {
                    blocked[u as usize] = true;
                }
            }
        }
        sol
    }

    fn random_alive(&mut self) -> Option<u32> {
        if self.alive.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.alive.len());
        Some(self.alive.as_slice()[i])
    }

    /// Plans one full cycle into `pending`, mutating the shadow so each
    /// planned update is valid when replayed in order.
    fn plan_cycle(&mut self) {
        let sol = self.shadow_solution();
        // Phase 1 — insert burst: every new edge touches a solution
        // vertex, growing the neighborhoods the deletions will free.
        for _ in 0..self.cfg.burst.max(1) {
            let mut planned = false;
            for _ in 0..64 {
                let s = if sol.is_empty() {
                    match self.random_alive() {
                        Some(v) => v,
                        None => break,
                    }
                } else {
                    sol[self.rng.gen_range(0..sol.len())]
                };
                let Some(v) = self.random_alive() else { break };
                if s != v && self.shadow.is_alive(s) && !self.shadow.has_edge(s, v) {
                    self.shadow.insert_edge(s, v).unwrap();
                    self.pending.push_back(Update::InsertEdge(s, v));
                    planned = true;
                    break;
                }
            }
            if !planned {
                break; // dense or tiny shadow; the cycle stays shorter
            }
        }
        // Phase 2 — targeted deletions: the highest-degree solution
        // vertices, i.e. the repairs with the widest blast radius.
        let mut by_degree: Vec<u32> = sol;
        by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse((self.shadow.degree(v), v)));
        let quota = self
            .cfg
            .targets
            .max(1)
            .min(by_degree.len())
            .min(self.alive.len().saturating_sub(2));
        for &victim in by_degree.iter().take(quota) {
            self.shadow.remove_vertex(victim).unwrap();
            self.alive.remove(victim);
            self.pending.push_back(Update::RemoveVertex(victim));
            if self.cfg.replace {
                let replacement = self.plan_vertex_insert();
                self.pending.push_back(replacement);
            }
        }
    }

    /// Fallback for degenerate shadows (tiny or edge-saturated, where
    /// a cycle can plan nothing): insert a fresh vertex, which always
    /// succeeds and regrows the graph toward attackable shapes.
    fn plan_vertex_insert(&mut self) -> Update {
        let want = self.new_vertex_degree.min(self.alive.len());
        let mut neighbors = Vec::with_capacity(want);
        for _ in 0..64 * want.max(1) {
            if neighbors.len() == want {
                break;
            }
            match self.random_alive() {
                Some(u) if !neighbors.contains(&u) => neighbors.push(u),
                Some(_) => {}
                None => break,
            }
        }
        let id = self.shadow.add_vertex();
        self.alive.insert(id);
        for &u in &neighbors {
            self.shadow.insert_edge(id, u).unwrap();
        }
        Update::InsertVertex { id, neighbors }
    }

    /// Emits the next update, planning a new cycle when the previous
    /// one is exhausted.
    pub fn next_update(&mut self) -> Update {
        if self.pending.is_empty() {
            self.plan_cycle();
        }
        match self.pending.pop_front() {
            Some(u) => u,
            None => self.plan_vertex_insert(),
        }
    }

    /// Emits `count` updates.
    pub fn take_updates(&mut self, count: usize) -> Vec<Update> {
        (0..count).map(|_| self.next_update()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::apply_update;
    use crate::uniform::gnm;

    #[test]
    fn adversarial_ops_replay_cleanly() {
        let g = gnm(80, 200, 5);
        let mut s = AdversarialStream::new(&g, AdversarialConfig::default(), 7);
        let mut ups = s.take_updates(1500);
        assert_eq!(ups.len(), 1500);
        // Flush the rest of the cycle so the replay lands exactly on
        // the shadow state.
        while s.pending_len() > 0 {
            ups.push(s.next_update());
        }
        let mut replay = g;
        for u in &ups {
            apply_update(&mut replay, u).unwrap();
        }
        replay.check_consistency().unwrap();
        assert_eq!(replay.num_edges(), s.shadow().num_edges());
        assert_eq!(replay.num_vertices(), s.shadow().num_vertices());
    }

    #[test]
    fn stream_is_deletion_heavy_and_targets_high_degree() {
        let g = gnm(100, 300, 11);
        let cfg = AdversarialConfig {
            burst: 20,
            targets: 10,
            replace: true,
        };
        let mut s = AdversarialStream::new(&g, cfg, 3);
        let ups = s.take_updates(600);
        let removals: Vec<u32> = ups
            .iter()
            .filter_map(|u| match u {
                Update::RemoveVertex(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert!(
            removals.len() >= 600 / (20 + 2 * 10) * 10,
            "every cycle must delete its quota ({} removals)",
            removals.len()
        );
        // Vertex churn must be real: replacements keep the count stable.
        let replay_vertices = s.shadow().num_vertices();
        assert!((98..=102).contains(&replay_vertices));
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let g = gnm(50, 120, 2);
        let a = AdversarialStream::new(&g, AdversarialConfig::default(), 9).take_updates(400);
        let b = AdversarialStream::new(&g, AdversarialConfig::default(), 9).take_updates(400);
        assert_eq!(a, b);
        let c = AdversarialStream::new(&g, AdversarialConfig::default(), 10).take_updates(400);
        assert_ne!(a, c);
    }

    #[test]
    fn survives_tiny_graphs() {
        let mut g = DynamicGraph::new();
        g.add_vertices(3);
        let mut s = AdversarialStream::new(&g, AdversarialConfig::default(), 1);
        let ups = s.take_updates(100);
        let mut replay = g;
        for u in &ups {
            apply_update(&mut replay, u).unwrap();
        }
        replay.check_consistency().unwrap();
    }

    #[test]
    fn degenerate_shadows_fall_back_instead_of_spinning() {
        // A saturated K₂ (no insertable edge, deletion quota 0) and an
        // empty graph: a cycle can plan nothing, so `next_update` must
        // fall back to vertex insertion rather than loop forever.
        for g in [DynamicGraph::from_edges(2, &[(0, 1)]), DynamicGraph::new()] {
            let mut s = AdversarialStream::new(&g, AdversarialConfig::default(), 2);
            let ups = s.take_updates(50);
            assert_eq!(ups.len(), 50);
            let mut replay = g;
            for u in &ups {
                apply_update(&mut replay, u).unwrap();
            }
            replay.check_consistency().unwrap();
        }
    }
}
