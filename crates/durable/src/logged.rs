//! The engine wrapper that makes any [`DynamicMis`] durable, and the
//! two-phase open protocol that recovers a directory before serving
//! from it.
//!
//! The phases exist because serve engine factories run *inside* the
//! writer thread, while the recovered sequence number must be known
//! *before* the service spawns (it re-bases the broadcast log):
//!
//! 1. [`prepare`] — on the caller thread: initialize or scan the
//!    directory, apply repairs, and surface [`Prepared::recovered_seq`].
//! 2. [`Prepared::resume_builder`] then [`Prepared::attach`] — inside
//!    the engine factory: resume the engine from the recovered
//!    snapshot, replay the WAL tail, and wrap the engine in [`Logged`].

use crate::error::DurableError;
use crate::format::{
    checkpoint_name, encode_checkpoint, encode_manifest, parse_checkpoint_name, parse_segment_name,
    MANIFEST_NAME,
};
use crate::recover::{apply_repairs, scan};
use crate::storage::WalStorage;
use crate::wal::{GroupCommit, SyncPolicy, Wal};
use dynamis_core::{DynamicMis, EngineBuilder, EngineError, Snapshot, SolutionDelta};
use dynamis_graph::{DynamicGraph, Update};
use std::sync::Arc;

/// Tuning for a durable directory.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// WAL streams records are routed across (`seq % streams`). Use the
    /// shard count for a sharded service so the log parallelism matches
    /// the write parallelism; pinned in the manifest.
    pub streams: u32,
    /// When appends reach stable storage.
    pub sync: SyncPolicy,
    /// Accepted updates between snapshot checkpoints.
    pub checkpoint_every: u64,
    /// Segment roll threshold in bytes.
    pub segment_bytes: u64,
    /// Checkpoints retained; older segments are pruned only below the
    /// *oldest* retained checkpoint, so a damaged newest checkpoint can
    /// always fall back to the previous one plus the WAL.
    pub keep_checkpoints: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            streams: 1,
            sync: SyncPolicy::Group,
            // A checkpoint costs an O(n) snapshot (milliseconds at
            // paper scale); the engine ingests around a million updates
            // a second, so a cadence of thousands would spend more time
            // snapshotting than serving. 128Ki keeps the amortized cost
            // in the noise while bounding recovery replay below a
            // couple hundred milliseconds.
            checkpoint_every: 131_072,
            segment_bytes: 4 << 20,
            keep_checkpoints: 2,
        }
    }
}

/// A recovered (or freshly initialized) directory, ready to build its
/// engine. Produced by [`prepare`]; consumed by [`Prepared::attach`].
pub struct Prepared {
    /// Last sequence number of the recovered prefix (0 when fresh).
    pub recovered_seq: u64,
    /// Sequence the recovered checkpoint covered (0 when fresh).
    pub checkpoint_seq: u64,
    /// WAL tail length replayed on top of the checkpoint.
    pub replayed: u64,
    /// Whether the directory was initialized by this call.
    pub fresh: bool,
    snapshot: Option<Snapshot>,
    tail: Vec<Update>,
    storage: Arc<dyn WalStorage>,
    opts: DurableOptions,
    k: u32,
}

/// Opens a durable directory: initializes an empty one (manifest now,
/// bootstrap checkpoint at attach), or scans + repairs an existing one.
/// `k` and `opts.streams` must match the manifest of an existing
/// directory — mismatches are typed refusals.
pub fn prepare(
    storage: Arc<dyn WalStorage>,
    k: u32,
    opts: DurableOptions,
) -> Result<Prepared, DurableError> {
    let names = storage.list()?;
    let has_manifest = names.iter().any(|n| n == MANIFEST_NAME);
    let has_state = names
        .iter()
        .any(|n| parse_checkpoint_name(n).is_some() || parse_segment_name(n).is_some());
    if !has_manifest || !has_state {
        // Fresh directory — or one whose initialization crashed before
        // the bootstrap checkpoint was published (nothing could have
        // been acknowledged yet, so re-initializing loses nothing).
        if has_manifest {
            let m = crate::format::decode_manifest(&storage.read(MANIFEST_NAME)?)?;
            if m.k != k {
                return Err(DurableError::KMismatch {
                    found: m.k,
                    expected: k,
                });
            }
            if m.streams != opts.streams {
                return Err(DurableError::StreamMismatch {
                    found: m.streams,
                    expected: opts.streams,
                });
            }
        } else {
            let tmp = "MANIFEST.tmp";
            storage.create(tmp)?;
            storage.append(tmp, &encode_manifest(k, opts.streams))?;
            storage.sync(tmp)?;
            storage.rename(tmp, MANIFEST_NAME)?;
        }
        // Clear leftovers of the crashed init, if any.
        for n in names.iter().filter(|n| crate::format::is_tmp_name(n)) {
            let _ = storage.remove(n);
        }
        return Ok(Prepared {
            recovered_seq: 0,
            checkpoint_seq: 0,
            replayed: 0,
            fresh: true,
            snapshot: None,
            tail: Vec::new(),
            storage,
            opts,
            k,
        });
    }
    let report = scan(&*storage, Some(k), Some(opts.streams))?;
    apply_repairs(&*storage, &report.repairs)?;
    Ok(Prepared {
        recovered_seq: report.recovered_seq,
        checkpoint_seq: report.checkpoint_seq,
        replayed: report.tail.len() as u64,
        fresh: false,
        snapshot: Some(report.snapshot),
        tail: report.tail,
        storage,
        opts,
        k,
    })
}

impl Prepared {
    /// Resumes `builder` from the recovered checkpoint (fresh
    /// directories return it unchanged). Must be called before
    /// [`Prepared::attach`] so the engine is built over the recovered
    /// graph and solution rather than the cold-start inputs.
    pub fn resume_builder(&mut self, builder: EngineBuilder) -> EngineBuilder {
        match self.snapshot.take() {
            Some(snapshot) => builder.resume(snapshot),
            None => builder,
        }
    }

    /// The sequence number a restarted broadcast log should re-base at
    /// (`ServeConfig::first_seq`): strictly above every sequence an old
    /// subscriber can hold, so reconnecting mirrors re-seed from the
    /// recovered checkpoint instead of chasing a history that restarted
    /// under them.
    pub fn first_broadcast_seq(&self) -> u64 {
        self.recovered_seq + 1
    }

    /// Replays the WAL tail into `engine` (built from the builder
    /// [`Prepared::resume_builder`] returned), then wraps it in a
    /// [`Logged`] that logs every accepted update from here on.
    ///
    /// Writes a checkpoint before returning when the directory is fresh
    /// (the bootstrap checkpoint recovery relies on) or when a tail was
    /// replayed (compacting the just-recovered history).
    pub fn attach(mut self, mut engine: Box<dyn DynamicMis>) -> Result<Logged, DurableError> {
        assert!(
            self.snapshot.is_none(),
            "Prepared::attach before resume_builder: the engine would not see the recovered state"
        );
        if !self.tail.is_empty() {
            let tail = std::mem::take(&mut self.tail);
            // One update per call, never a batch: batched application is
            // free to skip intermediate swap cascades (the state is
            // k-maximal either way but need not be *the same* state),
            // and recovery promises the exact per-update state.
            for (index, u) in tail.iter().enumerate() {
                if let Err(cause) = engine.try_apply(u) {
                    return Err(DurableError::Replay {
                        seq: self.checkpoint_seq + 1 + index as u64,
                        cause,
                    });
                }
            }
        }
        let g = dynamis_obs::global();
        let wal = Wal::new(
            Arc::clone(&self.storage),
            self.opts.streams,
            self.recovered_seq + 1,
            self.opts.segment_bytes,
            // Under `Never` nothing ever drains the synced-names set, so
            // don't accumulate it.
            !matches!(self.opts.sync, SyncPolicy::Never),
        );
        let group = matches!(self.opts.sync, SyncPolicy::Group)
            .then(|| GroupCommit::spawn(Arc::clone(&self.storage), wal.shared()));
        let mut logged = Logged {
            inner: engine,
            wal,
            storage: self.storage,
            sync: self.opts.sync,
            group,
            checkpoint_every: self.opts.checkpoint_every.max(1),
            since_checkpoint: 0,
            keep_checkpoints: self.opts.keep_checkpoints.max(1),
            k: self.k,
            streams: self.opts.streams,
            dead: false,
            records: g.counter("durable_wal_records_total"),
            checkpoints: g.counter("durable_checkpoints_total"),
            wal_errors: g.counter("durable_wal_errors_total"),
        };
        if self.fresh || self.replayed > 0 {
            logged.write_checkpoint()?;
        }
        Ok(logged)
    }
}

/// A [`DynamicMis`] that logs its accepted update stream.
///
/// Updates are appended *after* the inner engine accepts them and
/// *before* the call returns — so the log always holds a prefix of the
/// accepted stream, never a rejected update, and (under
/// [`SyncPolicy::Always`]) never acknowledges before durability.
///
/// Storage failures after attach **fail open**: the engine keeps
/// serving, logging stops, the `durable_wal_errors_total` counter and a
/// one-time stderr line report it. Crash recovery then yields the
/// prefix persisted up to the failure — consistent, merely older.
pub struct Logged {
    inner: Box<dyn DynamicMis>,
    wal: Wal,
    storage: Arc<dyn WalStorage>,
    sync: SyncPolicy,
    group: Option<GroupCommit>,
    checkpoint_every: u64,
    since_checkpoint: u64,
    keep_checkpoints: usize,
    k: u32,
    streams: u32,
    dead: bool,
    records: Arc<dynamis_obs::Counter>,
    checkpoints: Arc<dynamis_obs::Counter>,
    wal_errors: Arc<dynamis_obs::Counter>,
}

impl Logged {
    /// Sequence number of the last logged update.
    pub fn last_seq(&self) -> u64 {
        self.wal.next_seq - 1
    }

    /// `false` once a storage failure stopped logging (fail-open).
    pub fn wal_healthy(&self) -> bool {
        !self.dead
    }

    fn fail(&mut self, err: std::io::Error) {
        if !self.dead {
            eprintln!("durable: WAL failed, logging stopped (serving continues): {err}");
        }
        self.dead = true;
        self.wal_errors.add(1);
    }

    /// Logs the accepted `updates`, then applies the sync policy and
    /// the checkpoint cadence.
    fn persist(&mut self, updates: &[Update]) {
        if self.dead || updates.is_empty() {
            return;
        }
        for u in updates {
            if let Err(e) = self.wal.append(u) {
                self.fail(e);
                return;
            }
        }
        self.records.add(updates.len() as u64);
        match self.sync {
            SyncPolicy::Always => {
                if let Err(e) = self.wal.sync() {
                    self.fail(e);
                    return;
                }
            }
            SyncPolicy::Group => {
                // The tick thread drains and fsyncs the buffers on its
                // own clock; the writer only surfaces its failures.
                if self.group.as_ref().is_some_and(|g| g.failed()) {
                    self.fail(std::io::Error::other(
                        "group-commit sync thread hit a storage error",
                    ));
                    return;
                }
            }
            SyncPolicy::Never => {}
        }
        self.since_checkpoint += updates.len() as u64;
        if self.since_checkpoint >= self.checkpoint_every {
            self.since_checkpoint = 0;
            if let Err(e) = self.write_checkpoint() {
                self.fail(e);
            }
        }
    }

    /// Captures a snapshot, publishes it atomically (tmp → sync →
    /// rename), rolls the segments, and prunes history below the oldest
    /// retained checkpoint.
    fn write_checkpoint(&mut self) -> std::io::Result<()> {
        // Records the checkpoint covers must be on storage before the
        // checkpoint that supersedes them: a damaged newest checkpoint
        // falls back to an older one plus exactly these records.
        self.wal.flush()?;
        let seq = self.last_seq();
        let snapshot = Snapshot::capture(self.inner.as_ref());
        let bytes = encode_checkpoint(self.k, self.streams, seq, &snapshot.encode());
        let tmp = format!("ckpt-{seq:016}.tmp");
        let name = checkpoint_name(seq);
        self.storage.create(&tmp)?;
        self.storage.append(&tmp, &bytes)?;
        self.storage.sync(&tmp)?;
        self.storage.rename(&tmp, &name)?;
        self.checkpoints.add(1);
        self.wal.roll_all()?;
        self.prune()
    }

    /// Removes checkpoints beyond the retention count and every segment
    /// whose records all lie at or below the oldest retained checkpoint.
    fn prune(&self) -> std::io::Result<()> {
        let names = self.storage.list()?;
        let mut ckpts: Vec<(u64, &String)> = names
            .iter()
            .filter_map(|n| parse_checkpoint_name(n).map(|s| (s, n)))
            .collect();
        ckpts.sort_by_key(|c| std::cmp::Reverse(c.0));
        if ckpts.is_empty() {
            return Ok(());
        }
        for &(_, name) in ckpts.iter().skip(self.keep_checkpoints) {
            self.storage.remove(name)?;
        }
        let oldest_kept = self.keep_checkpoints.min(ckpts.len()) - 1;
        let horizon = ckpts[oldest_kept].0;
        // A segment is removable when its successor in the same stream
        // starts at or below `horizon + 1` — then every record it holds
        // is covered by the oldest retained checkpoint.
        let mut per_stream: Vec<Vec<(u64, &String)>> = vec![Vec::new(); self.streams as usize];
        for n in &names {
            if let Some((stream, start)) = parse_segment_name(n) {
                if (stream as usize) < per_stream.len() {
                    per_stream[stream as usize].push((start, n));
                }
            }
        }
        for files in per_stream.iter_mut() {
            files.sort();
            for w in files.windows(2) {
                let (_, name) = w[0];
                let (next_start, _) = w[1];
                if next_start <= horizon + 1 {
                    self.storage.remove(name)?;
                }
            }
        }
        Ok(())
    }
}

impl DynamicMis for Logged {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn graph(&self) -> &DynamicGraph {
        self.inner.graph()
    }

    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
        let r = self.inner.try_apply(u);
        if r.is_ok() {
            self.persist(std::slice::from_ref(u));
        }
        r
    }

    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        let r = self.inner.try_apply_batch(updates);
        // On rejection the valid prefix was applied (and stays applied);
        // log exactly that prefix. Non-`Batch` errors reject the first
        // update, applying nothing — mirroring the serve writer loop.
        let accepted = match &r {
            Ok(_) => updates.len(),
            Err(EngineError::Batch { index, .. }) => *index,
            Err(_) => 0,
        };
        self.persist(&updates[..accepted]);
        r
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.inner.drain_delta()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn solution(&self) -> Vec<u32> {
        self.inner.solution()
    }

    fn contains(&self, v: u32) -> bool {
        self.inner.contains(v)
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

impl Drop for Logged {
    fn drop(&mut self) {
        // Clean shutdown leaves everything durable: write the buffers
        // through and fsync (under `Never`, write through only), then
        // drop the group committer — its Drop joins after fsyncing any
        // still-queued requests for already-closed segments.
        if !self.dead {
            let _ = if self.sync == SyncPolicy::Never {
                self.wal.flush()
            } else {
                self.wal.sync()
            };
        }
        self.group.take();
    }
}
