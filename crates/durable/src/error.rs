//! Typed failures of the durability layer.

use dynamis_core::EngineError;
use std::fmt;
use std::io;

/// Why a durable data directory could not be opened, scanned, or
/// recovered. Every corruption class is typed: callers (the CLI's
/// `recover` subcommand, the serve wiring, the fuzz suite) can tell an
/// operator error (wrong `k`, newer on-disk format) from crash damage
/// (torn tail, bit flip) without parsing strings.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying storage failed.
    Io(io::Error),
    /// The directory holds no `MANIFEST`: it is not a durable data
    /// directory (or initialization never completed).
    NotInitialized,
    /// A file failed structural validation beyond repair — damage in a
    /// position the recovery invariants do not allow (for example a
    /// checksum mismatch in a *non-final* segment, which no crash can
    /// produce).
    Corrupt {
        /// The offending file.
        file: String,
        /// What failed, for the operator.
        what: &'static str,
    },
    /// A manifest, checkpoint, or segment was written by a newer format
    /// version. Refused, never guessed at.
    UnsupportedVersion {
        /// Version found on disk.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The directory was written for a different `k` than the caller
    /// expects. Replaying a `k = 1` stream into a `k = 2` engine would
    /// silently produce a different solution, so this is a refusal.
    KMismatch {
        /// `k` recorded on disk.
        found: u32,
        /// `k` the caller asked for.
        expected: u32,
    },
    /// The directory was written with a different WAL stream count than
    /// the caller configured (records are routed by `seq % streams`).
    StreamMismatch {
        /// Stream count recorded on disk.
        found: u32,
        /// Stream count the caller asked for.
        expected: u32,
    },
    /// No checkpoint survived validation. The layer always writes a
    /// bootstrap checkpoint before logging the first update, so this
    /// means every checkpoint file was damaged.
    NoCheckpoint,
    /// A logged update was rejected during replay. Impossible for an
    /// undamaged log (only *accepted* updates are ever logged), so this
    /// is corruption that happened to pass the checksums.
    Replay {
        /// Sequence number of the rejected update.
        seq: u64,
        /// The engine's rejection.
        cause: EngineError,
    },
    /// Engine construction failed while opening the directory.
    Engine(EngineError),
}

impl DurableError {
    /// Collapses this error into an [`EngineError`] for APIs (the serve
    /// engine factories) that can only surface engine errors. Detail
    /// beyond the class is lost; callers that care print `self` first.
    pub fn into_engine_error(self) -> EngineError {
        match self {
            DurableError::Engine(e) => e,
            DurableError::Replay { cause, .. } => cause,
            DurableError::Io(_) => EngineError::BadParameter("durable: storage I/O failed"),
            DurableError::NotInitialized => {
                EngineError::BadParameter("durable: data directory not initialized")
            }
            DurableError::Corrupt { .. } => {
                EngineError::BadParameter("durable: data directory is corrupt")
            }
            DurableError::UnsupportedVersion { .. } => {
                EngineError::BadParameter("durable: data directory has a newer format version")
            }
            DurableError::KMismatch { .. } => {
                EngineError::BadParameter("durable: data directory was written for a different k")
            }
            DurableError::StreamMismatch { .. } => EngineError::BadParameter(
                "durable: data directory was written with a different stream count",
            ),
            DurableError::NoCheckpoint => {
                EngineError::BadParameter("durable: no valid checkpoint in data directory")
            }
        }
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "storage I/O failed: {e}"),
            DurableError::NotInitialized => {
                write!(f, "not a durable data directory (no MANIFEST)")
            }
            DurableError::Corrupt { file, what } => write!(f, "{file} is corrupt: {what}"),
            DurableError::UnsupportedVersion { found, supported } => write!(
                f,
                "format version {found} is newer than supported version {supported}"
            ),
            DurableError::KMismatch { found, expected } => {
                write!(
                    f,
                    "data directory was written for k = {found}, not {expected}"
                )
            }
            DurableError::StreamMismatch { found, expected } => write!(
                f,
                "data directory was written with {found} WAL streams, not {expected}"
            ),
            DurableError::NoCheckpoint => write!(f, "no checkpoint survived validation"),
            DurableError::Replay { seq, cause } => {
                write!(f, "logged update seq {seq} was rejected on replay: {cause}")
            }
            DurableError::Engine(e) => write!(f, "engine construction failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Replay { cause, .. } => Some(cause),
            DurableError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<EngineError> for DurableError {
    fn from(e: EngineError) -> Self {
        DurableError::Engine(e)
    }
}
