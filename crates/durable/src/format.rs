//! On-disk formats: file naming, CRC-32, and the manifest / segment /
//! checkpoint codecs.
//!
//! All integers are little-endian, matching the serve wire codec —
//! which also encodes the update bodies themselves (a WAL record's
//! payload is the exact byte string `net-serve` would put on the wire,
//! so there is exactly one update codec in the system).
//!
//! ```text
//! MANIFEST               magic "DYWALMAN" · version u16 · k u32 · streams u32 · crc u32
//! wal-SS-QQQQ….seg       magic "DYWALSEG" · version u16 · stream u32 · start_seq u64
//!                        then records: len u32 · crc u32 · payload
//!                        payload = seq u64 · update body (serve wire codec)
//! ckpt-QQQQ….snap        magic "DYWALCKP" · version u16 · k u32 · streams u32 ·
//!                        seq u64 · body_len u64 · body_crc u32 · body
//!                        body = dynamis_core::Snapshot::encode()
//! ```
//!
//! Record CRCs cover the payload only (`len` corruption is caught by
//! bounds checks, and a wrong-but-in-bounds `len` makes the CRC
//! mismatch anyway). Checkpoint CRCs cover the body.

use crate::error::DurableError;
use dynamis_core::Snapshot;
use dynamis_graph::Update;
use dynamis_serve::wire::{encode_update_body, put_u16, put_u32, put_u64, take_update, Reader};

/// Version written into every manifest, segment, and checkpoint header.
pub const FORMAT_VERSION: u16 = 1;
/// The manifest file name.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Upper bound on one record's payload; anything larger is corruption
/// (a vertex insertion of 2^24 neighbors is ~64 MiB, far below this).
pub const MAX_RECORD: usize = 1 << 26;
/// Byte offset of the `version` field in a checkpoint file — stable,
/// exposed so format tests can surgically bump it.
pub const CKPT_VERSION_OFFSET: usize = 8;
/// Byte offset of the `k` field in a checkpoint file.
pub const CKPT_K_OFFSET: usize = 10;

const MAN_MAGIC: [u8; 8] = *b"DYWALMAN";
const SEG_MAGIC: [u8; 8] = *b"DYWALSEG";
const CKPT_MAGIC: [u8; 8] = *b"DYWALCKP";

/// Bytes of a segment header.
pub const SEGMENT_HEADER_LEN: usize = 8 + 2 + 4 + 8;
/// Bytes of a checkpoint header (before the snapshot body).
pub const CKPT_HEADER_LEN: usize = 8 + 2 + 4 + 4 + 8 + 8 + 4;

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected), table-driven. Implemented here —
/// the container is offline, so no external checksum crate.
pub fn crc32(data: &[u8]) -> u32 {
    // Slicing-by-eight: eight independent table lookups per 8-byte
    // chunk instead of one dependent lookup per byte — the WAL
    // checksums every record on the ingest hot path, so the byte-wise
    // loop was a measurable slice of the append cost.
    static TABLES: [[u32; 256]; 8] = crc_tables();
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            j += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

// ------------------------------------------------------------ file names

/// `wal-{stream:02}-{start_seq:016}.seg`
pub fn segment_name(stream: u32, start_seq: u64) -> String {
    format!("wal-{stream:02}-{start_seq:016}.seg")
}

/// Inverse of [`segment_name`]; `None` for anything else.
pub fn parse_segment_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    let (stream, seq) = rest.split_once('-')?;
    Some((stream.parse().ok()?, seq.parse().ok()?))
}

/// `ckpt-{seq:016}.snap`
pub fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:016}.snap")
}

/// Inverse of [`checkpoint_name`]; `None` for anything else.
pub fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Whether `name` is a half-written temporary (crashed atomic publish).
pub fn is_tmp_name(name: &str) -> bool {
    name.ends_with(".tmp")
}

// -------------------------------------------------------------- manifest

/// The directory's pinned identity: format version, engine `k`, and
/// WAL stream count. Written once at initialization; every reopen must
/// match it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Format version the directory was written with.
    pub version: u16,
    /// `k` of the engine whose accepted stream is logged.
    pub k: u32,
    /// Number of WAL streams records are routed across.
    pub streams: u32,
}

/// Encodes a manifest at [`FORMAT_VERSION`].
pub fn encode_manifest(k: u32, streams: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(22);
    out.extend_from_slice(&MAN_MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, k);
    put_u32(&mut out, streams);
    let crc = crc32(&out[8..]);
    put_u32(&mut out, crc);
    out
}

/// Decodes and validates a manifest.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, DurableError> {
    let corrupt = |what| DurableError::Corrupt {
        file: MANIFEST_NAME.into(),
        what,
    };
    if bytes.len() != 22 {
        return Err(corrupt("wrong length"));
    }
    if bytes[..8] != MAN_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(bytes[18..22].try_into().unwrap());
    if crc != crc32(&bytes[8..18]) {
        return Err(corrupt("checksum mismatch"));
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version > FORMAT_VERSION {
        return Err(DurableError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(Manifest {
        version,
        k: u32::from_le_bytes(bytes[10..14].try_into().unwrap()),
        streams: u32::from_le_bytes(bytes[14..18].try_into().unwrap()),
    })
}

// -------------------------------------------------------------- segments

/// A validated segment header.
#[derive(Debug, Clone, Copy)]
pub struct SegmentHeader {
    /// Format version of this segment.
    pub version: u16,
    /// The stream this segment belongs to.
    pub stream: u32,
    /// Global sequence number of the first record written to it.
    pub start_seq: u64,
}

/// Encodes a segment header.
pub fn encode_segment_header(stream: u32, start_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
    out.extend_from_slice(&SEG_MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, stream);
    put_u64(&mut out, start_seq);
    out
}

/// Decodes a segment header, or says why it is unusable. `Err` here is
/// *damage*, not a typed refusal — the scanner decides whether damage
/// in this position is a legal torn tail or mid-log corruption.
pub fn decode_segment_header(bytes: &[u8]) -> Result<SegmentHeader, &'static str> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err("truncated segment header");
    }
    if bytes[..8] != SEG_MAGIC {
        return Err("bad segment magic");
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version > FORMAT_VERSION {
        return Err("segment version newer than manifest allows");
    }
    Ok(SegmentHeader {
        version,
        stream: u32::from_le_bytes(bytes[10..14].try_into().unwrap()),
        start_seq: u64::from_le_bytes(bytes[14..22].try_into().unwrap()),
    })
}

// --------------------------------------------------------------- records

/// Appends one framed record (`len · crc · seq · update body`) to `out`.
pub fn encode_record(seq: u64, update: &Update, out: &mut Vec<u8>) {
    let frame = out.len();
    put_u32(out, 0); // len, patched below
    put_u32(out, 0); // crc, patched below
    let payload = out.len();
    put_u64(out, seq);
    encode_update_body(update, out);
    let len = (out.len() - payload) as u32;
    let crc = crc32(&out[payload..]);
    out[frame..frame + 4].copy_from_slice(&len.to_le_bytes());
    out[frame + 4..frame + 8].copy_from_slice(&crc.to_le_bytes());
}

/// One step of record decoding at `buf[off..]`.
#[derive(Debug)]
pub enum RecordStep {
    /// A whole, checksum-valid, decodable record ending at `next`.
    Record {
        /// The record's global sequence number.
        seq: u64,
        /// The logged update.
        update: Update,
        /// Offset of the next record.
        next: usize,
    },
    /// `off` is exactly the end of the buffer: a clean segment end.
    End,
    /// The bytes at `off..` are not a whole valid record — a torn tail
    /// if this is the stream's final segment, corruption otherwise.
    Damaged(&'static str),
}

/// Decodes the record starting at `buf[off..]`.
pub fn decode_record(buf: &[u8], off: usize) -> RecordStep {
    let rem = buf.len() - off;
    if rem == 0 {
        return RecordStep::End;
    }
    if rem < 8 {
        return RecordStep::Damaged("truncated record frame");
    }
    let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
    if len > MAX_RECORD {
        return RecordStep::Damaged("record length out of bounds");
    }
    if rem < 8 + len {
        return RecordStep::Damaged("truncated record payload");
    }
    let crc = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap());
    let payload = &buf[off + 8..off + 8 + len];
    if crc != crc32(payload) {
        return RecordStep::Damaged("record checksum mismatch");
    }
    let mut r = Reader::new(payload);
    let decoded = (|| {
        let seq = r.take_u64("record seq")?;
        let update = take_update(&mut r)?;
        r.finish()?;
        Ok::<_, dynamis_serve::wire::WireError>((seq, update))
    })();
    match decoded {
        Ok((seq, update)) => RecordStep::Record {
            seq,
            update,
            next: off + 8 + len,
        },
        Err(_) => RecordStep::Damaged("record payload does not decode"),
    }
}

// ------------------------------------------------------------ checkpoints

/// A validated checkpoint header.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointHeader {
    /// Format version of this checkpoint.
    pub version: u16,
    /// `k` the snapshotted engine was built with.
    pub k: u32,
    /// WAL stream count at capture time.
    pub streams: u32,
    /// Accepted-update sequence number the snapshot covers (inclusive).
    pub seq: u64,
}

/// Encodes a checkpoint file: header plus the snapshot body.
pub fn encode_checkpoint(k: u32, streams: u32, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CKPT_HEADER_LEN + body.len());
    out.extend_from_slice(&CKPT_MAGIC);
    put_u16(&mut out, FORMAT_VERSION);
    put_u32(&mut out, k);
    put_u32(&mut out, streams);
    put_u64(&mut out, seq);
    put_u64(&mut out, body.len() as u64);
    put_u32(&mut out, crc32(body));
    out.extend_from_slice(body);
    out
}

/// What checkpoint decoding found. Version and `k` policy (refuse vs
/// fall back) belongs to the scanner; this layer only classifies.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// Structurally valid at a supported version.
    Valid(CheckpointHeader, Snapshot),
    /// Written by a newer format version — a refusal, never a skip.
    NewerVersion(u16),
    /// Structurally damaged (length, magic, checksum, or body).
    Damaged(&'static str),
}

/// Decodes and validates a checkpoint file.
pub fn decode_checkpoint(bytes: &[u8]) -> CheckpointOutcome {
    use CheckpointOutcome::{Damaged, NewerVersion, Valid};
    if bytes.len() < CKPT_HEADER_LEN {
        return Damaged("truncated checkpoint header");
    }
    if bytes[..8] != CKPT_MAGIC {
        return Damaged("bad checkpoint magic");
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version > FORMAT_VERSION {
        return NewerVersion(version);
    }
    let k = u32::from_le_bytes(bytes[10..14].try_into().unwrap());
    let streams = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
    let seq = u64::from_le_bytes(bytes[18..26].try_into().unwrap());
    let body_len = u64::from_le_bytes(bytes[26..34].try_into().unwrap());
    let body_crc = u32::from_le_bytes(bytes[34..38].try_into().unwrap());
    let body = &bytes[CKPT_HEADER_LEN..];
    if body_len != body.len() as u64 {
        return Damaged("checkpoint body length mismatch");
    }
    if body_crc != crc32(body) {
        return Damaged("checkpoint body checksum mismatch");
    }
    match Snapshot::decode(body) {
        Ok(snapshot) => Valid(
            CheckpointHeader {
                version,
                k,
                streams,
                seq,
            },
            snapshot,
        ),
        Err(_) => Damaged("checkpoint snapshot does not decode"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_segment_name(&segment_name(3, 17)), Some((3, 17)));
        assert_eq!(parse_checkpoint_name(&checkpoint_name(42)), Some(42));
        assert_eq!(parse_segment_name("ckpt-0000000000000042.snap"), None);
        assert_eq!(parse_checkpoint_name("wal-00-0000000000000001.seg"), None);
        assert!(is_tmp_name("ckpt-0000000000000042.tmp"));
    }

    #[test]
    fn record_round_trip_and_damage() {
        let mut buf = Vec::new();
        encode_record(7, &Update::InsertEdge(1, 2), &mut buf);
        let end = buf.len();
        encode_record(
            8,
            &Update::InsertVertex {
                id: 9,
                neighbors: vec![1, 2, 3],
            },
            &mut buf,
        );
        match decode_record(&buf, 0) {
            RecordStep::Record { seq, update, next } => {
                assert_eq!(seq, 7);
                assert_eq!(update, Update::InsertEdge(1, 2));
                assert_eq!(next, end);
            }
            other => panic!("expected record, got {other:?}"),
        }
        assert!(matches!(decode_record(&buf, buf.len()), RecordStep::End));
        // Any bit flip anywhere in a record must be caught.
        for off in 0..buf.len() {
            let mut bad = buf.clone();
            bad[off] ^= 0x10;
            let first = decode_record(&bad, 0);
            if off < end {
                assert!(
                    matches!(first, RecordStep::Damaged(_)),
                    "flip at {off} went unnoticed"
                );
            }
        }
        // Every strict prefix is either a clean end or damage — never a
        // record (no truncation can fake a valid frame).
        for cut in 0..buf.len() {
            match decode_record(&buf[..cut], 0) {
                RecordStep::End | RecordStep::Damaged(_) => {}
                RecordStep::Record { next, .. } => assert_eq!(next, end),
            }
        }
    }

    #[test]
    fn manifest_round_trip_and_version_refusal() {
        let bytes = encode_manifest(2, 4);
        let m = decode_manifest(&bytes).unwrap();
        assert_eq!(
            m,
            Manifest {
                version: FORMAT_VERSION,
                k: 2,
                streams: 4
            }
        );
        let mut newer = bytes.clone();
        newer[8] = FORMAT_VERSION as u8 + 1;
        // A bumped version with a stale checksum is damage…
        assert!(matches!(
            decode_manifest(&newer),
            Err(DurableError::Corrupt { .. })
        ));
        // …with a recomputed checksum it is a typed version refusal.
        let crc = crc32(&newer[8..18]);
        newer[18..22].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_manifest(&newer),
            Err(DurableError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }
}
