//! The write side: segmented append-only logging of accepted updates,
//! with group-commit write-through and fsync batching off the writer
//! thread.
//!
//! The writer encodes records into per-stream user-space buffers under
//! a short mutex; under [`SyncPolicy::Group`] a background thread ticks
//! every couple of milliseconds, writes the buffered bytes through, and
//! fsyncs the touched segments. The ingest hot path therefore costs a
//! memcpy, not a syscall, and the durability lag of an acknowledged
//! update is time-bounded by the tick interval rather than by when the
//! next flush threshold happens to be crossed.

use crate::format::{encode_record, encode_segment_header, segment_name};
use crate::storage::WalStorage;
use std::collections::BTreeSet;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync explicitly (tests and benchmarks; the OS still
    /// writes back eventually).
    Never,
    /// Fsync before every acknowledgement: an accepted update is
    /// durable before its delta is broadcast or its ticket resolves.
    /// The strongest guarantee — and the slowest path.
    Always,
    /// Group commit: appends are acknowledged immediately; a background
    /// thread writes the buffered records through and fsyncs on a fixed
    /// interval, coalescing everything that accumulated since the last
    /// tick. A crash loses at most the suffix of the last couple of
    /// milliseconds — recovery still yields a consistent prefix.
    Group,
}

/// Backstop on the bytes a stream may buffer in user space before the
/// writer itself writes through inline. Under [`SyncPolicy::Group`] the
/// tick thread normally drains buffers long before this; the cap only
/// bounds memory if storage stalls or ingest outruns the tick. Under
/// [`SyncPolicy::Never`] it is the only write-through trigger besides
/// rolls, checkpoints, and shutdown.
const MAX_BUFFER: usize = 256 << 10;

/// How often the group-commit thread wakes to write buffers through
/// and fsync. This interval bounds the durability lag of updates
/// acknowledged under [`SyncPolicy::Group`] — at any ingest rate, not
/// just when a size threshold fills.
const SYNC_INTERVAL: std::time::Duration = std::time::Duration::from_millis(2);

/// One WAL stream's open segment.
struct Seg {
    name: String,
    /// Bytes already written through to storage.
    written: u64,
    /// Encoded records (and, initially, the header) not yet written.
    buf: Vec<u8>,
}

impl Seg {
    /// Logical size: what the file will hold once the buffer flushes.
    fn logical(&self) -> u64 {
        self.written + self.buf.len() as u64
    }
}

/// State shared between the writer and the group-commit thread: the
/// open segments (with their pending buffers) and the names written
/// through since the last fsync round.
pub(crate) struct Shared {
    streams: Vec<Option<Seg>>,
    /// Names with bytes on storage not yet covered by an fsync —
    /// drained by the group tick or by [`Wal::sync`]. Only maintained
    /// when someone will drain it (not under [`SyncPolicy::Never`]).
    flushed: BTreeSet<String>,
    track_flushed: bool,
}

impl Shared {
    /// Writes stream `s`'s buffer through to storage. Must run under
    /// the shared lock — ordering between the writer's inline flushes
    /// (rolls, checkpoints) and the tick thread's drains depends on it.
    fn write_through(&mut self, storage: &dyn WalStorage, s: usize) -> io::Result<()> {
        if let Some(seg) = self.streams[s].as_mut() {
            if !seg.buf.is_empty() {
                storage.append(&seg.name, &seg.buf)?;
                seg.written += seg.buf.len() as u64;
                seg.buf.clear();
                if self.track_flushed {
                    self.flushed.insert(seg.name.clone());
                }
            }
        }
        Ok(())
    }

    fn write_through_all(&mut self, storage: &dyn WalStorage) -> io::Result<()> {
        for s in 0..self.streams.len() {
            self.write_through(storage, s)?;
        }
        Ok(())
    }
}

/// The segmented writer: routes record `seq` to stream `seq % P`,
/// buffers encoded records per stream, and rolls segments at a size
/// threshold. The buffers live behind a mutex shared with the
/// group-commit thread, which drains them on its tick.
pub(crate) struct Wal {
    storage: Arc<dyn WalStorage>,
    shared: Arc<Mutex<Shared>>,
    seg_bytes: u64,
    /// Sequence number the next accepted update will get (1-based).
    pub(crate) next_seq: u64,
}

impl Wal {
    pub(crate) fn new(
        storage: Arc<dyn WalStorage>,
        streams: u32,
        next_seq: u64,
        seg_bytes: u64,
        track_flushed: bool,
    ) -> Wal {
        Wal {
            storage,
            shared: Arc::new(Mutex::new(Shared {
                streams: (0..streams.max(1)).map(|_| None).collect(),
                flushed: BTreeSet::new(),
                track_flushed,
            })),
            seg_bytes: seg_bytes.max(1024),
            next_seq,
        }
    }

    /// Handle for a [`GroupCommit`] thread to drain the buffers.
    pub(crate) fn shared(&self) -> Arc<Mutex<Shared>> {
        Arc::clone(&self.shared)
    }

    /// Appends one accepted update as the next sequence number. The
    /// record lands in the stream's buffer; it reaches storage on the
    /// next group tick, at a roll/checkpoint/sync, or at the buffer
    /// backstop.
    pub(crate) fn append(&mut self, update: &dynamis_graph::Update) -> io::Result<u64> {
        let seq = self.next_seq;
        let s = (seq % self.num_streams()) as usize;
        let g = &mut *self.shared.lock().unwrap();
        if g.streams[s]
            .as_ref()
            .is_some_and(|seg| seg.logical() >= self.seg_bytes)
        {
            // Write the closing segment out in full before dropping it:
            // a checkpoint fallback replays these records from disk.
            g.write_through(&*self.storage, s)?;
            g.streams[s] = None;
        }
        if g.streams[s].is_none() {
            let name = segment_name(s as u32, seq);
            self.storage.create(&name)?;
            let mut buf = Vec::with_capacity(4096);
            buf.extend_from_slice(&encode_segment_header(s as u32, seq));
            g.streams[s] = Some(Seg {
                name,
                written: 0,
                buf,
            });
        }
        let seg = g.streams[s].as_mut().unwrap();
        encode_record(seq, update, &mut seg.buf);
        self.next_seq = seq + 1;
        if g.streams[s].as_ref().unwrap().buf.len() >= MAX_BUFFER {
            g.write_through(&*self.storage, s)?;
        }
        Ok(seq)
    }

    fn num_streams(&self) -> u64 {
        // Stream count is fixed at construction; reading it does not
        // need the lock (it is the length of the vec, never mutated).
        self.shared.lock().unwrap().streams.len() as u64
    }

    /// Writes every stream's buffer through to storage (no fsync).
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        self.shared
            .lock()
            .unwrap()
            .write_through_all(&*self.storage)
    }

    /// Flushes, then fsyncs every segment written through since the
    /// last sync round plus every open segment (the
    /// [`SyncPolicy::Always`] path and the shutdown path).
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        let names = {
            let g = &mut *self.shared.lock().unwrap();
            g.write_through_all(&*self.storage)?;
            let mut names = std::mem::take(&mut g.flushed);
            names.extend(g.streams.iter().flatten().map(|s| s.name.clone()));
            names
        };
        for name in &names {
            self.storage.sync(name)?;
        }
        Ok(())
    }

    /// Flushes and closes every open segment; the next append per
    /// stream starts a fresh one. Called after a checkpoint so pruning
    /// can reason in whole segments.
    pub(crate) fn roll_all(&mut self) -> io::Result<()> {
        let g = &mut *self.shared.lock().unwrap();
        g.write_through_all(&*self.storage)?;
        for s in g.streams.iter_mut() {
            *s = None;
        }
        Ok(())
    }
}

/// The group-commit thread: wakes on a fixed interval, writes every
/// stream's buffered records through, and fsyncs each touched segment
/// once no matter how much piled up since the last tick — that
/// coalescing is the whole point. Storage failures set a flag the
/// writer checks on its next acknowledgement (fail-open) and are
/// counted; the data already written stays consistent.
pub(crate) struct GroupCommit {
    stop: Arc<AtomicBool>,
    failed: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl GroupCommit {
    pub(crate) fn spawn(storage: Arc<dyn WalStorage>, shared: Arc<Mutex<Shared>>) -> GroupCommit {
        let stop = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(AtomicBool::new(false));
        let errors = dynamis_obs::global().counter("durable_sync_errors_total");
        let syncs = dynamis_obs::global().counter("durable_group_syncs_total");
        let join = {
            let (stop, failed) = (Arc::clone(&stop), Arc::clone(&failed));
            std::thread::Builder::new()
                .name("dynamis-wal-sync".into())
                .spawn(move || loop {
                    let stopping = stop.load(Ordering::Acquire);
                    if !stopping {
                        std::thread::sleep(SYNC_INTERVAL);
                    }
                    let names = {
                        let g = &mut *shared.lock().unwrap();
                        if let Err(_e) = g.write_through_all(&*storage) {
                            errors.add(1);
                            failed.store(true, Ordering::Release);
                        }
                        std::mem::take(&mut g.flushed)
                    };
                    for name in &names {
                        if storage.sync(name).is_err() {
                            errors.add(1);
                            failed.store(true, Ordering::Release);
                        }
                    }
                    if !names.is_empty() {
                        syncs.add(1);
                    }
                    if stopping {
                        break;
                    }
                })
                .expect("failed to spawn WAL sync thread")
        };
        GroupCommit {
            stop,
            failed,
            join: Some(join),
        }
    }

    /// Whether the tick thread hit a storage error (sticky).
    pub(crate) fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        // Ask for one final drain-and-fsync tick, then wait for it — a
        // clean shutdown leaves everything acknowledged durable.
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{decode_record, decode_segment_header, RecordStep, SEGMENT_HEADER_LEN};
    use crate::storage::MemStorage;
    use dynamis_graph::Update;

    #[test]
    fn records_route_round_robin_and_segments_roll() {
        let st = MemStorage::new();
        let mut wal = Wal::new(Arc::new(st.clone()), 2, 1, 1024, true);
        for i in 0..6u32 {
            let seq = wal.append(&Update::InsertEdge(i, i + 1)).unwrap();
            assert_eq!(seq, (i + 1) as u64);
        }
        // Records buffer in user space until a flush point.
        wal.flush().unwrap();
        // Streams 0 and 1 each got every other record.
        let names = st.list().unwrap();
        assert_eq!(names.len(), 2, "one open segment per stream: {names:?}");
        for name in names {
            let bytes = st.read(&name).unwrap();
            let hdr = decode_segment_header(&bytes).unwrap();
            let mut off = SEGMENT_HEADER_LEN;
            let mut seqs = Vec::new();
            loop {
                match decode_record(&bytes, off) {
                    RecordStep::Record { seq, next, .. } => {
                        seqs.push(seq);
                        off = next;
                    }
                    RecordStep::End => break,
                    RecordStep::Damaged(what) => panic!("clean segment damaged: {what}"),
                }
            }
            assert!(seqs.iter().all(|s| s % 2 == hdr.stream as u64));
            assert_eq!(seqs.len(), 3);
        }
        // Roll: the next appends open fresh segments.
        wal.roll_all().unwrap();
        wal.append(&Update::InsertEdge(90, 91)).unwrap();
        wal.append(&Update::InsertEdge(92, 93)).unwrap();
        assert_eq!(st.list().unwrap().len(), 4);
    }

    #[test]
    fn group_tick_drains_buffers_without_writer_involvement() {
        let st = MemStorage::new();
        let mut wal = Wal::new(Arc::new(st.clone()), 1, 1, 1 << 20, true);
        let group = GroupCommit::spawn(Arc::new(st.clone()), wal.shared());
        wal.append(&Update::InsertEdge(1, 2)).unwrap();
        let name = segment_name(0, 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while st.read(&name).unwrap().len() <= SEGMENT_HEADER_LEN {
            assert!(std::time::Instant::now() < deadline, "tick never drained");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(!group.failed());
        drop(group);
    }
}
