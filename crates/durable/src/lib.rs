//! # dynamis-durable — crash durability for the update stream
//!
//! The paper's engines are pure functions of (initial graph, accepted
//! update stream): feed the same accepted prefix and you get the same
//! solution. This crate persists exactly that — a segmented,
//! checksummed **write-ahead log of the accepted stream** plus periodic
//! engine **snapshot checkpoints** — and recovers a process restart to
//! the precise state of an uninterrupted run over the surviving prefix.
//!
//! ## Layers
//!
//! - [`WalStorage`] — the storage seam: [`FileStorage`] over a real
//!   directory, [`MemStorage`] with deterministic byte-granular crash
//!   injection for the recovery-equivalence tests.
//! - [`mod@format`] — on-disk codecs. WAL record payloads reuse the serve
//!   wire codec, so the system has exactly one update encoding.
//! - [`Logged`] — wraps any [`dynamis_core::DynamicMis`]; logs each
//!   accepted update after apply and before return, fsyncs per
//!   [`SyncPolicy`] (group commit by default, batched off-thread), and
//!   checkpoints every `checkpoint_every` accepted updates.
//! - [`scan`] / [`prepare`] — recovery: newest valid checkpoint, WAL
//!   tail replayed on top, torn final records truncated (never
//!   trusted), version/`k` mismatches refused with typed errors.
//!
//! ## Serving durably
//!
//! ```
//! use dynamis_core::{DynamicMis, EngineBuilder};
//! use dynamis_durable::{prepare, DurableOptions, MemStorage, SyncPolicy, WalStorage};
//! use dynamis_graph::{DynamicGraph, Update};
//! use dynamis_serve::{MisService, ServeConfig};
//! use std::sync::Arc;
//!
//! let storage: Arc<dyn WalStorage> = Arc::new(MemStorage::new());
//! let opts = DurableOptions { sync: SyncPolicy::Never, ..DurableOptions::default() };
//!
//! // First life: serve, accept updates, stop.
//! let mut prepared = prepare(Arc::clone(&storage), 2, opts).unwrap();
//! let cfg = ServeConfig { first_seq: prepared.first_broadcast_seq(), ..ServeConfig::default() };
//! let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let builder = prepared.resume_builder(EngineBuilder::on(g).k(2));
//! let (service, _reader) = MisService::spawn_with(
//!     move || {
//!         prepared
//!             .attach(builder.build()?)
//!             .map(|l| Box::new(l) as _)
//!             .map_err(|e| e.into_engine_error())
//!     },
//!     cfg,
//! )
//! .unwrap();
//! service.submit(Update::RemoveEdge(1, 2)).unwrap().wait().unwrap();
//! let report = service.shutdown();
//!
//! // Second life: recovery reproduces the exact pre-restart state.
//! let mut prepared = prepare(Arc::clone(&storage), 2, opts).unwrap();
//! assert_eq!(prepared.recovered_seq, 1);
//! let builder = prepared.resume_builder(EngineBuilder::on(DynamicGraph::from_edges(0, &[])).k(2));
//! let recovered = prepared.attach(builder.build().unwrap()).unwrap();
//! assert_eq!(recovered.solution(), report.solution);
//! ```
//!
//! [`dynamis_core::DynamicMis`]: dynamis_core::DynamicMis

#![deny(missing_docs)]

mod error;
pub mod format;
mod logged;
mod recover;
mod storage;
mod wal;

pub use error::DurableError;
pub use logged::{prepare, DurableOptions, Logged, Prepared};
pub use recover::{apply_repairs, newest_checkpoint, scan, NewestCheckpoint, Repair, ScanReport};
pub use storage::{FileStorage, MemStorage, WalStorage};
pub use wal::SyncPolicy;
