//! The read side: scan a durable directory, validate every byte, and
//! reconstruct the longest consistent prefix of the accepted stream.
//!
//! Recovery invariants:
//!
//! - The newest **valid** checkpoint is the base; checkpoints damaged
//!   by a crash mid-publish are skipped in favor of an older one (the
//!   writer keeps more than one for exactly this reason).
//! - A newer *format version* or a mismatched *k* is a typed refusal,
//!   never a fallback — those mean operator error, and guessing would
//!   silently produce a different solution.
//! - Only the **final** segment of a stream may end in damage (the torn
//!   tail of the crashed write); recovery truncates it rather than
//!   trusting it. Damage anywhere else cannot be produced by a crash
//!   and is reported as corruption.
//! - The recovered stream is the longest *contiguous* run of sequence
//!   numbers above the checkpoint. Records beyond a gap (possible only
//!   under mid-log damage in a multi-stream layout) are dropped and
//!   their bytes scheduled for truncation, so a reopened log never
//!   collides with stale sequence numbers.

use crate::error::DurableError;
use crate::format::{
    decode_checkpoint, decode_manifest, decode_record, decode_segment_header, is_tmp_name,
    parse_checkpoint_name, parse_segment_name, CheckpointOutcome, Manifest, RecordStep,
    MANIFEST_NAME, SEGMENT_HEADER_LEN,
};
use crate::storage::WalStorage;
use dynamis_core::Snapshot;
use dynamis_graph::Update;
use std::collections::BTreeMap;

/// A mutation `scan` prescribes but does not perform: dropping torn
/// tails, stale temporaries, and orphaned records. `verify` mode
/// reports them; `replay` mode (and every reopen-for-writing) applies
/// them via [`apply_repairs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Repair {
    /// Cut `name` down to `len` bytes.
    Truncate {
        /// File to truncate.
        name: String,
        /// Valid byte length to keep.
        len: u64,
    },
    /// Delete `name` entirely.
    Remove {
        /// File to delete.
        name: String,
    },
}

/// Everything a scan learned about a durable directory.
#[derive(Debug)]
pub struct ScanReport {
    /// The directory's pinned identity.
    pub manifest: Manifest,
    /// Sequence number the recovered snapshot covers (inclusive).
    pub checkpoint_seq: u64,
    /// The engine state at `checkpoint_seq`.
    pub snapshot: Snapshot,
    /// Last sequence number of the recovered prefix; the directory
    /// holds the exact state of an uninterrupted run of this length.
    pub recovered_seq: u64,
    /// The WAL tail to replay: updates `checkpoint_seq + 1 ..= recovered_seq`.
    pub tail: Vec<Update>,
    /// Mutations required to make the directory clean for appending.
    pub repairs: Vec<Repair>,
    /// Newest-first checkpoints skipped as damaged before one validated.
    pub skipped_checkpoints: usize,
    /// Bytes of torn tail scheduled for truncation.
    pub torn_bytes: u64,
    /// Decodable records dropped because they lie beyond a sequence gap.
    pub dropped_records: u64,
}

/// The newest valid checkpoint in a durable directory — the read path
/// a cold-starting consumer needs without a full [`scan`].
#[derive(Debug)]
pub struct NewestCheckpoint {
    /// Sequence number the checkpoint covers (inclusive).
    pub seq: u64,
    /// The engine state at `seq`.
    pub snapshot: Snapshot,
    /// Checkpoint files skipped as damaged (crash artifacts) before one
    /// validated, newest-first. Mutating callers schedule these for
    /// removal; read-only callers just report them.
    pub damaged: Vec<String>,
}

/// Selects the newest **valid** checkpoint among `names`, skipping
/// crash-damaged ones in favor of an older survivor. This is the
/// checkpoint read path shared by [`scan`] and external cold-start
/// consumers (e.g. a snapshot bootstrap server deciding what a fresh
/// remote mirror should seed from). A checkpoint with a mismatched `k`
/// or stream count, or a newer format version, is a typed refusal —
/// never a fallback.
pub fn newest_checkpoint(
    storage: &dyn WalStorage,
    manifest: &Manifest,
    names: &[String],
) -> Result<NewestCheckpoint, DurableError> {
    let mut ckpts: Vec<(u64, &String)> = names
        .iter()
        .filter_map(|n| parse_checkpoint_name(n).map(|seq| (seq, n)))
        .collect();
    ckpts.sort_by_key(|c| std::cmp::Reverse(c.0));
    let mut damaged = Vec::new();
    for &(name_seq, name) in &ckpts {
        match decode_checkpoint(&storage.read(name)?) {
            CheckpointOutcome::Valid(hdr, snapshot) => {
                if hdr.k != manifest.k {
                    return Err(DurableError::KMismatch {
                        found: hdr.k,
                        expected: manifest.k,
                    });
                }
                if hdr.streams != manifest.streams {
                    return Err(DurableError::StreamMismatch {
                        found: hdr.streams,
                        expected: manifest.streams,
                    });
                }
                if hdr.seq != name_seq {
                    // A checkpoint lying about its own name is damage.
                    damaged.push(name.clone());
                    continue;
                }
                return Ok(NewestCheckpoint {
                    seq: hdr.seq,
                    snapshot,
                    damaged,
                });
            }
            CheckpointOutcome::NewerVersion(found) => {
                return Err(DurableError::UnsupportedVersion {
                    found,
                    supported: crate::format::FORMAT_VERSION,
                });
            }
            CheckpointOutcome::Damaged(_) => damaged.push(name.clone()),
        }
    }
    Err(DurableError::NoCheckpoint)
}

/// Scans `storage` without mutating it. `expected_k` / `expected_streams`
/// (when given) must match the manifest, else the scan is refused with
/// the corresponding typed error.
pub fn scan(
    storage: &dyn WalStorage,
    expected_k: Option<u32>,
    expected_streams: Option<u32>,
) -> Result<ScanReport, DurableError> {
    let names = storage.list()?;
    if !names.iter().any(|n| n == MANIFEST_NAME) {
        return Err(DurableError::NotInitialized);
    }
    let manifest = decode_manifest(&storage.read(MANIFEST_NAME)?)?;
    if let Some(k) = expected_k {
        if manifest.k != k {
            return Err(DurableError::KMismatch {
                found: manifest.k,
                expected: k,
            });
        }
    }
    if let Some(streams) = expected_streams {
        if manifest.streams != streams {
            return Err(DurableError::StreamMismatch {
                found: manifest.streams,
                expected: streams,
            });
        }
    }

    let mut removes: Vec<String> = names.iter().filter(|n| is_tmp_name(n)).cloned().collect();
    let mut truncates: BTreeMap<String, u64> = BTreeMap::new();
    let mut torn_bytes = 0u64;

    // ---- newest valid checkpoint, skipping crash-damaged ones --------
    let picked = newest_checkpoint(storage, &manifest, &names)?;
    let skipped_checkpoints = picked.damaged.len();
    removes.extend(picked.damaged);
    let (checkpoint_seq, snapshot) = (picked.seq, picked.snapshot);

    // ---- decode every stream's segments ------------------------------
    let streams = manifest.streams.max(1);
    let mut per_stream_files: Vec<Vec<(u64, String)>> = vec![Vec::new(); streams as usize];
    for n in &names {
        if let Some((stream, start_seq)) = parse_segment_name(n) {
            if stream >= streams {
                return Err(DurableError::Corrupt {
                    file: n.clone(),
                    what: "segment stream index out of range",
                });
            }
            per_stream_files[stream as usize].push((start_seq, n.clone()));
        }
    }
    // (seq, update) above the checkpoint, plus where each record lives
    // so orphans beyond a gap can be cut.
    let mut records: BTreeMap<u64, Update> = BTreeMap::new();
    let mut positions: Vec<Vec<(u64, usize, u64)>> = vec![Vec::new(); streams as usize];
    for (s, files) in per_stream_files.iter_mut().enumerate() {
        files.sort();
        let mut last_seq: Option<u64> = None;
        for (fi, (start_seq, name)) in files.iter().enumerate() {
            let last_file = fi == files.len() - 1;
            let bytes = storage.read(name)?;
            // Damage verdict for this position in the stream: the final
            // segment's tail is a legal crash artifact (truncate it);
            // anything earlier no crash can produce.
            let hdr = match decode_segment_header(&bytes) {
                Ok(hdr) => hdr,
                Err(what) => {
                    if last_file {
                        removes.push(name.clone());
                        torn_bytes += bytes.len() as u64;
                        break;
                    }
                    return Err(DurableError::Corrupt {
                        file: name.clone(),
                        what,
                    });
                }
            };
            if hdr.stream != s as u32 || hdr.start_seq != *start_seq {
                if last_file {
                    removes.push(name.clone());
                    torn_bytes += bytes.len() as u64;
                    break;
                }
                return Err(DurableError::Corrupt {
                    file: name.clone(),
                    what: "segment header disagrees with its file name",
                });
            }
            let mut off = SEGMENT_HEADER_LEN;
            loop {
                match decode_record(&bytes, off) {
                    RecordStep::End => break,
                    RecordStep::Damaged(what) => {
                        if last_file {
                            truncates.insert(name.clone(), off as u64);
                            torn_bytes += (bytes.len() - off) as u64;
                            break;
                        }
                        return Err(DurableError::Corrupt {
                            file: name.clone(),
                            what,
                        });
                    }
                    RecordStep::Record { seq, update, next } => {
                        if seq % streams as u64 != s as u64 {
                            return Err(DurableError::Corrupt {
                                file: name.clone(),
                                what: "record routed to the wrong stream",
                            });
                        }
                        if last_seq.is_some_and(|p| seq <= p) {
                            return Err(DurableError::Corrupt {
                                file: name.clone(),
                                what: "sequence numbers not increasing",
                            });
                        }
                        last_seq = Some(seq);
                        if seq > checkpoint_seq {
                            positions[s].push((seq, fi, off as u64));
                            if records.insert(seq, update).is_some() {
                                return Err(DurableError::Corrupt {
                                    file: name.clone(),
                                    what: "duplicate sequence number",
                                });
                            }
                        }
                        off = next;
                    }
                }
            }
        }
    }

    // ---- longest contiguous prefix above the checkpoint --------------
    let mut recovered_seq = checkpoint_seq;
    let mut tail = Vec::new();
    while let Some(update) = records.remove(&(recovered_seq + 1)) {
        recovered_seq += 1;
        tail.push(update);
    }
    let dropped_records = records.len() as u64;
    if dropped_records > 0 {
        // Cut each stream at its first orphan so reopened appends can
        // never collide with stale sequence numbers.
        for (s, pos) in positions.iter().enumerate() {
            if let Some(&(_, fi, off)) = pos.iter().find(|(seq, _, _)| *seq > recovered_seq) {
                let (_, name) = &per_stream_files[s][fi];
                let cut = truncates.get(name).map_or(off, |&t| t.min(off));
                truncates.insert(name.clone(), cut);
                for (_, later) in &per_stream_files[s][fi + 1..] {
                    removes.push(later.clone());
                }
            }
        }
    }

    let mut repairs: Vec<Repair> = Vec::new();
    for name in removes {
        truncates.remove(&name);
        repairs.push(Repair::Remove { name });
    }
    repairs.extend(
        truncates
            .into_iter()
            .map(|(name, len)| Repair::Truncate { name, len }),
    );

    Ok(ScanReport {
        manifest,
        checkpoint_seq,
        snapshot,
        recovered_seq,
        tail,
        repairs,
        skipped_checkpoints,
        torn_bytes,
        dropped_records,
    })
}

/// Applies the repairs a scan prescribed. Idempotent: re-running after
/// a crash mid-repair converges to the same clean directory.
pub fn apply_repairs(storage: &dyn WalStorage, repairs: &[Repair]) -> std::io::Result<()> {
    for r in repairs {
        match r {
            Repair::Truncate { name, len } => storage.truncate(name, *len)?,
            Repair::Remove { name } => match storage.remove(name) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            },
        }
    }
    Ok(())
}
