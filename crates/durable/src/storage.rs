//! Storage abstraction under the WAL: a flat namespace of append-only
//! files with explicit sync, truncate, and atomic rename.
//!
//! Two implementations:
//!
//! - [`FileStorage`] — a real directory. `sync` is `fsync`; `rename` is
//!   the atomic-publish primitive checkpoint and manifest writes rely
//!   on (write `*.tmp`, sync, rename into place).
//! - [`MemStorage`] — an in-memory directory with **deterministic
//!   crash injection at byte granularity**: give it a byte budget and
//!   the append that exceeds it writes exactly the remaining bytes,
//!   then fails — and every later mutation fails too, exactly like a
//!   process that died mid-`write`. Because the writer emits bytes in
//!   a deterministic order, crashing at byte `b` is a pure function of
//!   `b`, which is what lets the recovery-equivalence proptest sweep
//!   *every* crash point of a recorded run.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The file operations the WAL and checkpoint writers need. Names are
/// flat (no subdirectories); implementations decide what they map to.
pub trait WalStorage: Send + Sync {
    /// Every file name in the directory, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
    /// The full contents of `name`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Creates `name` empty, truncating any existing file.
    fn create(&self, name: &str) -> io::Result<()>;
    /// Appends `data` to `name` (which must exist).
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Forces `name`'s contents to stable storage.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Truncates `name` to `len` bytes — how recovery drops a torn
    /// tail instead of trusting it.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Removes `name`.
    fn remove(&self, name: &str) -> io::Result<()>;
    /// Current size of `name` in bytes.
    fn size(&self, name: &str) -> io::Result<u64>;
}

/// [`WalStorage`] over a real directory (created on open).
#[derive(Debug)]
pub struct FileStorage {
    root: PathBuf,
}

impl FileStorage {
    /// Opens (creating if needed) `root` as a durable data directory.
    pub fn open<P: AsRef<Path>>(root: P) -> io::Result<FileStorage> {
        fs::create_dir_all(root.as_ref())?;
        Ok(FileStorage {
            root: root.as_ref().to_path_buf(),
        })
    }

    /// The directory this storage is rooted at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Syncs the directory entry itself — after a create or rename, the
    /// *name* must survive a crash too, not only the bytes.
    fn sync_dir(&self) -> io::Result<()> {
        fs::File::open(&self.root)?.sync_all()
    }
}

impl WalStorage for FileStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn create(&self, name: &str) -> io::Result<()> {
        fs::File::create(self.path(name))?;
        self.sync_dir()
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new().append(true).open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        fs::OpenOptions::new()
            .read(true)
            .open(self.path(name))?
            .sync_all()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(self.path(name))?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.path(from), self.path(to))?;
        self.sync_dir()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path(name))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path(name))?.len())
    }
}

#[derive(Debug, Default)]
struct MemInner {
    files: BTreeMap<String, Vec<u8>>,
    /// Total bytes ever appended — the crash-offset coordinate space.
    appended: u64,
    /// Bytes of append budget left before the simulated crash.
    budget: Option<u64>,
    /// The process "died": every mutation fails until [`MemStorage::revive`].
    dead: bool,
}

fn crashed() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "simulated crash")
}

/// In-memory [`WalStorage`] with byte-granular crash injection.
///
/// Clones share the same directory, so a test holds one handle to
/// inject the fault and hands a clone to the code under test; after the
/// "crash", [`MemStorage::revive`] models the restart and recovery runs
/// against the surviving bytes.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// An empty in-memory directory with no fault scheduled.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// An empty directory that crashes once `budget` appended bytes
    /// have been written: the append that would exceed the budget
    /// persists exactly the bytes that still fit, then fails — and the
    /// storage stays dead until [`MemStorage::revive`].
    pub fn with_budget(budget: u64) -> MemStorage {
        let st = MemStorage::new();
        st.inner.lock().unwrap().budget = Some(budget);
        st
    }

    /// Total bytes appended so far across all files — run once without
    /// a budget to learn the byte-offset space a crash sweep covers.
    pub fn total_appended(&self) -> u64 {
        self.inner.lock().unwrap().appended
    }

    /// Whether the scheduled fault has fired.
    pub fn is_dead(&self) -> bool {
        self.inner.lock().unwrap().dead
    }

    /// Models the restart: clears the dead flag and any remaining
    /// budget. The surviving file contents are untouched.
    pub fn revive(&self) {
        let mut g = self.inner.lock().unwrap();
        g.dead = false;
        g.budget = None;
    }

    /// Test helper: XORs `mask` into the byte at `offset` of `name` —
    /// the bit-flip primitive of the corruption fuzz suite.
    pub fn corrupt(&self, name: &str, offset: usize, mask: u8) {
        let mut g = self.inner.lock().unwrap();
        let f = g.files.get_mut(name).expect("corrupt: no such file");
        f[offset] ^= mask;
    }

    /// Test helper: replaces `name`'s contents wholesale (free of
    /// budget accounting).
    pub fn overwrite(&self, name: &str, bytes: Vec<u8>) {
        self.inner.lock().unwrap().files.insert(name.into(), bytes);
    }
}

impl WalStorage for MemStorage {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.inner.lock().unwrap().files.keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner
            .lock()
            .unwrap()
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn create(&self, name: &str) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if g.dead {
            return Err(crashed());
        }
        g.files.insert(name.into(), Vec::new());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if g.dead {
            return Err(crashed());
        }
        let take = match g.budget {
            Some(b) if (data.len() as u64) > b => {
                g.dead = true;
                b as usize
            }
            Some(b) => {
                g.budget = Some(b - data.len() as u64);
                data.len()
            }
            None => data.len(),
        };
        g.appended += take as u64;
        let file = g
            .files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        file.extend_from_slice(&data[..take]);
        if take < data.len() {
            return Err(crashed());
        }
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let g = self.inner.lock().unwrap();
        if g.dead {
            return Err(crashed());
        }
        if g.files.contains_key(name) {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::NotFound, name.to_string()))
        }
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if g.dead {
            return Err(crashed());
        }
        let file = g
            .files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        file.truncate(len as usize);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if g.dead {
            return Err(crashed());
        }
        let bytes = g
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        g.files.insert(to.into(), bytes);
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut g = self.inner.lock().unwrap();
        if g.dead {
            return Err(crashed());
        }
        g.files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.inner
            .lock()
            .unwrap()
            .files
            .get(name)
            .map(|f| f.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_budget_crashes_mid_append() {
        let st = MemStorage::with_budget(10);
        st.create("a").unwrap();
        st.append("a", &[1, 2, 3, 4, 5, 6]).unwrap();
        // 4 budget bytes left: the 6-byte append lands 4 bytes, fails.
        let err = st.append("a", &[7, 8, 9, 10, 11, 12]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(st.is_dead());
        // Everything after the crash fails too.
        assert!(st.append("a", &[0]).is_err());
        assert!(st.create("b").is_err());
        assert!(st.sync("a").is_err());
        // The restart sees exactly the surviving prefix.
        st.revive();
        assert_eq!(st.read("a").unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(st.total_appended(), 10);
    }

    #[test]
    fn file_storage_round_trip() {
        let dir = std::env::temp_dir().join(format!("dynamis-durable-st-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let st = FileStorage::open(&dir).unwrap();
        st.create("seg").unwrap();
        st.append("seg", b"hello world").unwrap();
        st.sync("seg").unwrap();
        assert_eq!(st.size("seg").unwrap(), 11);
        st.truncate("seg", 5).unwrap();
        assert_eq!(st.read("seg").unwrap(), b"hello");
        st.rename("seg", "seg2").unwrap();
        assert_eq!(st.list().unwrap(), vec!["seg2".to_string()]);
        st.remove("seg2").unwrap();
        assert!(st.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
