//! The central durability theorem, checked exhaustively: crash the
//! process at **every byte offset** of a recorded run, recover, replay
//! the remainder of the input stream — and the final solution, sequence
//! number, and a delta-fed [`SolutionMirror`] all equal those of a run
//! that never crashed. Engines are pure functions of their accepted
//! stream, so recovery that restores any consistent prefix and re-feeds
//! the rest must land on the identical state; any divergence means the
//! WAL lost, duplicated, or reordered an accepted update.
//!
//! The sweep runs for the single-writer engine and the canonical
//! sharded engine at P ∈ {2, 4} (WAL streams = shards, records routed
//! `seq % P`), plus a proptest that randomizes the update stream and
//! the crash offset together.

use dynamis_core::{DynamicMis, EngineBuilder, SolutionMirror};
use dynamis_durable::{prepare, DurableOptions, Logged, MemStorage, SyncPolicy, WalStorage};
use dynamis_graph::{DynamicGraph, Update};
use dynamis_shard::ShardedEngine;
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

/// A small dense-ish graph plus a mixed update stream over it. Roughly
/// half the updates are rejected (duplicate edges, missing endpoints) —
/// deliberately, to pin that only *accepted* updates reach the WAL.
fn workload(n: u32, updates: usize, seed: u64) -> (DynamicGraph, Vec<Update>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_range(0..4u32) == 0 {
                edges.push((u, v));
            }
        }
    }
    let g = DynamicGraph::from_edges(n as usize, &edges);
    let mut stream = Vec::with_capacity(updates);
    let mut next_vertex = n;
    for _ in 0..updates {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        stream.push(match rng.gen_range(0..10u32) {
            0..=3 => Update::InsertEdge(a, b),
            4..=7 => Update::RemoveEdge(a, b),
            8 => {
                next_vertex += 1;
                Update::InsertVertex {
                    id: next_vertex,
                    neighbors: vec![a, b],
                }
            }
            _ => Update::RemoveVertex(a),
        });
    }
    (g, stream)
}

/// How the engine under test is built: single-writer (any k) or the
/// canonical sharded engine (k ≤ 2, P writer cells).
#[derive(Clone, Copy)]
enum Flavor {
    Single,
    Sharded(u32),
}

impl Flavor {
    fn streams(self) -> u32 {
        match self {
            Flavor::Single => 1,
            Flavor::Sharded(p) => p,
        }
    }

    fn build(self, builder: EngineBuilder) -> Box<dyn DynamicMis> {
        match self {
            Flavor::Single => builder.build().unwrap(),
            Flavor::Sharded(p) => Box::new(
                builder
                    .shards(p as usize)
                    .build_as::<ShardedEngine>()
                    .unwrap(),
            ),
        }
    }
}

fn opts(flavor: Flavor) -> DurableOptions {
    DurableOptions {
        streams: flavor.streams(),
        sync: SyncPolicy::Always,
        checkpoint_every: 16,
        segment_bytes: 256, // force rolls so sweeps cross segment seams
        ..DurableOptions::default()
    }
}

/// The uninterrupted reference run.
struct Reference {
    /// `pos_of_seq[s - 1]` = stream index of the update that got seq `s`.
    pos_of_seq: Vec<usize>,
    solution: Vec<u32>,
    accepted: u64,
    /// Total bytes the run appended — the crash sweep's coordinate space.
    bytes: u64,
}

fn reference(g: &DynamicGraph, stream: &[Update], flavor: Flavor) -> Reference {
    let storage = MemStorage::new();
    let arc: Arc<dyn WalStorage> = Arc::new(storage.clone());
    let mut prepared = prepare(arc, 2, opts(flavor)).unwrap();
    let builder = prepared.resume_builder(EngineBuilder::on(g.clone()).k(2));
    let mut engine = prepared.attach(flavor.build(builder)).unwrap();
    let mut pos_of_seq = Vec::new();
    for (i, u) in stream.iter().enumerate() {
        if engine.try_apply(u).is_ok() {
            pos_of_seq.push(i);
        }
    }
    assert!(engine.wal_healthy());
    let solution = engine.solution();
    let accepted = engine.last_seq();
    drop(engine);
    Reference {
        pos_of_seq,
        solution,
        accepted,
        bytes: storage.total_appended(),
    }
}

/// One crash trial: run until the storage dies at byte `budget`, then
/// restart, recover, and replay the rest of the input stream. Returns
/// (solution, last_seq, mirror solution) of the second life.
fn crash_at(
    g: &DynamicGraph,
    stream: &[Update],
    flavor: Flavor,
    reference: &Reference,
    budget: u64,
) -> (Vec<u32>, u64, Vec<u32>) {
    let storage = MemStorage::with_budget(budget);
    let arc: Arc<dyn WalStorage> = Arc::new(storage.clone());

    // First life: any stage — init, bootstrap checkpoint, append, mid-run
    // checkpoint — may hit the fault. The process "dies" at the first
    // storage failure (fail-open would keep serving, but a crash test
    // models the host going down with it).
    let first_life = (|| -> Result<(), ()> {
        let mut prepared = prepare(Arc::clone(&arc), 2, opts(flavor)).map_err(|_| ())?;
        let builder = prepared.resume_builder(EngineBuilder::on(g.clone()).k(2));
        let mut engine = prepared.attach(flavor.build(builder)).map_err(|_| ())?;
        for u in stream {
            let _ = engine.try_apply(u);
            if storage.is_dead() {
                // The process is gone; the destructor's final sync
                // cannot reach the dead storage, so dropping here
                // mutates nothing post-crash.
                break;
            }
        }
        drop(engine);
        Ok(())
    })();
    let _ = first_life;

    // Second life: restart against the surviving bytes.
    storage.revive();
    let mut prepared = prepare(arc, 2, opts(flavor)).unwrap();
    let recovered = prepared.recovered_seq;
    assert!(
        recovered <= reference.accepted,
        "recovered seq {recovered} beyond reference {}",
        reference.accepted
    );
    let resume_at = if recovered == 0 {
        0
    } else {
        reference.pos_of_seq[recovered as usize - 1] + 1
    };
    let builder = prepared.resume_builder(EngineBuilder::on(g.clone()).k(2));
    let mut engine = prepared.attach(flavor.build(builder)).unwrap();
    let _ = engine.drain_delta();
    let mut mirror = SolutionMirror::from_solution(&engine.solution());
    for u in &stream[resume_at..] {
        if let Ok(delta) = engine.try_apply(u) {
            mirror.apply(&delta).unwrap();
        }
    }
    assert!(engine.wal_healthy());
    let out = (
        engine.solution(),
        engine.last_seq(),
        mirror.solution().to_vec(),
    );
    drop(engine);
    out
}

fn check_equivalence(flavor: Flavor, n: u32, updates: usize, seed: u64, stride: u64) {
    let (g, stream) = workload(n, updates, seed);
    let r = reference(&g, &stream, flavor);
    assert!(r.accepted > 0, "degenerate workload: nothing accepted");
    let mut offset = 0;
    while offset <= r.bytes {
        let (solution, seq, mirror) = crash_at(&g, &stream, flavor, &r, offset);
        assert_eq!(
            solution, r.solution,
            "crash at byte {offset}: solution diverged"
        );
        assert_eq!(seq, r.accepted, "crash at byte {offset}: seq diverged");
        assert_eq!(
            mirror, r.solution,
            "crash at byte {offset}: delta mirror diverged"
        );
        offset += stride;
    }
}

#[test]
fn single_writer_crash_at_every_byte() {
    check_equivalence(Flavor::Single, 24, 48, 0xD15C0, 1);
}

#[test]
fn sharded_p2_crash_at_every_byte() {
    check_equivalence(Flavor::Sharded(2), 16, 24, 0xD15C1, 1);
}

#[test]
fn sharded_p4_crash_at_every_byte() {
    check_equivalence(Flavor::Sharded(4), 16, 24, 0xD15C2, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workload × random crash offset, both flavors.
    #[test]
    fn random_stream_random_crash(seed in 0u64..1u32 as u64 * 1000, frac in 0.0f64..1.0) {
        for flavor in [Flavor::Single, Flavor::Sharded(2)] {
            let (g, stream) = workload(20, 32, seed);
            let r = reference(&g, &stream, flavor);
            prop_assert!(r.accepted > 0, "degenerate workload: nothing accepted");
            let offset = (frac * r.bytes as f64) as u64;
            let (solution, seq, mirror) = crash_at(&g, &stream, flavor, &r, offset);
            prop_assert_eq!(&solution, &r.solution);
            prop_assert_eq!(seq, r.accepted);
            prop_assert_eq!(&mirror, &r.solution);
        }
    }
}

/// The recovered engine must also be *reusable*: appends after recovery
/// land in fresh segments and a subsequent recovery sees both epochs.
#[test]
fn recovery_then_more_updates_then_recovery_again() {
    let flavor = Flavor::Single;
    let (g, stream) = workload(20, 40, 7);
    let r = reference(&g, &stream, flavor);
    let half = stream.len() / 2;

    // Enough budget to get past init and into the update stream; the
    // every-byte sweeps above cover crashes inside init itself.
    let storage = MemStorage::with_budget(r.bytes * 2 / 3);
    let arc: Arc<dyn WalStorage> = Arc::new(storage.clone());
    {
        let mut prepared = prepare(Arc::clone(&arc), 2, opts(flavor)).unwrap();
        let builder = prepared.resume_builder(EngineBuilder::on(g.clone()).k(2));
        let mut engine = prepared.attach(flavor.build(builder)).unwrap();
        for u in &stream[..half] {
            let _ = engine.try_apply(u);
            if storage.is_dead() {
                break;
            }
        }
    }

    storage.revive();
    let mut prepared = prepare(Arc::clone(&arc), 2, opts(flavor)).unwrap();
    let recovered = prepared.recovered_seq;
    let resume_at = if recovered == 0 {
        0
    } else {
        r.pos_of_seq[recovered as usize - 1] + 1
    };
    let builder = prepared.resume_builder(EngineBuilder::on(g.clone()).k(2));
    let mut engine: Logged = prepared.attach(flavor.build(builder)).unwrap();
    for u in &stream[resume_at..] {
        let _ = engine.try_apply(u);
    }
    assert!(engine.wal_healthy());
    drop(engine); // clean shutdown this time

    // Third life: everything including the post-crash epoch is there.
    let mut prepared = prepare(arc, 2, opts(flavor)).unwrap();
    assert_eq!(prepared.recovered_seq, r.accepted);
    let builder = prepared.resume_builder(EngineBuilder::on(g).k(2));
    let engine = prepared.attach(flavor.build(builder)).unwrap();
    assert_eq!(engine.solution(), r.solution);
}
