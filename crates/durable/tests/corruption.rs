//! Corruption fuzz: flip bits and truncate prefixes across **every
//! file** of a recorded durable directory, and require of each mutation
//! that recovery (a) never panics, (b) either returns a typed error or
//! recovers a strict prefix of the reference run — never a forged or
//! reordered stream. CRC32 catches every single-bit flip, so a flipped
//! record can only fall off the end (torn tail) or surface as a typed
//! `Corrupt`; a flipped checkpoint falls back to the older retained one.

use dynamis_core::{DynamicMis, EngineBuilder};
use dynamis_durable::format::{self, CKPT_K_OFFSET, CKPT_VERSION_OFFSET};
use dynamis_durable::{
    prepare, scan, DurableError, DurableOptions, MemStorage, SyncPolicy, WalStorage,
};
use dynamis_graph::{DynamicGraph, Update};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;

/// A clean recorded run: manifest, ≥ 2 retained checkpoints, several
/// rolled segments, plus the accepted stream for prefix checks.
struct Recorded {
    storage: MemStorage,
    accepted: Vec<Update>,
}

fn record(seed: u64) -> Recorded {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 18u32;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_range(0..4u32) == 0 {
                edges.push((u, v));
            }
        }
    }
    let g = DynamicGraph::from_edges(n as usize, &edges);
    let storage = MemStorage::new();
    let arc: Arc<dyn WalStorage> = Arc::new(storage.clone());
    let opts = DurableOptions {
        streams: 1,
        sync: SyncPolicy::Never,
        checkpoint_every: 12,
        segment_bytes: 200,
        keep_checkpoints: 2,
    };
    let mut prepared = prepare(arc, 2, opts).unwrap();
    let builder = prepared.resume_builder(EngineBuilder::on(g).k(2));
    let mut engine = prepared.attach(builder.build().unwrap()).unwrap();
    let mut accepted = Vec::new();
    for _ in 0..40 {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let u = if rng.gen_range(0..2u32) == 0 {
            Update::InsertEdge(a, b)
        } else {
            Update::RemoveEdge(a, b)
        };
        if engine.try_apply(&u).is_ok() {
            accepted.push(u);
        }
    }
    drop(engine);
    Recorded { storage, accepted }
}

/// Deep-copies the recorded directory into a fresh [`MemStorage`]
/// (clones share state, so mutation tests need a real copy).
fn fork(of: &MemStorage) -> MemStorage {
    let copy = MemStorage::new();
    for name in of.list().unwrap() {
        copy.overwrite(&name, of.read(&name).unwrap());
    }
    copy
}

/// A scan outcome is acceptable iff it is a typed error or a strict
/// prefix of the reference accepted stream.
fn assert_survivable(result: Result<dynamis_durable::ScanReport, DurableError>, r: &Recorded) {
    match result {
        Ok(rep) => {
            let total = r.accepted.len() as u64;
            assert!(
                rep.recovered_seq <= total,
                "recovered {} beyond reference {}",
                rep.recovered_seq,
                total
            );
            assert!(rep.checkpoint_seq <= rep.recovered_seq);
            // The replay tail must be exactly the reference updates in
            // (checkpoint_seq, recovered_seq] — same order, no forgeries.
            let want = &r.accepted[rep.checkpoint_seq as usize..rep.recovered_seq as usize];
            assert_eq!(rep.tail, want, "recovered tail is not a reference slice");
        }
        Err(
            DurableError::Corrupt { .. }
            | DurableError::UnsupportedVersion { .. }
            | DurableError::KMismatch { .. }
            | DurableError::StreamMismatch { .. }
            | DurableError::NoCheckpoint
            | DurableError::NotInitialized,
        ) => {}
        Err(other) => panic!("scan failed with a non-recovery error: {other}"),
    }
}

#[test]
fn every_byte_bit_flip_never_panics_and_never_forges() {
    let r = record(11);
    let names = r.storage.list().unwrap();
    assert!(names.iter().filter(|n| n.starts_with("ckpt-")).count() >= 2);
    assert!(names.iter().filter(|n| n.starts_with("wal-")).count() >= 2);
    for name in &names {
        let len = r.storage.read(name).unwrap().len();
        for off in 0..len {
            // Low and high bit per byte: covers every field boundary
            // without an 8× blowup; CRC coverage is bit-position blind.
            for mask in [0x01u8, 0x80] {
                let fs = fork(&r.storage);
                fs.corrupt(name, off, mask);
                assert_survivable(scan(&fs, None, None), &r);
            }
        }
    }
}

#[test]
fn every_prefix_truncation_never_panics_and_never_forges() {
    let r = record(12);
    for name in r.storage.list().unwrap() {
        let len = r.storage.read(&name).unwrap().len();
        for keep in 0..len {
            let fs = fork(&r.storage);
            fs.truncate(&name, keep as u64).unwrap();
            assert_survivable(scan(&fs, None, None), &r);
        }
    }
}

#[test]
fn file_removal_never_panics_and_never_forges() {
    let r = record(13);
    for name in r.storage.list().unwrap() {
        let fs = fork(&r.storage);
        fs.remove(&name).unwrap();
        assert_survivable(scan(&fs, None, None), &r);
    }
}

/// A damaged newest checkpoint must fall back to the older retained one
/// and re-reach the same recovered sequence through the kept WAL.
#[test]
fn damaged_newest_checkpoint_falls_back_without_losing_updates() {
    let r = record(14);
    let reference = scan(&r.storage, None, None).unwrap();
    let mut ckpts: Vec<String> = r
        .storage
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| format::parse_checkpoint_name(n).is_some())
        .collect();
    ckpts.sort();
    assert!(ckpts.len() >= 2, "need two retained checkpoints");
    let newest = ckpts.last().unwrap();

    let fs = fork(&r.storage);
    fs.corrupt(newest, format::CKPT_HEADER_LEN + 3, 0xFF); // body flip
    let rep = scan(&fs, None, None).unwrap();
    assert_eq!(rep.skipped_checkpoints, 1);
    assert!(rep.checkpoint_seq < reference.checkpoint_seq);
    assert_eq!(
        rep.recovered_seq, reference.recovered_seq,
        "fallback lost acknowledged updates"
    );
}

/// Both retained checkpoints damaged: recovery refuses with the typed
/// `NoCheckpoint` rather than inventing an empty state.
#[test]
fn all_checkpoints_damaged_is_a_typed_refusal() {
    let r = record(15);
    let fs = fork(&r.storage);
    for name in fs.list().unwrap() {
        if format::parse_checkpoint_name(&name).is_some() {
            fs.corrupt(&name, CKPT_VERSION_OFFSET + 20, 0x55);
        }
    }
    match scan(&fs, None, None) {
        Err(DurableError::NoCheckpoint) => {}
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
}

#[test]
fn manifest_damage_is_a_typed_error() {
    let r = record(16);
    // Truncated manifest.
    let fs = fork(&r.storage);
    fs.truncate(format::MANIFEST_NAME, 10).unwrap();
    assert!(matches!(
        scan(&fs, None, None),
        Err(DurableError::Corrupt { .. })
    ));
    // Missing manifest.
    let fs = fork(&r.storage);
    fs.remove(format::MANIFEST_NAME).unwrap();
    assert!(matches!(
        scan(&fs, None, None),
        Err(DurableError::NotInitialized)
    ));
}

/// A checkpoint from a future format version is refused outright even
/// though its checksum is intact — never misread, never deleted.
#[test]
fn newer_checkpoint_version_is_refused_not_skipped() {
    let r = record(17);
    let fs = fork(&r.storage);
    let ckpt = fs
        .list()
        .unwrap()
        .into_iter()
        .rfind(|n| format::parse_checkpoint_name(n).is_some())
        .unwrap();
    // Bump the version field; the header CRC does not cover it (the
    // version gate must fire before any version-specific parsing).
    fs.corrupt(&ckpt, CKPT_VERSION_OFFSET, 0x02);
    match scan(&fs, None, None) {
        Err(DurableError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, format::FORMAT_VERSION | 0x02);
            assert_eq!(supported, format::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// `prepare` against a k the directory was not written with is refused
/// before any repair runs.
#[test]
fn k_mismatch_refused_before_any_mutation() {
    let r = record(18);
    let fs = fork(&r.storage);
    let before: Vec<_> = fs.list().unwrap();
    let arc: Arc<dyn WalStorage> = Arc::new(fs.clone());
    match prepare(arc, 3, DurableOptions::default()) {
        Err(DurableError::KMismatch {
            found: 2,
            expected: 3,
        }) => {}
        Err(other) => panic!("expected KMismatch, got {other:?}"),
        Ok(_) => panic!("expected KMismatch, got Ok"),
    }
    assert_eq!(fs.list().unwrap(), before, "refusal must not mutate");
}

/// A checkpoint whose header claims a different `k` than the manifest
/// is a typed refusal — an honestly-written directory can never contain
/// one, and silently loading it would swap the engine's parameter.
#[test]
fn checkpoint_k_flip_is_a_typed_refusal() {
    let r = record(19);
    let fs = fork(&r.storage);
    let ckpt = fs
        .list()
        .unwrap()
        .into_iter()
        .rfind(|n| format::parse_checkpoint_name(n).is_some())
        .unwrap();
    fs.corrupt(&ckpt, CKPT_K_OFFSET, 0x01); // k: 2 → 3
    match scan(&fs, None, None) {
        Err(DurableError::KMismatch {
            found: 3,
            expected: 2,
        }) => {}
        other => panic!("expected KMismatch, got {other:?}"),
    }
}
