//! Exact MaxIS by branch-and-reduce — the VCSolver \[29\] stand-in.
//!
//! The solver kernelizes with the reductions of [`crate::kernel`], then
//! branches on a maximum-degree vertex (include / exclude), re-reducing in
//! every branch and pruning with the matching-based upper bound
//! `α ≤ n − |M|`. A node budget turns "did not finish in five hours" into
//! a deterministic, testable outcome: `solve_exact` returns `None` when
//! the budget is exhausted, which is how the harness decides the
//! easy/hard split of Table I.

use crate::kernel::Kernel;
use dynamis_graph::CsrGraph;

/// Budget knobs for the exact solver.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub node_budget: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            node_budget: 2_000_000,
        }
    }
}

/// A proven-optimal solution.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The independence number α(G).
    pub alpha: usize,
    /// One maximum independent set (sorted vertex ids).
    pub solution: Vec<u32>,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
}

struct Search {
    best_size: usize,
    best_solution: Vec<u32>,
    nodes: u64,
    budget: u64,
}

impl Search {
    /// Returns `false` when the budget ran out somewhere below.
    fn branch(&mut self, kernel: &mut Kernel) -> bool {
        self.nodes += 1;
        if self.nodes > self.budget {
            return false;
        }
        kernel.reduce();
        if kernel.n_alive() == 0 {
            if kernel.score() > self.best_size {
                self.best_size = kernel.score();
                self.best_solution = kernel.reconstruct(&[]);
            }
            return true;
        }
        if kernel.score() + kernel.alpha_upper_bound() <= self.best_size {
            return true; // pruned
        }
        let v = kernel
            .max_degree_vertex()
            .expect("non-empty kernel has a max-degree vertex");
        // Include branch first: taking a high-degree vertex shrinks the
        // graph fastest and tends to find good incumbents early.
        let mut include = kernel.clone();
        include.take(v);
        if !self.branch(&mut include) {
            return false;
        }
        kernel.exclude(v);
        self.branch(kernel)
    }
}

/// Solves MaxIS exactly, or returns `None` if the node budget is exceeded.
pub fn solve_exact(g: &CsrGraph, cfg: ExactConfig) -> Option<ExactResult> {
    let mut kernel = Kernel::from_csr(g);
    let mut search = Search {
        best_size: 0,
        best_solution: Vec::new(),
        nodes: 0,
        budget: cfg.node_budget,
    };
    if !search.branch(&mut kernel) {
        return None;
    }
    debug_assert!(crate::verify::is_independent(g, &search.best_solution));
    Some(ExactResult {
        alpha: search.best_size,
        solution: search.best_solution,
        nodes: search.nodes,
    })
}

/// Convenience wrapper returning only α(G).
pub fn alpha(g: &CsrGraph, cfg: ExactConfig) -> Option<usize> {
    solve_exact(g, cfg).map(|r| r.alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_alpha, is_independent, is_maximal};

    fn assert_optimal(g: &CsrGraph) {
        let r = solve_exact(g, ExactConfig::default()).expect("budget ample");
        assert_eq!(r.alpha, brute_force_alpha(g), "alpha mismatch");
        assert_eq!(r.solution.len(), r.alpha);
        assert!(is_independent(g, &r.solution));
        let all: Vec<u32> = (0..g.num_vertices() as u32).collect();
        assert!(is_maximal(g, &r.solution, &all));
    }

    #[test]
    fn solves_small_named_graphs() {
        assert_optimal(&CsrGraph::from_edges(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        ));
        assert_optimal(&CsrGraph::from_edges(
            4,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        ));
        // Petersen graph, alpha = 4.
        let petersen = CsrGraph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5),
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9),
            ],
        );
        let r = solve_exact(&petersen, ExactConfig::default()).unwrap();
        assert_eq!(r.alpha, 4);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use dynamis_graph::DynamicGraph;
        let mut s = 0x243f_6a88_85a3_08d3u64;
        for _ in 0..12 {
            let n = 16 + (s % 8) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if s.is_multiple_of(4) {
                        edges.push((u, v));
                    }
                }
            }
            let g = CsrGraph::from_dynamic(&DynamicGraph::from_edges(n, &edges));
            assert_optimal(&g);
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(solve_exact(&g, ExactConfig::default()).unwrap().alpha, 0);
        let g = CsrGraph::from_edges(9, &[]);
        assert_eq!(solve_exact(&g, ExactConfig::default()).unwrap().alpha, 9);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A dense-ish random graph with a 1-node budget cannot finish.
        let mut edges = Vec::new();
        for u in 0..30u32 {
            for v in (u + 1)..30u32 {
                if (u * 31 + v) % 3 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(30, &edges);
        assert!(solve_exact(&g, ExactConfig { node_budget: 1 }).is_none());
    }

    #[test]
    fn worst_case_family_k_prime() {
        // alpha(K'_n) = n(n-1)/2 per Theorem 3.
        for n in 4..7usize {
            let mut edges = Vec::new();
            let mut next = n as u32;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    edges.push((u, next));
                    edges.push((next, v));
                    next += 1;
                }
            }
            let g = CsrGraph::from_edges(next as usize, &edges);
            let r = solve_exact(&g, ExactConfig::default()).unwrap();
            assert_eq!(r.alpha, n * (n - 1) / 2);
        }
    }
}
