//! Solution checkers shared by every test suite in the workspace, plus a
//! brute-force optimum for cross-validation on small graphs.

use dynamis_graph::{CsrGraph, DynamicGraph};

/// Whether `set` is an independent set of `g`.
pub fn is_independent(g: &CsrGraph, set: &[u32]) -> bool {
    let mut member = vec![false; g.num_vertices()];
    for &v in set {
        if v as usize >= member.len() || member[v as usize] {
            return false; // out of range or duplicate
        }
        member[v as usize] = true;
    }
    set.iter()
        .all(|&v| g.neighbors(v).iter().all(|&u| !member[u as usize]))
}

/// Whether `set` is a *maximal* independent set of `g` restricted to the
/// vertices listed in `universe` (pass all vertices for plain maximality).
pub fn is_maximal(g: &CsrGraph, set: &[u32], universe: &[u32]) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    let mut member = vec![false; g.num_vertices()];
    for &v in set {
        member[v as usize] = true;
    }
    universe
        .iter()
        .all(|&v| member[v as usize] || g.neighbors(v).iter().any(|&u| member[u as usize]))
}

/// Same checks against a [`DynamicGraph`] (live vertices only).
pub fn is_independent_dynamic(g: &DynamicGraph, set: &[u32]) -> bool {
    let mut member = vec![false; g.capacity()];
    for &v in set {
        if !g.is_alive(v) || member[v as usize] {
            return false;
        }
        member[v as usize] = true;
    }
    set.iter()
        .all(|&v| g.neighbors(v).all(|u| !member[u as usize]))
}

/// Maximality over all live vertices of a [`DynamicGraph`].
pub fn is_maximal_dynamic(g: &DynamicGraph, set: &[u32]) -> bool {
    if !is_independent_dynamic(g, set) {
        return false;
    }
    let mut member = vec![false; g.capacity()];
    for &v in set {
        member[v as usize] = true;
    }
    g.vertices()
        .all(|v| member[v as usize] || g.neighbors(v).any(|u| member[u as usize]))
}

/// Brute-force search for a j-swap: `j` vertices of `set` whose removal
/// admits `j + 1` insertions. Exponential — test-sized graphs only.
///
/// Returns a witness `(out, in)` pair if one exists. A set is k-maximal
/// iff `find_swap(g, set, j)` is `None` for every `j ≤ k` (Definition of
/// §III-A).
pub fn find_swap(g: &CsrGraph, set: &[u32], j: usize) -> Option<(Vec<u32>, Vec<u32>)> {
    let n = g.num_vertices();
    let mut member = vec![false; n];
    for &v in set {
        member[v as usize] = true;
    }
    // Candidate outsiders with all solution-neighbors inside a subset S
    // are exactly those with count ≤ j; enumerate subsets S of the
    // solution lazily via combinations over `set`.
    let mut indices = vec![0usize; j];
    let combo = |idx: &[usize]| -> Option<(Vec<u32>, Vec<u32>)> {
        let out: Vec<u32> = idx.iter().map(|&i| set[i]).collect();
        let mut out_flag = vec![false; n];
        for &v in &out {
            out_flag[v as usize] = true;
        }
        // Free vertices: not in solution, and every solution neighbor is
        // being removed.
        let free: Vec<u32> = (0..n as u32)
            .filter(|&v| {
                !member[v as usize]
                    && g.neighbors(v)
                        .iter()
                        .all(|&u| !member[u as usize] || out_flag[u as usize])
            })
            .collect();
        if free.len() <= j {
            return None;
        }
        // Greedy + backtracking search for an independent subset of size
        // j + 1 inside `free`.
        fn grow(
            g: &CsrGraph,
            free: &[u32],
            start: usize,
            picked: &mut Vec<u32>,
            need: usize,
        ) -> bool {
            if picked.len() == need {
                return true;
            }
            for i in start..free.len() {
                let v = free[i];
                if picked.iter().all(|&u| !g.has_edge(u, v)) {
                    picked.push(v);
                    if grow(g, free, i + 1, picked, need) {
                        return true;
                    }
                    picked.pop();
                }
            }
            false
        }
        let mut picked = Vec::with_capacity(j + 1);
        if grow(g, &free, 0, &mut picked, j + 1) {
            Some((out, picked))
        } else {
            None
        }
    };
    if j == 0 {
        return combo(&[]);
    }
    if set.len() < j {
        return None;
    }
    // Iterate all C(|set|, j) combinations.
    for (i, slot) in indices.iter_mut().enumerate() {
        *slot = i;
    }
    loop {
        if let Some(w) = combo(&indices) {
            return Some(w);
        }
        // next combination
        let mut i = j;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            if indices[i] != i + set.len() - j {
                break;
            }
            if i == 0 {
                return None;
            }
        }
        indices[i] += 1;
        for x in i + 1..j {
            indices[x] = indices[x - 1] + 1;
        }
    }
}

/// Whether `set` is a k-maximal independent set (brute force; small
/// graphs only).
pub fn is_k_maximal(g: &CsrGraph, set: &[u32], k: usize) -> bool {
    if !is_maximal(g, set, &(0..g.num_vertices() as u32).collect::<Vec<_>>()) {
        return false;
    }
    (1..=k).all(|j| find_swap(g, set, j).is_none())
}

/// Compacts the live vertices of a [`DynamicGraph`] into a contiguous
/// [`CsrGraph`], returning the old→new id map (`u32::MAX` for dead
/// slots). Needed because `CsrGraph::from_dynamic` keeps dead slots as
/// isolated vertices, which would confuse maximality checks.
pub fn compact_live(g: &DynamicGraph) -> (CsrGraph, Vec<u32>) {
    let mut map = vec![u32::MAX; g.capacity()];
    let mut next = 0u32;
    for v in g.vertices() {
        map[v as usize] = next;
        next += 1;
    }
    let edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(u, v)| (map[u as usize], map[v as usize]))
        .collect();
    (CsrGraph::from_edges(next as usize, &edges), map)
}

/// k-maximality check against a [`DynamicGraph`], compacting dead slots
/// first. Brute force — test-sized graphs only.
pub fn is_k_maximal_dynamic(g: &DynamicGraph, set: &[u32], k: usize) -> bool {
    let (csr, map) = compact_live(g);
    let mapped: Vec<u32> = set.iter().map(|&v| map[v as usize]).collect();
    if mapped.contains(&u32::MAX) {
        return false; // solution contains a dead vertex
    }
    is_k_maximal(&csr, &mapped, k)
}

/// Exact independence number by exhaustive branch-and-bound over `u64`
/// bitmasks. Restricted to graphs with at most 64 vertices.
pub fn brute_force_alpha(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    assert!(n <= 64, "brute force supports at most 64 vertices");
    let mut nb = vec![0u64; n];
    for v in 0..n as u32 {
        for &u in g.neighbors(v) {
            nb[v as usize] |= 1u64 << u;
        }
    }
    fn rec(nb: &[u64], remaining: u64, current: usize, best: &mut usize) {
        if current + remaining.count_ones() as usize <= *best {
            return;
        }
        if remaining == 0 {
            *best = (*best).max(current);
            return;
        }
        let v = remaining.trailing_zeros() as usize;
        let bit = 1u64 << v;
        // Include v.
        rec(nb, remaining & !bit & !nb[v], current + 1, best);
        // Exclude v — only useful if v has neighbors in `remaining`.
        if nb[v] & remaining != 0 {
            rec(nb, remaining & !bit, current, best);
        }
    }
    let mut best = 0;
    let all = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    rec(&nb, all, 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn independence_checks() {
        let g = c5();
        assert!(is_independent(&g, &[0, 2]));
        assert!(!is_independent(&g, &[0, 1]));
        assert!(!is_independent(&g, &[0, 0]), "duplicates rejected");
        assert!(is_independent(&g, &[]));
    }

    #[test]
    fn maximality_checks() {
        let g = c5();
        let all: Vec<u32> = (0..5).collect();
        assert!(is_maximal(&g, &[0, 2], &all));
        assert!(!is_maximal(&g, &[0], &all), "can add 2 or 3");
    }

    #[test]
    fn brute_force_on_known_graphs() {
        assert_eq!(brute_force_alpha(&c5()), 2);
        let k4 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(brute_force_alpha(&k4), 1);
        let empty = CsrGraph::from_edges(6, &[]);
        assert_eq!(brute_force_alpha(&empty), 6);
        // Paper Fig. 1 graph: alpha = 4.
        let fig1 = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (3, 6),
                (4, 6),
                (5, 6),
                (6, 7),
            ],
        );
        assert_eq!(brute_force_alpha(&fig1), 4);
    }

    #[test]
    fn find_swap_detects_one_swap() {
        // Star: center in the set admits a 1-swap to the leaves.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let (out, inn) = find_swap(&g, &[0], 1).expect("1-swap must exist");
        assert_eq!(out, vec![0]);
        assert_eq!(inn.len(), 2);
        // Leaves form the optimum: no swap remains.
        assert!(find_swap(&g, &[1, 2, 3], 1).is_none());
    }

    #[test]
    fn find_swap_detects_two_swap() {
        // Two stars sharing leaves arranged so only a 2-swap improves:
        // C6 with chords is fiddly; instead use K'_3 (subdivided triangle):
        // original vertices {0,1,2} are 1-maximal, and because alpha = 3 a
        // 2-swap does not exist either (|I| = alpha). Use a path P5 where
        // {1, 3} is 1-maximal but 2-swap to {0, 2, 4} exists.
        let p5 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(find_swap(&p5, &[1, 3], 1).is_none(), "no 1-swap in P5");
        let (out, inn) = find_swap(&p5, &[1, 3], 2).expect("2-swap must exist");
        assert_eq!(out.len(), 2);
        assert_eq!(inn.len(), 3);
    }

    #[test]
    fn k_maximal_checks() {
        let p5 = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_k_maximal(&p5, &[1, 3], 1));
        assert!(!is_k_maximal(&p5, &[1, 3], 2));
        assert!(is_k_maximal(&p5, &[0, 2, 4], 2));
    }

    #[test]
    fn dynamic_variants_agree() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(is_independent_dynamic(&g, &[0, 2]));
        assert!(is_maximal_dynamic(&g, &[0, 2]));
        assert!(!is_maximal_dynamic(&g, &[0]));
    }
}
