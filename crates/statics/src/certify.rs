//! Scalable solution certificates.
//!
//! The brute-force checkers in [`crate::verify`] enumerate candidate
//! swaps and are only usable on test-sized graphs. This module certifies
//! the same properties at full scale, recomputing everything from the
//! graph (never trusting engine-internal state):
//!
//! * independence and maximality in O(n + m);
//! * 1-maximality via the paper's criterion (proof of Lemma 1): `I` is
//!   1-maximal iff for every `v ∈ I` the subgraph induced by
//!   `¯I₁(v) = {u ∈ N(v) : count(u) = 1}` is a clique —
//!   O(m + Σ_v |¯I₁(v)|²) with adjacency tests, near-linear on sparse
//!   graphs;
//! * when certification fails, a concrete *witness* (the violating edge,
//!   uncovered vertex, or improving swap) is returned, which turns every
//!   failed certificate into an actionable bug report.

use dynamis_graph::DynamicGraph;

/// Why a certificate was refused, with the witnessing structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two solution vertices are adjacent.
    NotIndependent(u32, u32),
    /// A vertex outside the solution has no solution neighbor.
    NotMaximal(u32),
    /// A 1-swap exists: remove `out`, insert the two vertices in `ins`.
    OneSwap {
        /// The solution vertex to remove.
        out: u32,
        /// Two non-adjacent neighbors of `out` with no other solution
        /// neighbor.
        ins: [u32; 2],
    },
    /// The solution contains a vertex the graph does not.
    DeadVertex(u32),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotIndependent(u, v) => write!(f, "solution contains edge ({u}, {v})"),
            Violation::NotMaximal(v) => write!(f, "vertex {v} could join the solution"),
            Violation::OneSwap { out, ins } => {
                write!(f, "1-swap: {out} out, {} and {} in", ins[0], ins[1])
            }
            Violation::DeadVertex(v) => write!(f, "solution vertex {v} is not in the graph"),
        }
    }
}

/// Recomputes `count(u) = |N(u) ∩ I|` for every vertex from scratch.
fn recount(g: &DynamicGraph, in_sol: &[bool]) -> Vec<u32> {
    let mut count = vec![0u32; g.capacity()];
    for v in g.vertices() {
        if in_sol[v as usize] {
            for u in g.neighbors(v) {
                count[u as usize] += 1;
            }
        }
    }
    count
}

fn solution_bitmap(g: &DynamicGraph, solution: &[u32]) -> Result<Vec<bool>, Violation> {
    let mut in_sol = vec![false; g.capacity()];
    for &v in solution {
        if !g.is_alive(v) {
            return Err(Violation::DeadVertex(v));
        }
        in_sol[v as usize] = true;
    }
    Ok(in_sol)
}

/// Certifies that `solution` is an independent set of `g`. O(n + m).
pub fn certify_independent(g: &DynamicGraph, solution: &[u32]) -> Result<(), Violation> {
    let in_sol = solution_bitmap(g, solution)?;
    for &v in solution {
        for u in g.neighbors(v) {
            if in_sol[u as usize] {
                return Err(Violation::NotIndependent(v.min(u), v.max(u)));
            }
        }
    }
    Ok(())
}

/// Certifies independence + maximality. O(n + m).
pub fn certify_maximal(g: &DynamicGraph, solution: &[u32]) -> Result<(), Violation> {
    let in_sol = solution_bitmap(g, solution)?;
    certify_independent(g, solution)?;
    let count = recount(g, &in_sol);
    for v in g.vertices() {
        if !in_sol[v as usize] && count[v as usize] == 0 {
            return Err(Violation::NotMaximal(v));
        }
    }
    Ok(())
}

/// Certifies independence + maximality + 1-maximality at full scale.
///
/// Uses the clique criterion from the proof of Lemma 1: a 1-swap at
/// `v ∈ I` exists iff two vertices of `¯I₁(v)` are non-adjacent. The
/// returned witness is the concrete improving swap when one exists.
pub fn certify_one_maximal(g: &DynamicGraph, solution: &[u32]) -> Result<(), Violation> {
    let in_sol = solution_bitmap(g, solution)?;
    certify_independent(g, solution)?;
    let count = recount(g, &in_sol);
    for v in g.vertices() {
        if !in_sol[v as usize] && count[v as usize] == 0 {
            return Err(Violation::NotMaximal(v));
        }
    }
    // ¯I₁ members, grouped by their unique solution parent.
    let mut bar1: Vec<Vec<u32>> = vec![Vec::new(); g.capacity()];
    for u in g.vertices() {
        if !in_sol[u as usize] && count[u as usize] == 1 {
            let parent = g
                .neighbors(u)
                .find(|&w| in_sol[w as usize])
                .expect("count == 1 guarantees a parent");
            bar1[parent as usize].push(u);
        }
    }
    for &v in solution {
        let members = &bar1[v as usize];
        for (i, &x) in members.iter().enumerate() {
            for &y in &members[i + 1..] {
                if !g.has_edge(x, y) {
                    return Err(Violation::OneSwap {
                        out: v,
                        ins: [x, y],
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_one_maximal_solution() {
        // P₅ with ends + middle: {0, 2, 4} is optimal, certainly 1-maximal.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        certify_one_maximal(&g, &[0, 2, 4]).unwrap();
        certify_maximal(&g, &[0, 2, 4]).unwrap();
        certify_independent(&g, &[0, 2, 4]).unwrap();
    }

    #[test]
    fn rejects_adjacent_solution_vertices() {
        let g = DynamicGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(
            certify_independent(&g, &[0, 1]),
            Err(Violation::NotIndependent(0, 1))
        );
    }

    #[test]
    fn rejects_non_maximal_solution() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let err = certify_maximal(&g, &[0]).unwrap_err();
        assert!(matches!(err, Violation::NotMaximal(v) if v == 2 || v == 3));
    }

    #[test]
    fn finds_the_one_swap_witness_on_a_star() {
        // Star center in the solution: leaves form an independent ¯I₁(0),
        // so any two of them witness a 1-swap.
        let g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let err = certify_one_maximal(&g, &[0]).unwrap_err();
        match err {
            Violation::OneSwap { out, ins } => {
                assert_eq!(out, 0);
                assert_ne!(ins[0], ins[1]);
                assert!(!g.has_edge(ins[0], ins[1]));
            }
            other => panic!("expected OneSwap, got {other}"),
        }
    }

    #[test]
    fn clique_neighborhood_is_accepted() {
        // v = 0 with ¯I₁(0) = {1, 2} forming an edge: no 1-swap.
        let g = DynamicGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        certify_one_maximal(&g, &[0]).unwrap();
    }

    #[test]
    fn count_two_vertices_do_not_trigger_swaps() {
        // 1 and 3 both see two solution vertices {0, 4}: not in ¯I₁.
        // Vertex 2 is isolated and must be in any maximal solution.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 4), (0, 3), (3, 4)]);
        certify_one_maximal(&g, &[0, 2, 4]).unwrap();
    }

    #[test]
    fn rejects_dead_vertices() {
        let mut g = DynamicGraph::from_edges(3, &[(0, 1)]);
        g.remove_vertex(2).unwrap();
        assert_eq!(certify_independent(&g, &[2]), Err(Violation::DeadVertex(2)));
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        use crate::verify::is_k_maximal_dynamic;
        use dynamis_graph::DynamicGraph;
        let mut state = 0x1234_5678_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 6 + (rng() % 10) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng() % 3 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let g = DynamicGraph::from_edges(n, &edges);
            // Greedy maximal set by ascending id.
            let mut taken = vec![false; n];
            let mut blocked = vec![false; n];
            let mut solution = Vec::new();
            for v in 0..n as u32 {
                if !blocked[v as usize] {
                    taken[v as usize] = true;
                    solution.push(v);
                    for u in g.neighbors(v) {
                        blocked[u as usize] = true;
                    }
                    blocked[v as usize] = true;
                }
            }
            let fast = certify_one_maximal(&g, &solution).is_ok();
            let brute = is_k_maximal_dynamic(&g, &solution, 1);
            assert_eq!(fast, brute, "round {round}: certifiers disagree");
        }
    }

    #[test]
    fn display_messages_name_the_witness() {
        assert!(Violation::NotIndependent(3, 7).to_string().contains('7'));
        assert!(Violation::NotMaximal(9).to_string().contains('9'));
        assert!(Violation::OneSwap {
            out: 1,
            ins: [2, 3]
        }
        .to_string()
        .contains("1-swap"));
        assert!(Violation::DeadVertex(5).to_string().contains('5'));
    }
}
