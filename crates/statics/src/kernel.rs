//! Reduction kernel shared by the exact branch-and-reduce solver and the
//! reducing–peeling heuristic.
//!
//! Implements the classic MaxIS-preserving reductions (as in VCSolver
//! \[29\] and the reducing–peeling framework \[15\]):
//!
//! * **degree-0 / degree-1** — isolated and pendant vertices are always in
//!   some maximum independent set;
//! * **degree-2 triangle** — a degree-2 vertex with adjacent neighbors is
//!   in some MaxIS;
//! * **degree-2 folding** — a degree-2 vertex with non-adjacent neighbors
//!   `u, w` is contracted: the merged vertex stands for "take both u and
//!   w", contributing `+1` to α either way;
//! * **domination** — if `N[u] ⊆ N[v]` for an edge `(u, v)`, some MaxIS
//!   avoids `v`, so `v` is excluded.
//!
//! The kernel records a fold log so the final solution can be mapped back
//! to original vertex ids.

use dynamis_graph::hash::FxHashSet;
use dynamis_graph::CsrGraph;
use std::collections::VecDeque;

/// One degree-2 fold: `v` was contracted with non-adjacent neighbors
/// `u, w` into a merged vertex reusing slot `v`.
#[derive(Debug, Clone, Copy)]
pub struct Fold {
    pub v: u32,
    pub u: u32,
    pub w: u32,
}

/// Mutable reduction state over (a copy of) a graph.
#[derive(Debug, Clone)]
pub struct Kernel {
    adj: Vec<FxHashSet<u32>>,
    alive: Vec<bool>,
    n_alive: usize,
    /// Vertices decided IN (kernel-level ids; folds may remap them later).
    pub taken: Vec<u32>,
    /// Fold log in application order.
    pub folds: Vec<Fold>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
}

impl Kernel {
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut adj = Vec::with_capacity(n);
        for v in 0..n as u32 {
            adj.push(g.neighbors(v).iter().copied().collect::<FxHashSet<u32>>());
        }
        Kernel {
            adj,
            alive: vec![true; n],
            n_alive: n,
            taken: Vec::new(),
            folds: Vec::new(),
            queue: VecDeque::new(),
            in_queue: vec![false; n],
        }
    }

    #[inline]
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    #[inline]
    pub fn is_alive(&self, v: u32) -> bool {
        self.alive[v as usize]
    }

    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// α contribution already locked in: every taken vertex plus one per
    /// fold.
    #[inline]
    pub fn score(&self) -> usize {
        self.taken.len() + self.folds.len()
    }

    /// Alive vertices (O(capacity) scan).
    pub fn alive_vertices(&self) -> impl Iterator<Item = u32> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }

    fn touch(&mut self, v: u32) {
        if self.alive[v as usize] && !self.in_queue[v as usize] {
            self.in_queue[v as usize] = true;
            self.queue.push_back(v);
        }
    }

    /// Removes `v` from the graph (decides it OUT unless called from
    /// `take`).
    pub fn exclude(&mut self, v: u32) {
        debug_assert!(self.alive[v as usize]);
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        for &u in &nbrs {
            self.adj[u as usize].remove(&v);
            self.touch(u);
        }
        self.alive[v as usize] = false;
        self.n_alive -= 1;
    }

    /// Decides `v` IN: removes its whole closed neighborhood.
    pub fn take(&mut self, v: u32) {
        debug_assert!(self.alive[v as usize]);
        self.taken.push(v);
        let nbrs: Vec<u32> = self.adj[v as usize].iter().copied().collect();
        self.exclude(v);
        for u in nbrs {
            if self.alive[u as usize] {
                self.exclude(u);
            }
        }
    }

    /// Degree-2 fold of `v` with non-adjacent neighbors `u, w`; the merged
    /// vertex reuses slot `v`.
    fn fold(&mut self, v: u32, u: u32, w: u32) {
        debug_assert!(!self.adj[u as usize].contains(&w));
        self.folds.push(Fold { v, u, w });
        let mut merged: FxHashSet<u32> = FxHashSet::default();
        for &x in self.adj[u as usize]
            .iter()
            .chain(self.adj[w as usize].iter())
        {
            if x != v {
                merged.insert(x);
            }
        }
        // Detach u and w entirely.
        for side in [u, w] {
            let nbrs = std::mem::take(&mut self.adj[side as usize]);
            for &x in &nbrs {
                self.adj[x as usize].remove(&side);
            }
            self.alive[side as usize] = false;
            self.n_alive -= 1;
        }
        // Rewire slot v as the merged vertex.
        self.adj[v as usize].clear();
        for &x in &merged {
            self.adj[x as usize].insert(v);
            self.adj[v as usize].insert(x);
            self.touch(x);
        }
        self.touch(v);
    }

    /// Whether some neighbor `u` of `v` satisfies `N[u] ⊆ N[v]`
    /// (domination ⇒ `v` can be excluded).
    fn is_dominated(&self, v: u32) -> bool {
        let dv = self.adj[v as usize].len();
        for &u in &self.adj[v as usize] {
            if self.adj[u as usize].len() > dv {
                continue;
            }
            if self.adj[u as usize]
                .iter()
                .all(|&x| x == v || self.adj[v as usize].contains(&x))
            {
                return true;
            }
        }
        false
    }

    /// Applies all reductions to a fixed point.
    pub fn reduce(&mut self) {
        // Seed with every alive vertex on first call / after branching.
        let seeds: Vec<u32> = self.alive_vertices().collect();
        for v in seeds {
            self.touch(v);
        }
        while let Some(v) = self.queue.pop_front() {
            self.in_queue[v as usize] = false;
            if !self.alive[v as usize] {
                continue;
            }
            match self.adj[v as usize].len() {
                0 | 1 => {
                    self.take(v);
                    continue;
                }
                2 => {
                    let mut it = self.adj[v as usize].iter();
                    let u = *it.next().unwrap();
                    let w = *it.next().unwrap();
                    if self.adj[u as usize].contains(&w) {
                        self.take(v);
                    } else {
                        self.fold(v, u, w);
                    }
                    continue;
                }
                _ => {}
            }
            if self.is_dominated(v) {
                self.exclude(v);
            }
        }
    }

    /// Maps a set of kernel-level choices back to original vertex ids by
    /// unwinding the fold log.
    pub fn reconstruct(&self, kernel_choice: &[u32]) -> Vec<u32> {
        let mut chosen: FxHashSet<u32> = self.taken.iter().copied().collect();
        chosen.extend(kernel_choice.iter().copied());
        for f in self.folds.iter().rev() {
            if chosen.remove(&f.v) {
                chosen.insert(f.u);
                chosen.insert(f.w);
            } else {
                chosen.insert(f.v);
            }
        }
        let mut out: Vec<u32> = chosen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Upper bound on α of the remaining kernel: `n_alive − |M|` for a
    /// greedy maximal matching `M` (every matched edge kills one vertex).
    pub fn alpha_upper_bound(&self) -> usize {
        let mut matched = vec![false; self.adj.len()];
        let mut pairs = 0usize;
        for v in self.alive_vertices() {
            if matched[v as usize] {
                continue;
            }
            if let Some(&u) = self.adj[v as usize].iter().find(|&&u| !matched[u as usize]) {
                matched[v as usize] = true;
                matched[u as usize] = true;
                pairs += 1;
            }
        }
        self.n_alive - pairs
    }

    /// The alive vertex of maximum degree, if any.
    pub fn max_degree_vertex(&self) -> Option<u32> {
        self.alive_vertices()
            .max_by_key(|&v| self.adj[v as usize].len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_alpha, is_independent};

    #[test]
    fn pendant_chain_fully_reduces() {
        // Path P6: reductions alone solve it (alpha = 3).
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut k = Kernel::from_csr(&g);
        k.reduce();
        assert_eq!(k.n_alive(), 0, "paths reduce completely");
        let sol = k.reconstruct(&[]);
        assert_eq!(sol.len(), 3);
        assert!(is_independent(&g, &sol));
        assert_eq!(sol.len(), brute_force_alpha(&g));
    }

    #[test]
    fn triangle_rule() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut k = Kernel::from_csr(&g);
        k.reduce();
        assert_eq!(k.n_alive(), 0);
        assert_eq!(k.reconstruct(&[]).len(), 1);
    }

    #[test]
    fn folding_preserves_alpha_on_c5() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut k = Kernel::from_csr(&g);
        k.reduce();
        assert_eq!(k.n_alive(), 0, "C5 reduces by folding");
        let sol = k.reconstruct(&[]);
        assert!(is_independent(&g, &sol));
        assert_eq!(sol.len(), 2);
    }

    #[test]
    fn domination_fires_on_dominated_vertex() {
        // v=0 adjacent to u=1 where N[1] ⊆ N[0]: 0—1, 0—2, 1—2 plus 0—3.
        // Vertex 0 dominates 1 (N[1]={0,1,2} ⊆ N[0]={0,1,2,3}) ⇒ 0 excluded.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (0, 3)]);
        let mut k = Kernel::from_csr(&g);
        k.reduce();
        let sol = k.reconstruct(&[]);
        assert!(is_independent(&g, &sol));
        assert_eq!(sol.len(), brute_force_alpha(&g)); // == 2 ({3, 1} or {3, 2})
    }

    #[test]
    fn upper_bound_is_valid_on_random_graphs() {
        use dynamis_graph::DynamicGraph;
        for seed in 0..5u64 {
            let n = 18;
            // light deterministic random graph
            let mut edges = Vec::new();
            let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if s % 5 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let dg = DynamicGraph::from_edges(n, &edges);
            let g = CsrGraph::from_dynamic(&dg);
            let alpha = brute_force_alpha(&g);
            let k = Kernel::from_csr(&g);
            assert!(
                k.alpha_upper_bound() >= alpha,
                "matching bound must be an upper bound"
            );
        }
    }

    #[test]
    fn score_equals_reconstruction_size() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let mut k = Kernel::from_csr(&g);
        k.reduce();
        assert_eq!(k.score(), k.reconstruct(&[]).len());
    }
}
