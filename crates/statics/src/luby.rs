//! Luby's randomized maximal independent set.
//!
//! Each round every live vertex draws a random priority; local maxima
//! join the solution and their closed neighborhoods are removed. The
//! expected number of rounds is O(log n) — the classic parallel MIS
//! algorithm, included here as a seed-diverse *initial solution*
//! provider: unlike the min-degree greedy it produces a different
//! maximal set per seed, which the experiment harness uses to test the
//! engines' sensitivity to initial-solution quality.

use dynamis_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of [`luby_mis`]: the set plus the number of rounds it took.
#[derive(Debug, Clone)]
pub struct LubyResult {
    /// A maximal independent set, sorted by vertex id.
    pub solution: Vec<u32>,
    /// Synchronous rounds executed.
    pub rounds: u32,
}

/// Runs Luby's algorithm with the given seed.
pub fn luby_mis(g: &CsrGraph, seed: u64) -> LubyResult {
    let n = g.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed);
    // 0 = undecided, 1 = in solution, 2 = removed.
    let mut state = vec![0u8; n];
    let mut priority = vec![0u64; n];
    let mut undecided: Vec<u32> = (0..n as u32).collect();
    let mut solution = Vec::new();
    let mut rounds = 0u32;
    while !undecided.is_empty() {
        rounds += 1;
        for &v in &undecided {
            priority[v as usize] = rng.gen();
        }
        // A vertex joins when it beats every undecided neighbor; ties on
        // the 64-bit priority are broken by id and are astronomically rare.
        let mut joined = Vec::new();
        'vert: for &v in &undecided {
            for &u in g.neighbors(v) {
                if state[u as usize] == 0 && (priority[u as usize], u) > (priority[v as usize], v) {
                    continue 'vert;
                }
            }
            joined.push(v);
        }
        for &v in &joined {
            state[v as usize] = 1;
            solution.push(v);
            for &u in g.neighbors(v) {
                if state[u as usize] == 0 {
                    state[u as usize] = 2;
                }
            }
        }
        undecided.retain(|&v| state[v as usize] == 0);
    }
    solution.sort_unstable();
    LubyResult { solution, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_independent, is_maximal};

    fn universe(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn produces_maximal_independent_sets() {
        let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        for seed in 0..10 {
            let r = luby_mis(&g, seed);
            assert!(is_independent(&g, &r.solution), "seed {seed}");
            assert!(is_maximal(&g, &r.solution, &universe(8)), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_diverse_across_seeds() {
        let mut edges = Vec::new();
        for u in 0..30u32 {
            for v in u + 1..30 {
                if (u * 31 + v) % 7 == 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(30, &edges);
        assert_eq!(luby_mis(&g, 5).solution, luby_mis(&g, 5).solution);
        let distinct: std::collections::BTreeSet<Vec<u32>> =
            (0..20).map(|s| luby_mis(&g, s).solution).collect();
        assert!(distinct.len() > 1, "different seeds explore different MIS");
    }

    #[test]
    fn complete_graph_takes_one_vertex() {
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for v in u + 1..12 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(12, &edges);
        let r = luby_mis(&g, 3);
        assert_eq!(r.solution.len(), 1);
    }

    #[test]
    fn edgeless_graph_takes_everything_in_one_round() {
        let g = CsrGraph::from_edges(9, &[]);
        let r = luby_mis(&g, 0);
        assert_eq!(r.solution.len(), 9);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let r = luby_mis(&g, 0);
        assert!(r.solution.is_empty());
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn rounds_stay_logarithmic_on_random_graphs() {
        let mut state = 0x9e3779b9u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 400u32;
        let mut edges = Vec::new();
        for _ in 0..2000 {
            let (u, v) = ((rng() % n as u64) as u32, (rng() % n as u64) as u32);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        let r = luby_mis(&g, 7);
        assert!(is_independent(&g, &r.solution));
        assert!(is_maximal(&g, &r.solution, &universe(n as usize)));
        // log₂ 400 ≈ 8.6; the constant is small in practice. A loose cap
        // still catches accidental quadratic behavior.
        assert!(r.rounds <= 30, "took {} rounds", r.rounds);
    }
}
