//! Reducing–peeling — Chang, Li & Zhang, *Computing a near-maximum
//! independent set in linear time by reducing–peeling* (reference \[15\]).
//!
//! The algorithm alternates **exact** reductions (degree-0/1, degree-2,
//! domination — all MaxIS-preserving) with an **inexact** peel: when no
//! reduction applies, the highest-degree vertex is discarded on the
//! heuristic that hubs rarely belong to a maximum independent set. A final
//! pass re-inserts any peeled vertex that ended up with no chosen
//! neighbor, so the result is always maximal.

use crate::kernel::Kernel;
use dynamis_graph::CsrGraph;

/// Runs reducing–peeling, returning a maximal independent set (sorted).
pub fn reducing_peeling(g: &CsrGraph) -> Vec<u32> {
    let mut kernel = Kernel::from_csr(g);
    loop {
        kernel.reduce();
        match kernel.max_degree_vertex() {
            Some(v) => kernel.exclude(v), // inexact peel
            None => break,
        }
    }
    let mut solution = kernel.reconstruct(&[]);
    // Maximality repair: peeled vertices may be insertable.
    let mut member = vec![false; g.num_vertices()];
    for &v in &solution {
        member[v as usize] = true;
    }
    for v in 0..g.num_vertices() as u32 {
        if !member[v as usize] && g.neighbors(v).iter().all(|&u| !member[u as usize]) {
            member[v as usize] = true;
            solution.push(v);
        }
    }
    solution.sort_unstable();
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_alpha, is_independent, is_maximal};

    #[test]
    fn peeling_is_maximal_independent() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (3, 6),
                (4, 6),
                (5, 6),
                (6, 7),
            ],
        );
        let s = reducing_peeling(&g);
        assert!(is_independent(&g, &s));
        let all: Vec<u32> = (0..8).collect();
        assert!(is_maximal(&g, &s, &all));
    }

    #[test]
    fn peeling_solves_trees_exactly() {
        // Trees reduce fully: no peel is ever needed.
        let g = CsrGraph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let s = reducing_peeling(&g);
        assert_eq!(s.len(), brute_force_alpha(&g));
    }

    #[test]
    fn peeling_is_near_optimal_on_random_graphs() {
        use dynamis_graph::DynamicGraph;
        let mut st = 0xabcd_1234u64;
        for _ in 0..6 {
            let n = 18;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    st ^= st << 13;
                    st ^= st >> 7;
                    st ^= st << 17;
                    if st.is_multiple_of(4) {
                        edges.push((u, v));
                    }
                }
            }
            let g = CsrGraph::from_dynamic(&DynamicGraph::from_edges(n, &edges));
            let s = reducing_peeling(&g);
            assert!(is_independent(&g, &s));
            let opt = brute_force_alpha(&g);
            assert!(s.len() + 2 >= opt, "peeling {} vs optimum {opt}", s.len());
        }
    }
}
