//! # dynamis-static — static MaxIS algorithms
//!
//! The paper's evaluation leans on three static solvers, all reimplemented
//! here from their published descriptions:
//!
//! * [`greedy`] — min-degree greedy maximal independent set, the standard
//!   initializer.
//! * [`arw`] — the Andrade–Resende–Werneck iterated local search
//!   (reference \[14\]); supplies initial solutions and the "best result"
//!   column for the hard graphs of Table IV.
//! * [`exact`] — branch-and-reduce exact MaxIS, standing in for VCSolver
//!   (reference \[29\]); supplies the independence numbers that Tables II
//!   and III measure gaps against.
//! * [`peeling`] — the reducing–peeling heuristic of Chang et al.
//!   (reference \[15\]), included as the related-work extension.
//! * [`luby`] — Luby's randomized maximal independent set, a seed-diverse
//!   initial-solution provider.
//! * [`kernel`] — the shared reduction kernel (degree-0/1, degree-2
//!   triangle and folding) that both the exact solver and the peeler
//!   build on, exposed for downstream kernelization.
//! * [`verify`] — independence/maximality/k-maximality checkers and a
//!   brute-force optimum for small graphs, used across the test suites.
//! * [`certify`] — the same properties certified at full scale with
//!   concrete violation witnesses (the paper's clique criterion for
//!   1-maximality); [`par_certify`] splits the check across scoped
//!   threads for massive graphs.
//!
//! All solvers consume an immutable [`dynamis_graph::CsrGraph`].

pub mod arw;
pub mod certify;
pub mod exact;
pub mod greedy;
pub mod kernel;
pub mod luby;
pub mod par_certify;
pub mod peeling;
pub mod verify;

pub use arw::{arw_local_search, ArwConfig};
pub use certify::{certify_independent, certify_maximal, certify_one_maximal, Violation};
pub use exact::{solve_exact, ExactConfig, ExactResult};
pub use greedy::greedy_mis;
pub use kernel::Kernel;
pub use luby::{luby_mis, LubyResult};
pub use par_certify::certify_one_maximal_par;
pub use peeling::reducing_peeling;
