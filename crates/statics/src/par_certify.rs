//! Parallel certification for massive graphs.
//!
//! The checks of [`crate::certify`] are embarrassingly parallel: each
//! solution vertex (independence, clique criterion) or non-solution
//! vertex (maximality) is examined against read-only shared state. This
//! module splits the work across scoped `std::thread` workers, reporting
//! the first violation found — on multi-million-vertex graphs certification
//! drops from seconds to fractions of a second, making it cheap enough to
//! run inside production monitoring loops.

use crate::certify::Violation;
use dynamis_graph::DynamicGraph;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Shared first-violation slot: threads bail out as soon as anyone
/// reports.
struct Report {
    found: AtomicBool,
    slot: Mutex<Option<Violation>>,
}

impl Report {
    fn new() -> Self {
        Report {
            found: AtomicBool::new(false),
            slot: Mutex::new(None),
        }
    }

    fn submit(&self, v: Violation) {
        if !self.found.swap(true, Ordering::AcqRel) {
            *self.slot.lock().expect("report lock") = Some(v);
        }
    }

    fn hit(&self) -> bool {
        self.found.load(Ordering::Acquire)
    }

    fn into_result(self) -> Result<(), Violation> {
        match self.slot.into_inner().expect("report lock") {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }
}

fn chunkify(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1)).max(1)
}

/// Parallel version of [`crate::certify::certify_one_maximal`]: same
/// result, split across `threads` scoped workers.
///
/// Any violation may be reported when several exist (thread timing picks
/// the winner), but Ok/Err agrees exactly with the sequential certifier.
pub fn certify_one_maximal_par(
    g: &DynamicGraph,
    solution: &[u32],
    threads: usize,
) -> Result<(), Violation> {
    // Shared read-only state, built sequentially (linear, cheap).
    let mut in_sol = vec![false; g.capacity()];
    for &v in solution {
        if !g.is_alive(v) {
            return Err(Violation::DeadVertex(v));
        }
        in_sol[v as usize] = true;
    }
    let mut count = vec![0u32; g.capacity()];
    for &v in solution {
        for u in g.neighbors(v) {
            count[u as usize] += 1;
        }
    }
    // ¯I₁ grouped by parent (parents of count-1 outsiders).
    let mut bar1: Vec<Vec<u32>> = vec![Vec::new(); g.capacity()];
    for u in g.vertices() {
        if !in_sol[u as usize] && count[u as usize] == 1 {
            let parent = g
                .neighbors(u)
                .find(|&w| in_sol[w as usize])
                .expect("count == 1 has a parent");
            bar1[parent as usize].push(u);
        }
    }

    let report = Report::new();
    let all: Vec<u32> = g.vertices().collect();
    std::thread::scope(|s| {
        // Independence + clique criterion over solution chunks.
        for chunk in solution.chunks(chunkify(solution.len(), threads)) {
            let (in_sol, bar1, report) = (&in_sol, &bar1, &report);
            s.spawn(move || {
                for &v in chunk {
                    if report.hit() {
                        return;
                    }
                    for u in g.neighbors(v) {
                        if in_sol[u as usize] {
                            report.submit(Violation::NotIndependent(v.min(u), v.max(u)));
                            return;
                        }
                    }
                    let members = &bar1[v as usize];
                    for (i, &x) in members.iter().enumerate() {
                        for &y in &members[i + 1..] {
                            if !g.has_edge(x, y) {
                                report.submit(Violation::OneSwap {
                                    out: v,
                                    ins: [x, y],
                                });
                                return;
                            }
                        }
                    }
                }
            });
        }
        // Maximality over all-vertex chunks.
        for chunk in all.chunks(chunkify(all.len(), threads)) {
            let (in_sol, count, report) = (&in_sol, &count, &report);
            s.spawn(move || {
                for &v in chunk {
                    if report.hit() {
                        return;
                    }
                    if !in_sol[v as usize] && count[v as usize] == 0 {
                        report.submit(Violation::NotMaximal(v));
                        return;
                    }
                }
            });
        }
    });
    report.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify_one_maximal;

    fn star(n: u32) -> DynamicGraph {
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (0, i)).collect();
        DynamicGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn parallel_agrees_with_sequential_on_good_solutions() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let sol = vec![0, 2, 4];
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                certify_one_maximal_par(&g, &sol, threads).is_ok(),
                certify_one_maximal(&g, &sol).is_ok(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_finds_violations() {
        let g = star(6);
        let err = certify_one_maximal_par(&g, &[0], 4).unwrap_err();
        assert!(matches!(err, Violation::OneSwap { out: 0, .. }));
        let err = certify_one_maximal_par(&g, &[0, 1], 4).unwrap_err();
        assert!(matches!(err, Violation::NotIndependent(0, 1)));
        let err = certify_one_maximal_par(&DynamicGraph::from_edges(3, &[]), &[0], 2).unwrap_err();
        assert!(matches!(err, Violation::NotMaximal(_)));
    }

    #[test]
    fn agreement_fuzz_parallel_vs_sequential() {
        let mut state = 0x600dcafe_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n = 8 + (rng() % 20) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if rng() % 4 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let g = DynamicGraph::from_edges(n, &edges);
            // Greedy maximal set — sometimes 1-maximal, sometimes not.
            let mut blocked = vec![false; n];
            let mut sol = Vec::new();
            for v in 0..n as u32 {
                if !blocked[v as usize] {
                    sol.push(v);
                    blocked[v as usize] = true;
                    for u in g.neighbors(v) {
                        blocked[u as usize] = true;
                    }
                }
            }
            let seq = certify_one_maximal(&g, &sol).is_ok();
            for threads in [1, 3, 7] {
                assert_eq!(
                    certify_one_maximal_par(&g, &sol, threads).is_ok(),
                    seq,
                    "round {round}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn single_thread_and_empty_inputs() {
        let g = DynamicGraph::new();
        certify_one_maximal_par(&g, &[], 1).unwrap();
        let g = DynamicGraph::from_edges(1, &[]);
        certify_one_maximal_par(&g, &[0], 16).unwrap();
    }
}
