//! ARW iterated local search — Andrade, Resende & Werneck, *Fast local
//! search for the maximum independent set problem* (reference \[14\]).
//!
//! The search alternates two phases:
//!
//! 1. **(1,2)-swaps to local optimality** — for every solution vertex `v`,
//!    if two of its 1-tight neighbors (outside vertices whose only
//!    solution neighbor is `v`) are non-adjacent, replace `v` with that
//!    pair. This is exactly the paper's 1-swap, so an ARW-converged
//!    solution is 1-maximal.
//! 2. **perturbation** — force a random outside vertex into the solution,
//!    evict its solution neighbors, re-maximalize, and continue; the best
//!    solution ever seen is retained.

use dynamis_graph::collections::StampSet;
use dynamis_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Iteration budget for [`arw_local_search`].
#[derive(Debug, Clone, Copy)]
pub struct ArwConfig {
    /// Number of perturbation rounds (0 = plain local search).
    pub perturbations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArwConfig {
    fn default() -> Self {
        ArwConfig {
            perturbations: 40,
            seed: 0x5eed,
        }
    }
}

struct LocalSearch<'a> {
    g: &'a CsrGraph,
    in_sol: Vec<bool>,
    /// Number of solution neighbors for every vertex.
    tight: Vec<u32>,
    size: usize,
    stamp: StampSet,
}

impl<'a> LocalSearch<'a> {
    fn new(g: &'a CsrGraph, initial: &[u32]) -> Self {
        let n = g.num_vertices();
        let mut s = LocalSearch {
            g,
            in_sol: vec![false; n],
            tight: vec![0; n],
            size: 0,
            stamp: StampSet::with_capacity(n),
        };
        for &v in initial {
            s.insert(v);
        }
        s
    }

    fn insert(&mut self, v: u32) {
        debug_assert!(!self.in_sol[v as usize]);
        self.in_sol[v as usize] = true;
        self.size += 1;
        for &u in self.g.neighbors(v) {
            self.tight[u as usize] += 1;
        }
    }

    fn remove(&mut self, v: u32) {
        debug_assert!(self.in_sol[v as usize]);
        self.in_sol[v as usize] = false;
        self.size -= 1;
        for &u in self.g.neighbors(v) {
            self.tight[u as usize] -= 1;
        }
    }

    /// Inserts every free vertex (tight = 0, not in solution), scanning
    /// only the given candidates.
    fn maximalize_over(&mut self, candidates: &[u32]) {
        for &v in candidates {
            if !self.in_sol[v as usize] && self.tight[v as usize] == 0 {
                self.insert(v);
            }
        }
    }

    /// Tries to 2-improve around `v`; returns true if a swap happened.
    fn try_two_improvement(&mut self, v: u32) -> bool {
        if !self.in_sol[v as usize] {
            return false;
        }
        // 1-tight neighbors of v.
        let one_tight: Vec<u32> = self
            .g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.tight[u as usize] == 1)
            .collect();
        if one_tight.len() < 2 {
            return false;
        }
        self.stamp.clear();
        for &u in &one_tight {
            self.stamp.mark(u);
        }
        // Find u whose neighborhood misses some other 1-tight vertex.
        for &u in &one_tight {
            let adjacent_inside = self
                .g
                .neighbors(u)
                .iter()
                .filter(|&&w| self.stamp.is_marked(w))
                .count();
            if adjacent_inside + 1 < one_tight.len() {
                // Locate a concrete non-neighbor w.
                self.stamp.clear();
                for &w in self.g.neighbors(u) {
                    self.stamp.mark(w);
                }
                let w = one_tight
                    .iter()
                    .copied()
                    .find(|&w| w != u && !self.stamp.is_marked(w))
                    .expect("counting proved a non-neighbor exists");
                self.remove(v);
                self.insert(u);
                self.insert(w);
                // Freed vertices adjacent to v may now be insertable.
                let freed: Vec<u32> = self.g.neighbors(v).to_vec();
                self.maximalize_over(&freed);
                return true;
            }
        }
        false
    }

    /// Runs (1,2)-swaps until the solution is 1-maximal.
    fn descend_to_local_optimum(&mut self) {
        let mut queue: Vec<u32> = (0..self.g.num_vertices() as u32)
            .filter(|&v| self.in_sol[v as usize])
            .collect();
        while let Some(v) = queue.pop() {
            if self.try_two_improvement(v) {
                // Re-examine solution vertices near the change.
                for &u in self.g.neighbors(v) {
                    for &w in self.g.neighbors(u) {
                        if self.in_sol[w as usize] {
                            queue.push(w);
                        }
                    }
                }
            }
        }
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.g.num_vertices() as u32)
            .filter(|&v| self.in_sol[v as usize])
            .collect()
    }

    /// Force `x` into the solution, evicting its solution neighbors.
    fn force(&mut self, x: u32) {
        if self.in_sol[x as usize] {
            return;
        }
        let evict: Vec<u32> = self
            .g
            .neighbors(x)
            .iter()
            .copied()
            .filter(|&u| self.in_sol[u as usize])
            .collect();
        for u in evict.iter().copied() {
            self.remove(u);
        }
        self.insert(x);
        for u in evict {
            let freed: Vec<u32> = self.g.neighbors(u).to_vec();
            self.maximalize_over(&freed);
            if !self.in_sol[u as usize] && self.tight[u as usize] == 0 {
                self.insert(u);
            }
        }
    }
}

/// Runs ARW iterated local search starting from the min-degree greedy
/// solution. Returns the best (largest) solution found, sorted.
pub fn arw_local_search(g: &CsrGraph, cfg: ArwConfig) -> Vec<u32> {
    let initial = crate::greedy::greedy_mis(g);
    arw_from(g, &initial, cfg)
}

/// ARW starting from a caller-supplied independent set.
pub fn arw_from(g: &CsrGraph, initial: &[u32], cfg: ArwConfig) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut ls = LocalSearch::new(g, initial);
    ls.descend_to_local_optimum();
    let mut best = ls.solution();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.perturbations {
        let x = rng.gen_range(0..n as u32);
        ls.force(x);
        ls.descend_to_local_optimum();
        if ls.size > best.len() {
            best = ls.solution();
        }
    }
    best.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_alpha, is_independent, is_k_maximal};

    #[test]
    fn arw_reaches_one_maximality() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (3, 6),
                (4, 6),
                (5, 6),
                (6, 7),
            ],
        );
        let s = arw_local_search(&g, ArwConfig::default());
        assert!(is_independent(&g, &s));
        assert!(is_k_maximal(&g, &s, 1), "ARW output must be 1-maximal");
    }

    #[test]
    fn arw_escapes_star_trap() {
        // Start from the center of a star: a single 2-improvement fixes it.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = arw_from(
            &g,
            &[0],
            ArwConfig {
                perturbations: 0,
                seed: 1,
            },
        );
        assert_eq!(s, vec![1, 2, 3, 4]);
    }

    #[test]
    fn arw_matches_optimum_on_small_random_graphs() {
        use dynamis_graph::DynamicGraph;
        let mut s = 0xfeed_5eedu64;
        for _ in 0..8 {
            let n = 14;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    if s.is_multiple_of(4) {
                        edges.push((u, v));
                    }
                }
            }
            let g = CsrGraph::from_dynamic(&DynamicGraph::from_edges(n, &edges));
            let found = arw_local_search(
                &g,
                ArwConfig {
                    perturbations: 60,
                    seed: s,
                },
            )
            .len();
            let opt = brute_force_alpha(&g);
            assert!(
                found >= opt - 1,
                "ARW found {found}, optimum {opt} — should be near-optimal with perturbation"
            );
        }
    }

    #[test]
    fn arw_on_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(arw_local_search(&g, ArwConfig::default()).is_empty());
    }
}
