//! Min-degree greedy maximal independent set.

use dynamis_graph::CsrGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy MIS: repeatedly takes a minimum-residual-degree vertex and
/// deletes its closed neighborhood. Implemented with a lazy binary heap;
/// stale entries are skipped at pop time.
///
/// This is the classical `O(m log n)` initializer whose output the local
/// search and the dynamic engines refine.
pub fn greedy_mis(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let mut removed = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = (0..n as u32)
        .map(|v| Reverse((deg[v as usize], v)))
        .collect();
    let mut solution = Vec::new();
    while let Some(Reverse((d, v))) = heap.pop() {
        if removed[v as usize] || d != deg[v as usize] {
            continue; // stale entry
        }
        solution.push(v);
        removed[v as usize] = true;
        for &u in g.neighbors(v) {
            if removed[u as usize] {
                continue;
            }
            removed[u as usize] = true;
            // Neighbors of the removed neighbor lose one residual degree.
            for &w in g.neighbors(u) {
                if !removed[w as usize] {
                    deg[w as usize] -= 1;
                    heap.push(Reverse((deg[w as usize], w)));
                }
            }
        }
    }
    solution.sort_unstable();
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_independent, is_maximal};

    #[test]
    fn greedy_output_is_maximal_independent() {
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (3, 6),
                (4, 6),
                (5, 6),
                (6, 7),
            ],
        );
        let s = greedy_mis(&g);
        assert!(is_independent(&g, &s));
        let all: Vec<u32> = (0..8).collect();
        assert!(is_maximal(&g, &s, &all));
        // Min-degree greedy finds the optimum (4) on the paper's Fig. 1.
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn greedy_on_star_picks_leaves() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let s = greedy_mis(&g);
        assert_eq!(s, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn greedy_on_empty_takes_everything() {
        let g = CsrGraph::from_edges(5, &[]);
        assert_eq!(greedy_mis(&g).len(), 5);
    }

    #[test]
    fn greedy_scales_to_moderate_graphs() {
        // Quick sanity on a ring of 10k vertices: alpha = 5000.
        let edges: Vec<(u32, u32)> = (0..10_000u32).map(|i| (i, (i + 1) % 10_000)).collect();
        let g = CsrGraph::from_edges(10_000, &edges);
        let s = greedy_mis(&g);
        assert!(is_independent(&g, &s));
        assert_eq!(s.len(), 5_000);
    }
}
