//! # dynamis-graph — dynamic graph substrate
//!
//! This crate provides the graph layer that every algorithm in the `dynamis`
//! workspace builds on:
//!
//! * [`DynamicGraph`] — an unweighted, undirected graph supporting
//!   vertex/edge insertion and deletion in O(1) amortized time per edge
//!   update. Edge deletion is constant-time thanks to *mirror-indexed*
//!   adjacency lists (each half-edge stores the position of its reciprocal
//!   half-edge). Every half-edge additionally carries an intrusive
//!   *payload slot* — the paper's "pointer to v ∈ I(u) recorded in edge
//!   (v, u)" — giving maintenance frameworks O(1), hash-free membership
//!   lists over each vertex's neighborhood (`mark_neighbor` /
//!   `unmark_neighbor` / `marked_neighbors`). A global pair index hashed
//!   with [`FxHasher`] resolves `(u, v)` entry points to [`EdgeHandle`]
//!   positions; the per-neighbor inner loops never touch it.
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot used by the
//!   static algorithms (exact solver, local search) and as a fast bulk-load
//!   format.
//! * [`collections`] — the small auxiliary structures that the paper's
//!   hierarchical bucket storage requires: [`collections::IndexedBag`] (a
//!   bag with O(1) membership, insert, and remove via position
//!   back-pointers) and [`collections::StampSet`] (an epoch-marked set for
//!   O(1) transient membership tests without clearing).
//! * [`io`] — graph readers and writers (SNAP edge lists, DIMACS, METIS,
//!   and a compact binary codec).
//! * [`algo`] — linear-time classics used by the dataset statistics and
//!   the static solvers: BFS/components, k-core decomposition, triangle
//!   counting, degree summaries.
//! * [`ShardMap`] — a stable vertex → shard ownership map (degree-aware
//!   for the initial graph, round-robin for fresh vertices) used by the
//!   partitioned maintenance layer in `dynamis-shard`.
//!
//! The terminology follows the paper: for a graph `G_t = (V_t, E_t)` we
//! write `N_t(v)` for the open neighborhood and `d_t(v)` for the degree.

pub mod algo;
pub mod collections;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod hash;
pub mod io;
pub mod partition;
pub mod shardmap;
pub mod update;

pub use csr::CsrGraph;
pub use dynamic::{DynamicGraph, EdgeHandle, VertexId};
pub use error::GraphError;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use partition::Partitioner;
pub use shardmap::ShardMap;
pub use update::{apply_update, Update};

/// Convenience result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
