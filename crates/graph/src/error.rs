//! Error type shared by all graph operations.

use std::fmt;

/// Errors raised by [`crate::DynamicGraph`] mutations and by graph I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The vertex id does not refer to a live vertex.
    VertexNotFound(u32),
    /// Self-loops are not representable in a simple undirected graph.
    SelfLoop(u32),
    /// An [`crate::Update::InsertVertex`] named a vertex id different
    /// from the one the graph would allocate: the update stream was
    /// recorded against a different allocation history and replaying it
    /// further would silently shift every subsequent vertex id.
    IdMismatch {
        /// The id the update stream names.
        expected: u32,
        /// The id the graph's allocator would hand out.
        got: u32,
    },
    /// An edge-list line could not be parsed.
    Parse { line: usize, message: String },
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexNotFound(v) => write!(f, "vertex {v} is not in the graph"),
            GraphError::SelfLoop(v) => write!(f, "self-loop ({v}, {v}) is not allowed"),
            GraphError::IdMismatch { expected, got } => write!(
                f,
                "vertex id allocation diverged from the update stream: \
                 stream names {expected}, graph would allocate {got}"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl GraphError {
    /// Stable numeric code of this error class, used as the wire tag by
    /// the network codec (`dynamis-serve`'s `wire` module) and safe to
    /// log or aggregate on. Codes identify the *variant*, never the
    /// payload, and are append-only across versions: a code is never
    /// reused for a different meaning.
    pub fn code(&self) -> u16 {
        match self {
            GraphError::VertexNotFound(_) => 1,
            GraphError::SelfLoop(_) => 2,
            GraphError::IdMismatch { .. } => 3,
            GraphError::Parse { .. } => 4,
            GraphError::Io(_) => 5,
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(GraphError::VertexNotFound(7).to_string().contains('7'));
        assert!(GraphError::SelfLoop(3).to_string().contains("self-loop"));
        let p = GraphError::Parse {
            line: 12,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("12"));
        let m = GraphError::IdMismatch {
            expected: 4,
            got: 9,
        };
        assert!(m.to_string().contains('4') && m.to_string().contains('9'));
    }
}
