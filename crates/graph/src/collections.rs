//! Position-indexed collections used by the maintenance framework.
//!
//! The paper's hierarchical storage requires every bucket `¯I_j(S)` to
//! support O(1) insert *and* O(1) removal of an arbitrary member: "the
//! hierarchical storage strategy also allows a constant-time update to the
//! position of u if the index of u in ¯I_j(I(u)) is maintained explicitly
//! in vertex u". [`IndexedBag`] is exactly that structure. [`StampSet`]
//! provides the O(1) transient membership marks used when intersecting a
//! neighborhood with a bucket.

/// A bag of `u32` keys with O(1) insert, remove, and membership, backed by
/// a dense vector plus a position table (the "index maintained explicitly
/// in the vertex").
///
/// All keys must be smaller than the capacity passed at construction; the
/// bag grows its position table on demand.
#[derive(Debug, Clone, Default)]
pub struct IndexedBag {
    items: Vec<u32>,
    /// `pos[k]` = index of `k` in `items`, or `NONE`.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl IndexedBag {
    /// Creates an empty bag able to hold keys `< capacity` without resizing.
    pub fn with_capacity(capacity: usize) -> Self {
        IndexedBag {
            items: Vec::new(),
            pos: vec![NONE; capacity],
        }
    }

    fn ensure(&mut self, key: u32) {
        if key as usize >= self.pos.len() {
            self.pos.resize(key as usize + 1, NONE);
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bag is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        self.pos.get(key as usize).is_some_and(|&p| p != NONE)
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: u32) -> bool {
        self.ensure(key);
        if self.pos[key as usize] != NONE {
            return false;
        }
        self.pos[key as usize] = self.items.len() as u32;
        self.items.push(key);
        true
    }

    /// Removes `key` in O(1) via swap-remove; returns `false` if absent.
    pub fn remove(&mut self, key: u32) -> bool {
        let Some(&p) = self.pos.get(key as usize) else {
            return false;
        };
        if p == NONE {
            return false;
        }
        self.items.swap_remove(p as usize);
        if (p as usize) < self.items.len() {
            let moved = self.items[p as usize];
            self.pos[moved as usize] = p;
        }
        self.pos[key as usize] = NONE;
        true
    }

    /// Removes and returns an arbitrary element (the last inserted or moved).
    pub fn pop(&mut self) -> Option<u32> {
        let key = self.items.pop()?;
        self.pos[key as usize] = NONE;
        Some(key)
    }

    /// Slice view of the contents (unspecified order).
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.items
    }

    /// Iterates the contents (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.items.iter().copied()
    }

    /// Removes all elements in O(len).
    pub fn clear(&mut self) {
        for &k in &self.items {
            self.pos[k as usize] = NONE;
        }
        self.items.clear();
    }
}

/// Epoch-stamped set over keys `0..n`: `mark`/`is_marked` are O(1) and
/// clearing the whole set is O(1) (bump the epoch). The workhorse for
/// "count how many of N\[u\] lie inside this bucket" style intersections in
/// the swap-finding inner loops.
#[derive(Debug, Clone, Default)]
pub struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    /// Creates a stamp set for keys `< capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        StampSet {
            stamp: vec![0; capacity],
            epoch: 0,
        }
    }

    /// Starts a new generation, implicitly unmarking every key.
    #[inline]
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset storage to keep correctness.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn ensure(&mut self, key: u32) {
        if key as usize >= self.stamp.len() {
            self.stamp.resize(key as usize + 1, 0);
        }
    }

    /// Marks `key` in the current generation.
    #[inline]
    pub fn mark(&mut self, key: u32) {
        self.ensure(key);
        self.stamp[key as usize] = self.epoch;
    }

    /// Unmarks `key`.
    #[inline]
    pub fn unmark(&mut self, key: u32) {
        self.ensure(key);
        self.stamp[key as usize] = self.epoch.wrapping_sub(1);
    }

    /// Whether `key` is marked in the current generation.
    #[inline]
    pub fn is_marked(&self, key: u32) -> bool {
        self.stamp.get(key as usize) == Some(&self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_insert_remove_contains() {
        let mut b = IndexedBag::with_capacity(10);
        assert!(b.insert(3));
        assert!(b.insert(7));
        assert!(!b.insert(3), "duplicate insert is a no-op");
        assert_eq!(b.len(), 2);
        assert!(b.contains(3));
        assert!(b.remove(3));
        assert!(!b.remove(3));
        assert!(!b.contains(3));
        assert_eq!(b.len(), 1);
        assert!(b.contains(7));
    }

    #[test]
    fn bag_swap_remove_keeps_positions_valid() {
        let mut b = IndexedBag::with_capacity(16);
        for k in 0..10 {
            b.insert(k);
        }
        b.remove(0); // forces last element into slot 0
        for k in 1..10 {
            assert!(b.contains(k), "key {k} lost after swap_remove");
        }
        // Remove the element that was just moved.
        b.remove(9);
        assert_eq!(b.len(), 8);
        for k in 1..9 {
            assert!(b.contains(k));
        }
    }

    #[test]
    fn bag_grows_beyond_initial_capacity() {
        let mut b = IndexedBag::with_capacity(2);
        assert!(b.insert(100));
        assert!(b.contains(100));
        assert!(!b.contains(50));
    }

    #[test]
    fn bag_pop_and_clear() {
        let mut b = IndexedBag::with_capacity(4);
        b.insert(1);
        b.insert(2);
        let p = b.pop().unwrap();
        assert!(!b.contains(p));
        b.clear();
        assert!(b.is_empty());
        assert!(!b.contains(1));
        assert!(b.pop().is_none());
    }

    #[test]
    fn stamp_set_generations() {
        let mut s = StampSet::with_capacity(5);
        s.clear();
        s.mark(2);
        s.mark(4);
        assert!(s.is_marked(2));
        assert!(!s.is_marked(3));
        s.clear();
        assert!(!s.is_marked(2), "clear unmarks everything in O(1)");
        s.mark(2);
        s.unmark(2);
        assert!(!s.is_marked(2));
    }

    #[test]
    fn stamp_set_epoch_wrap_is_safe() {
        let mut s = StampSet::with_capacity(2);
        s.epoch = u32::MAX - 1;
        s.clear();
        s.mark(0);
        s.clear(); // wraps to 0 then resets to 1
        assert!(!s.is_marked(0));
        s.mark(1);
        assert!(s.is_marked(1));
    }

    #[test]
    fn stamp_set_grows() {
        let mut s = StampSet::with_capacity(1);
        s.clear();
        s.mark(1000);
        assert!(s.is_marked(1000));
    }
}
