//! Fast, non-cryptographic hashing for integer keys.
//!
//! The update loop of every dynamic engine performs hash lookups keyed by
//! vertex ids or vertex pairs, so hashing is hot. The default SipHash is
//! needlessly slow for 32/64-bit integer keys; we implement the well-known
//! Fx algorithm (as used by rustc) directly, since `rustc-hash` is not in
//! the allowed dependency set for this workspace.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx hash (64-bit golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: a word-at-a-time multiplicative hash.
///
/// Not HashDoS-resistant; inputs here are internally generated vertex ids,
/// so adversarial collisions are not a concern.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the byte slice; tail handled by padding.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` specialized to the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` specialized to the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Packs an unordered vertex pair into a canonical `u64` key
/// (smaller id in the high half).
#[inline]
pub fn pair_key(u: u32, v: u32) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pair_key`].
#[inline]
pub fn unpack_pair(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_key_is_order_invariant() {
        assert_eq!(pair_key(3, 9), pair_key(9, 3));
        assert_ne!(pair_key(3, 9), pair_key(3, 10));
    }

    #[test]
    fn pair_key_round_trips() {
        for &(u, v) in &[(0, 0), (1, 2), (u32::MAX, 7), (42, 42)] {
            let (a, b) = unpack_pair(pair_key(u, v));
            assert_eq!((a, b), (u.min(v), u.max(v)));
        }
    }

    #[test]
    fn fx_map_basic_ops() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
    }

    #[test]
    fn hasher_distinguishes_streams() {
        use std::hash::Hash;
        fn h<T: Hash>(t: &T) -> u64 {
            let mut hasher = FxHasher::default();
            t.hash(&mut hasher);
            hasher.finish()
        }
        assert_ne!(h(&1u64), h(&2u64));
        assert_ne!(h(&(1u32, 2u32)), h(&(2u32, 1u32)));
        assert_ne!(h(&"abc"), h(&"abd"));
    }
}
