//! The fully dynamic graph: vertex/edge insertion and deletion in O(1)
//! amortized time per edge update.
//!
//! Adjacency is stored as one `Vec<AdjEntry>` per vertex. Each half-edge
//! records the position (`mirror`) of its reciprocal half-edge, so removing
//! an edge is two `swap_remove` calls plus pointer fix-ups — no scanning.
//! A global hash index (vertex pair → half-edge position) locates an
//! arbitrary edge in O(1); this is the extra bookkeeping the paper accepts
//! in exchange for constant-time updates ("a pointer to v ∈ I(u) is
//! recorded in edge (v, u)").

use crate::error::GraphError;
use crate::hash::{pair_key, FxHashMap};
use crate::Result;

/// Dense vertex identifier. Ids of removed vertices are recycled.
pub type VertexId = u32;

/// One directed half of an undirected edge.
#[derive(Debug, Clone, Copy)]
struct AdjEntry {
    /// The other endpoint.
    neighbor: u32,
    /// Index of the reciprocal half-edge inside `adj[neighbor]`.
    mirror: u32,
}

/// An unweighted, undirected, simple graph under fully dynamic updates.
///
/// # Example
/// ```
/// use dynamis_graph::DynamicGraph;
/// let mut g = DynamicGraph::new();
/// let a = g.add_vertex();
/// let b = g.add_vertex();
/// let c = g.add_vertex();
/// g.insert_edge(a, b).unwrap();
/// g.insert_edge(b, c).unwrap();
/// assert_eq!(g.degree(b), 2);
/// g.remove_edge(a, b).unwrap();
/// assert!(!g.has_edge(a, b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adj: Vec<Vec<AdjEntry>>,
    alive: Vec<bool>,
    free: Vec<u32>,
    /// pair_key(u, v) → position of the half-edge stored in `adj[min(u, v)]`.
    edges: FxHashMap<u64, u32>,
    n_alive: usize,
}

impl DynamicGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with space reserved for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        DynamicGraph {
            adj: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            free: Vec::new(),
            edges: FxHashMap::default(),
            n_alive: 0,
        }
    }

    /// Builds a graph with vertices `0..n` and the given undirected edges.
    /// Duplicate edges and self-loops are ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::with_capacity(n);
        g.add_vertices(n);
        for &(u, v) in edges {
            if u != v {
                let _ = g.insert_edge(u, v);
            }
        }
        g
    }

    /// Number of live vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_alive
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertex slots ever allocated (live ids are `< capacity`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Whether `v` is a live vertex.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    #[inline]
    fn check_alive(&self, v: VertexId) -> Result<()> {
        if self.is_alive(v) {
            Ok(())
        } else {
            Err(GraphError::VertexNotFound(v))
        }
    }

    /// Adds a vertex, recycling a freed slot when possible.
    pub fn add_vertex(&mut self) -> VertexId {
        self.n_alive += 1;
        if let Some(v) = self.free.pop() {
            self.alive[v as usize] = true;
            v
        } else {
            let v = self.adj.len() as u32;
            self.adj.push(Vec::new());
            self.alive.push(true);
            v
        }
    }

    /// Adds `count` vertices, returning the id of the first one added when
    /// the graph had no freed slots (ids are then contiguous).
    pub fn add_vertices(&mut self, count: usize) -> VertexId {
        let first = if let Some(&f) = self.free.last() {
            f
        } else {
            self.adj.len() as u32
        };
        for _ in 0..count {
            self.add_vertex();
        }
        first
    }

    /// Ensures ids `0..=v` exist and that `v` is alive. Used by bulk loaders
    /// that read explicit vertex ids.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        while self.adj.len() <= v as usize {
            self.adj.push(Vec::new());
            self.alive.push(false);
        }
        if !self.alive[v as usize] {
            self.alive[v as usize] = true;
            self.n_alive += 1;
            self.free.retain(|&f| f != v);
        }
    }

    /// Removes `v` and all incident edges, returning its former neighbors.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<Vec<VertexId>> {
        self.check_alive(v)?;
        let entries = std::mem::take(&mut self.adj[v as usize]);
        let mut former = Vec::with_capacity(entries.len());
        // Drop the reciprocal half of each incident edge. Positions recorded
        // in `entries` stay valid because we only mutate other vertices'
        // lists, and each list holds at most one edge to `v`.
        for e in &entries {
            former.push(e.neighbor);
            self.edges.remove(&pair_key(v, e.neighbor));
            self.remove_half(e.neighbor, e.mirror as usize);
        }
        self.alive[v as usize] = false;
        self.free.push(v);
        self.n_alive -= 1;
        Ok(former)
    }

    /// Inserts the undirected edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge was new, `Ok(false)` if it already
    /// existed.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_alive(u)?;
        self.check_alive(v)?;
        let key = pair_key(u, v);
        if self.edges.contains_key(&key) {
            return Ok(false);
        }
        let pu = self.adj[u as usize].len() as u32;
        let pv = self.adj[v as usize].len() as u32;
        self.adj[u as usize].push(AdjEntry {
            neighbor: v,
            mirror: pv,
        });
        self.adj[v as usize].push(AdjEntry {
            neighbor: u,
            mirror: pu,
        });
        let a_pos = if u < v { pu } else { pv };
        self.edges.insert(key, a_pos);
        Ok(true)
    }

    /// Removes the undirected edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge existed, `Ok(false)` otherwise.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_alive(u)?;
        self.check_alive(v)?;
        let key = pair_key(u, v);
        let Some(pos_a) = self.edges.remove(&key) else {
            return Ok(false);
        };
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos_b = self.adj[a as usize][pos_a as usize].mirror;
        // A simple graph holds exactly one a–b edge, so the fix-up performed
        // by the first removal can never touch the half-edge removed second.
        self.remove_half(a, pos_a as usize);
        self.remove_half(b, pos_b as usize);
        Ok(true)
    }

    /// `swap_remove`s `adj[x][pos]`, repairing the mirror pointer and edge
    /// index of whichever half-edge got moved into the hole.
    fn remove_half(&mut self, x: VertexId, pos: usize) {
        let list = &mut self.adj[x as usize];
        list.swap_remove(pos);
        if pos < list.len() {
            let moved = list[pos];
            self.adj[moved.neighbor as usize][moved.mirror as usize].mirror = pos as u32;
            if x < moved.neighbor {
                // The edge index references positions in the smaller
                // endpoint's list only.
                self.edges.insert(pair_key(x, moved.neighbor), pos as u32);
            }
        }
    }

    /// O(1) edge existence test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.edges.contains_key(&pair_key(u, v))
    }

    /// Degree of `v` (0 for dead vertices).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj.get(v as usize).map_or(0, Vec::len)
    }

    /// Iterates the open neighborhood `N(v)`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj
            .get(v as usize)
            .into_iter()
            .flatten()
            .map(|e| e.neighbor)
    }

    /// Random access into the adjacency of `v` (hot-loop helper).
    #[inline]
    pub fn neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        self.adj[v as usize][i].neighbor
    }

    /// Iterates all live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }

    /// Iterates all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.keys().map(|&k| crate::hash::unpack_pair(k))
    }

    /// Maximum degree Δ over live vertices (O(n) scan).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree d̄ = 2m / n.
    pub fn avg_degree(&self) -> f64 {
        if self.n_alive == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.n_alive as f64
        }
    }

    /// Approximate heap footprint in bytes (adjacency + edge index).
    pub fn heap_bytes(&self) -> usize {
        let adj: usize = self
            .adj
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<AdjEntry>())
            .sum();
        adj + self.adj.capacity() * std::mem::size_of::<Vec<AdjEntry>>()
            + self.alive.capacity()
            + self.edges.capacity() * (std::mem::size_of::<(u64, u32)>() + 8)
    }

    /// Exhaustive internal-consistency check. Test/debug use only: O(n + m).
    ///
    /// Verifies that mirror pointers are reciprocal, the edge index matches
    /// the adjacency lists, dead vertices have no edges, and the half-edge
    /// count is exactly `2m`.
    pub fn check_consistency(&self) -> std::result::Result<(), String> {
        let mut half_edges = 0usize;
        for v in 0..self.adj.len() as u32 {
            if !self.alive[v as usize] && !self.adj[v as usize].is_empty() {
                return Err(format!("dead vertex {v} still has edges"));
            }
            for (i, e) in self.adj[v as usize].iter().enumerate() {
                half_edges += 1;
                let back = &self.adj[e.neighbor as usize]
                    .get(e.mirror as usize)
                    .ok_or_else(|| format!("mirror of ({v},{}) out of range", e.neighbor))?;
                if back.neighbor != v || back.mirror as usize != i {
                    return Err(format!("mirror mismatch on edge ({v},{})", e.neighbor));
                }
                let key = pair_key(v, e.neighbor);
                let &pos = self
                    .edges
                    .get(&key)
                    .ok_or_else(|| format!("edge ({v},{}) missing from index", e.neighbor))?;
                let a = v.min(e.neighbor);
                let stored = &self.adj[a as usize][pos as usize];
                if stored.neighbor != v.max(e.neighbor) {
                    return Err(format!("index position stale for ({v},{})", e.neighbor));
                }
            }
        }
        if half_edges != 2 * self.edges.len() {
            return Err(format!(
                "half-edge count {half_edges} != 2m = {}",
                2 * self.edges.len()
            ));
        }
        if self.alive.iter().filter(|&&a| a).count() != self.n_alive {
            return Err("n_alive counter out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> DynamicGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        DynamicGraph::from_edges(n, &edges)
    }

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn insert_and_query_edges() {
        let mut g = DynamicGraph::new();
        g.add_vertices(4);
        assert!(g.insert_edge(0, 1).unwrap());
        assert!(!g.insert_edge(1, 0).unwrap(), "duplicate rejected");
        assert!(g.insert_edge(1, 2).unwrap());
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        g.check_consistency().unwrap();
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicGraph::new();
        g.add_vertex();
        assert_eq!(g.insert_edge(0, 0), Err(GraphError::SelfLoop(0)));
        assert_eq!(g.remove_edge(0, 0), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn dead_vertex_rejected() {
        let mut g = DynamicGraph::new();
        g.add_vertices(2);
        assert_eq!(g.insert_edge(0, 5), Err(GraphError::VertexNotFound(5)));
        g.remove_vertex(1).unwrap();
        assert_eq!(g.insert_edge(0, 1), Err(GraphError::VertexNotFound(1)));
    }

    #[test]
    fn remove_edge_fixes_mirrors() {
        let mut g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        assert!(g.remove_edge(0, 1).unwrap());
        assert!(!g.remove_edge(0, 1).unwrap(), "already gone");
        g.check_consistency().unwrap();
        assert_eq!(g.degree(0), 3);
        // Removing the first entry forces a swap_remove fix-up.
        assert!(g.remove_edge(0, 2).unwrap());
        g.check_consistency().unwrap();
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn remove_vertex_clears_incident_edges() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let mut former = g.remove_vertex(0).unwrap();
        former.sort_unstable();
        assert_eq!(former, vec![1, 2, 3]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 3);
        assert!(!g.is_alive(0));
        g.check_consistency().unwrap();
    }

    #[test]
    fn vertex_ids_are_recycled() {
        let mut g = DynamicGraph::new();
        g.add_vertices(3);
        g.remove_vertex(1).unwrap();
        let v = g.add_vertex();
        assert_eq!(v, 1, "freed slot is reused");
        assert_eq!(g.num_vertices(), 3);
        g.check_consistency().unwrap();
    }

    #[test]
    fn ensure_vertex_extends_and_revives() {
        let mut g = DynamicGraph::new();
        g.ensure_vertex(5);
        assert!(g.is_alive(5));
        assert!(!g.is_alive(3));
        assert_eq!(g.num_vertices(), 1);
        g.ensure_vertex(3);
        assert_eq!(g.num_vertices(), 2);
        g.insert_edge(3, 5).unwrap();
        g.check_consistency().unwrap();
    }

    #[test]
    fn neighbors_iteration_matches_degree() {
        let g = path(6);
        for v in g.vertices() {
            assert_eq!(g.neighbors(v).count(), g.degree(v));
        }
        let mid: Vec<u32> = g.neighbors(3).collect();
        assert_eq!(mid.len(), 2);
        assert!(mid.contains(&2) && mid.contains(&4));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = DynamicGraph::from_edges(4, &[(3, 1), (2, 0)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn stats() {
        let g = path(5);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.6).abs() < 1e-9);
        assert!(g.heap_bytes() > 0);
    }

    #[test]
    fn interleaved_update_stress() {
        // Deterministic pseudo-random interleaving of all four op kinds,
        // checked against full consistency after every batch.
        let mut g = DynamicGraph::new();
        g.add_vertices(40);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..2000u32 {
            let op = rng() % 100;
            let cap = g.capacity() as u64;
            if op < 45 {
                let (u, v) = ((rng() % cap) as u32, (rng() % cap) as u32);
                if u != v && g.is_alive(u) && g.is_alive(v) {
                    g.insert_edge(u, v).unwrap();
                }
            } else if op < 80 {
                let (u, v) = ((rng() % cap) as u32, (rng() % cap) as u32);
                if u != v && g.is_alive(u) && g.is_alive(v) {
                    g.remove_edge(u, v).unwrap();
                }
            } else if op < 90 {
                let v = (rng() % cap) as u32;
                if g.is_alive(v) && g.num_vertices() > 2 {
                    g.remove_vertex(v).unwrap();
                }
            } else {
                g.add_vertex();
            }
            if round % 101 == 0 {
                g.check_consistency().unwrap();
            }
        }
        g.check_consistency().unwrap();
    }
}
