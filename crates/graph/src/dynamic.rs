//! The fully dynamic graph: vertex/edge insertion and deletion in O(1)
//! amortized time per edge update.
//!
//! Adjacency is stored as one `Vec<AdjEntry>` per vertex. Each half-edge
//! records the position (`mirror`) of its reciprocal half-edge, so removing
//! an edge is two `swap_remove` calls plus pointer fix-ups — no scanning.
//!
//! ## Intrusive payload slots
//!
//! Beyond `mirror`, every half-edge carries one intrusive `payload` slot
//! implementing the paper's "a pointer to v ∈ I(u) is recorded in edge
//! (v, u)": a vertex `u` may *mark* some of its half-edges, and the graph
//! maintains, per vertex, the dense list of marked adjacency positions
//! (`marked[u]`) together with each marked half-edge's index inside that
//! list (the payload). Both directions are repaired through the same
//! `swap_remove` fix-ups that keep `mirror` pointers valid, so the
//! maintenance framework gets O(1) insert/remove/iterate over `I(u)` —
//! the set of solution neighbors of `u` — with **zero hash-map probes**.
//!
//! A global hash index (vertex pair → half-edge position) still locates an
//! arbitrary edge in O(1), but it is consulted only by the *entry points*
//! that receive an edge as a vertex pair ([`DynamicGraph::has_edge`],
//! [`DynamicGraph::remove_edge`], [`DynamicGraph::edge_handle`]) — never
//! by the per-neighbor inner loops, which speak [`EdgeHandle`] positions.

use crate::error::GraphError;
use crate::hash::{pair_key, FxHashMap};
use crate::Result;

/// Dense vertex identifier. Ids of removed vertices are recycled.
pub type VertexId = u32;

/// Sentinel for "this half-edge is not marked".
const NO_PAYLOAD: u32 = u32::MAX;

/// One directed half of an undirected edge.
#[derive(Debug, Clone, Copy)]
struct AdjEntry {
    /// The other endpoint.
    neighbor: u32,
    /// Index of the reciprocal half-edge inside `adj[neighbor]`.
    mirror: u32,
    /// Index of this half-edge inside `marked[owner]`, or [`NO_PAYLOAD`].
    /// This is the intrusive slot the maintenance framework uses to keep
    /// the position of `neighbor ∈ I(owner)` — "recorded in the edge".
    payload: u32,
}

/// Resolved positions of one undirected edge `(u, v)`: the index of the
/// `u → v` half-edge inside `adj[u]` and of `v → u` inside `adj[v]`.
///
/// Handles are obtained from [`DynamicGraph::edge_handle`] (one hash
/// probe) or [`DynamicGraph::insert_edge_handle`] (no extra probe beyond
/// the insertion itself) and stay valid until the next *removal* touching
/// either endpoint's adjacency list (insertions only append).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeHandle {
    /// First endpoint (as passed to the resolving call).
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
    /// Position of the `u → v` half-edge in `adj[u]`.
    pub pos_u: u32,
    /// Position of the `v → u` half-edge in `adj[v]`.
    pub pos_v: u32,
}

/// An unweighted, undirected, simple graph under fully dynamic updates.
///
/// # Example
/// ```
/// use dynamis_graph::DynamicGraph;
/// let mut g = DynamicGraph::new();
/// let a = g.add_vertex();
/// let b = g.add_vertex();
/// let c = g.add_vertex();
/// g.insert_edge(a, b).unwrap();
/// g.insert_edge(b, c).unwrap();
/// assert_eq!(g.degree(b), 2);
/// g.remove_edge(a, b).unwrap();
/// assert!(!g.has_edge(a, b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adj: Vec<Vec<AdjEntry>>,
    /// `marked[u]` — adjacency positions of u's marked half-edges, in
    /// arbitrary order. The payload slot of `adj[u][marked[u][j]]` is `j`.
    marked: Vec<Vec<u32>>,
    alive: Vec<bool>,
    free: Vec<u32>,
    /// pair_key(u, v) → position of the half-edge stored in `adj[min(u, v)]`.
    /// Entry-point index only; the update inner loops never consult it.
    edges: FxHashMap<u64, u32>,
    n_alive: usize,
}

impl DynamicGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with space reserved for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        DynamicGraph {
            adj: Vec::with_capacity(n),
            marked: Vec::with_capacity(n),
            alive: Vec::with_capacity(n),
            free: Vec::new(),
            edges: FxHashMap::default(),
            n_alive: 0,
        }
    }

    /// Builds a graph with vertices `0..n` and the given undirected edges.
    /// Duplicate edges and self-loops are skipped (documented tolerance);
    /// any *other* insertion failure — e.g. an endpoint `≥ n` — is a bug
    /// in the caller and trips a debug assertion.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::with_capacity(n);
        g.add_vertices(n);
        for &(u, v) in edges {
            if u == v {
                continue; // self-loop: documented skip
            }
            match g.insert_edge(u, v) {
                Ok(_) => {} // Ok(false) = duplicate: documented skip
                Err(e) => debug_assert!(false, "from_edges(({u}, {v})): {e}"),
            }
        }
        g
    }

    /// Number of live vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_alive
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertex slots ever allocated (live ids are `< capacity`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Whether `v` is a live vertex.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    #[inline]
    fn check_alive(&self, v: VertexId) -> Result<()> {
        if self.is_alive(v) {
            Ok(())
        } else {
            Err(GraphError::VertexNotFound(v))
        }
    }

    /// The id the next [`DynamicGraph::add_vertex`] call will return —
    /// a freed slot if one exists, otherwise a fresh one. Lets stream
    /// consumers detect an id-allocation divergence *before* mutating
    /// (see [`GraphError::IdMismatch`]).
    #[inline]
    pub fn next_vertex_id(&self) -> VertexId {
        self.free.last().copied().unwrap_or(self.adj.len() as u32)
    }

    /// Adds a vertex, recycling a freed slot when possible.
    pub fn add_vertex(&mut self) -> VertexId {
        self.n_alive += 1;
        if let Some(v) = self.free.pop() {
            self.alive[v as usize] = true;
            v
        } else {
            let v = self.adj.len() as u32;
            self.adj.push(Vec::new());
            self.marked.push(Vec::new());
            self.alive.push(true);
            v
        }
    }

    /// Adds `count` vertices, returning the id of the first one added when
    /// the graph had no freed slots (ids are then contiguous).
    pub fn add_vertices(&mut self, count: usize) -> VertexId {
        let first = if let Some(&f) = self.free.last() {
            f
        } else {
            self.adj.len() as u32
        };
        for _ in 0..count {
            self.add_vertex();
        }
        first
    }

    /// Ensures ids `0..=v` exist and that `v` is alive. Used by bulk loaders
    /// that read explicit vertex ids.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        while self.adj.len() <= v as usize {
            self.adj.push(Vec::new());
            self.marked.push(Vec::new());
            self.alive.push(false);
        }
        if !self.alive[v as usize] {
            self.alive[v as usize] = true;
            self.n_alive += 1;
            self.free.retain(|&f| f != v);
        }
    }

    /// Removes `v` and all incident edges, returning its former neighbors.
    ///
    /// Any marks involving `v` — marks `v` held on its own half-edges and
    /// marks its neighbors held on their half-edges to `v` — are dropped.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<Vec<VertexId>> {
        self.check_alive(v)?;
        let entries = std::mem::take(&mut self.adj[v as usize]);
        self.marked[v as usize].clear();
        let mut former = Vec::with_capacity(entries.len());
        // Drop the reciprocal half of each incident edge. Positions recorded
        // in `entries` stay valid because we only mutate other vertices'
        // lists, and each list holds at most one edge to `v`.
        for e in &entries {
            former.push(e.neighbor);
            self.edges.remove(&pair_key(v, e.neighbor));
            self.remove_half(e.neighbor, e.mirror as usize);
        }
        self.alive[v as usize] = false;
        self.free.push(v);
        self.n_alive -= 1;
        Ok(former)
    }

    /// Inserts the undirected edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge was new, `Ok(false)` if it already
    /// existed.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        self.insert_edge_handle(u, v).map(|h| h.is_some())
    }

    /// Inserts the undirected edge `(u, v)`, returning the handle of the
    /// freshly inserted edge — `None` if the edge already existed.
    ///
    /// This is the hot-path insertion entry point: the caller gets the
    /// half-edge positions without a second index probe.
    pub fn insert_edge_handle(&mut self, u: VertexId, v: VertexId) -> Result<Option<EdgeHandle>> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_alive(u)?;
        self.check_alive(v)?;
        let key = pair_key(u, v);
        if self.edges.contains_key(&key) {
            return Ok(None);
        }
        let pu = self.adj[u as usize].len() as u32;
        let pv = self.adj[v as usize].len() as u32;
        self.adj[u as usize].push(AdjEntry {
            neighbor: v,
            mirror: pv,
            payload: NO_PAYLOAD,
        });
        self.adj[v as usize].push(AdjEntry {
            neighbor: u,
            mirror: pu,
            payload: NO_PAYLOAD,
        });
        let a_pos = if u < v { pu } else { pv };
        self.edges.insert(key, a_pos);
        Ok(Some(EdgeHandle {
            u,
            v,
            pos_u: pu,
            pos_v: pv,
        }))
    }

    /// Resolves the edge `(u, v)` to its half-edge positions with a single
    /// index probe. `None` if the edge does not exist (or `u == v`).
    pub fn edge_handle(&self, u: VertexId, v: VertexId) -> Option<EdgeHandle> {
        if u == v {
            return None;
        }
        let &pos_a = self.edges.get(&pair_key(u, v))?;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos_b = self.adj[a as usize][pos_a as usize].mirror;
        debug_assert_eq!(self.adj[a as usize][pos_a as usize].neighbor, b);
        let (pos_u, pos_v) = if u < v {
            (pos_a, pos_b)
        } else {
            (pos_b, pos_a)
        };
        Some(EdgeHandle { u, v, pos_u, pos_v })
    }

    /// Removes the undirected edge `(u, v)`.
    ///
    /// Returns `Ok(true)` if the edge existed, `Ok(false)` otherwise.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.check_alive(u)?;
        self.check_alive(v)?;
        let Some(h) = self.edge_handle(u, v) else {
            return Ok(false);
        };
        self.remove_edge_at(h);
        Ok(true)
    }

    /// Removes the edge a previously resolved handle points at. The handle
    /// must be *fresh*: obtained after the last removal touching either
    /// endpoint (checked in debug builds).
    ///
    /// Any marks on the two half-edges are dropped.
    pub fn remove_edge_at(&mut self, h: EdgeHandle) {
        debug_assert_eq!(self.adj[h.u as usize][h.pos_u as usize].neighbor, h.v);
        debug_assert_eq!(self.adj[h.v as usize][h.pos_v as usize].neighbor, h.u);
        self.edges.remove(&pair_key(h.u, h.v));
        // A simple graph holds exactly one u–v edge, so the fix-up performed
        // by the first removal can never touch the half-edge removed second.
        self.remove_half(h.u, h.pos_u as usize);
        self.remove_half(h.v, h.pos_v as usize);
    }

    /// `swap_remove`s `adj[x][pos]`, repairing the mirror pointer, payload
    /// slot, and edge index of whichever half-edge got moved into the hole.
    /// A mark on the removed half-edge itself is dropped first.
    fn remove_half(&mut self, x: VertexId, pos: usize) {
        if self.adj[x as usize][pos].payload != NO_PAYLOAD {
            self.unmark_neighbor(x, pos as u32);
        }
        let list = &mut self.adj[x as usize];
        list.swap_remove(pos);
        if pos < list.len() {
            let moved = list[pos];
            self.adj[moved.neighbor as usize][moved.mirror as usize].mirror = pos as u32;
            if moved.payload != NO_PAYLOAD {
                // Keep the intrusive back-pointer fresh: the moved
                // half-edge's record in marked[x] must follow it.
                self.marked[x as usize][moved.payload as usize] = pos as u32;
            }
            if x < moved.neighbor {
                // The edge index references positions in the smaller
                // endpoint's list only.
                self.edges.insert(pair_key(x, moved.neighbor), pos as u32);
            }
        }
    }

    /// Marks the half-edge `adj[u][pos]`, registering its neighbor in
    /// `marked(u)` — O(1), no hashing. The half-edge must be unmarked.
    #[inline]
    pub fn mark_neighbor(&mut self, u: VertexId, pos: u32) {
        let entry = &mut self.adj[u as usize][pos as usize];
        debug_assert_eq!(entry.payload, NO_PAYLOAD, "half-edge already marked");
        entry.payload = self.marked[u as usize].len() as u32;
        self.marked[u as usize].push(pos);
    }

    /// Unmarks the half-edge `adj[u][pos]` — O(1), no hashing. The
    /// half-edge must be marked.
    #[inline]
    pub fn unmark_neighbor(&mut self, u: VertexId, pos: u32) {
        let entry = &mut self.adj[u as usize][pos as usize];
        let j = entry.payload as usize;
        debug_assert_ne!(entry.payload, NO_PAYLOAD, "half-edge not marked");
        entry.payload = NO_PAYLOAD;
        let list = &mut self.marked[u as usize];
        list.swap_remove(j);
        if j < list.len() {
            let moved_pos = list[j];
            self.adj[u as usize][moved_pos as usize].payload = j as u32;
        }
    }

    /// Whether the half-edge `adj[u][pos]` is marked.
    #[inline]
    pub fn is_marked(&self, u: VertexId, pos: u32) -> bool {
        self.adj[u as usize][pos as usize].payload != NO_PAYLOAD
    }

    /// Number of marked neighbors of `u` — `|I(u)|` in framework terms.
    #[inline]
    pub fn marked_count(&self, u: VertexId) -> usize {
        self.marked[u as usize].len()
    }

    /// The `j`-th marked neighbor of `u` (arbitrary but stable order
    /// between mutations).
    #[inline]
    pub fn marked_neighbor(&self, u: VertexId, j: usize) -> VertexId {
        let pos = self.marked[u as usize][j];
        self.adj[u as usize][pos as usize].neighbor
    }

    /// Iterates the marked neighbors of `u`.
    #[inline]
    pub fn marked_neighbors(&self, u: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.marked[u as usize]
            .iter()
            .map(move |&pos| self.adj[u as usize][pos as usize].neighbor)
    }

    /// Clears every mark `u` holds (O(marked_count(u)), allocation kept).
    pub fn clear_vertex_marks(&mut self, u: VertexId) {
        let (adj, marked) = (&mut self.adj[u as usize], &mut self.marked[u as usize]);
        for &pos in marked.iter() {
            adj[pos as usize].payload = NO_PAYLOAD;
        }
        marked.clear();
    }

    /// Clears every mark in the graph (O(total marks)). Engines call this
    /// before adopting a graph whose previous owner left marks behind
    /// (e.g. a cloned snapshot).
    pub fn clear_marks(&mut self) {
        for u in 0..self.adj.len() as u32 {
            self.clear_vertex_marks(u);
        }
    }

    /// O(1) edge existence test (one index probe).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.edges.contains_key(&pair_key(u, v))
    }

    /// Degree of `v` (0 for dead vertices).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj.get(v as usize).map_or(0, Vec::len)
    }

    /// Iterates the open neighborhood `N(v)`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj
            .get(v as usize)
            .into_iter()
            .flatten()
            .map(|e| e.neighbor)
    }

    /// Iterates `(neighbor, mirror)` pairs of `v`'s half-edges: `mirror`
    /// is the position of the reciprocal half-edge inside
    /// `adj[neighbor]` — i.e. a ready-made half-edge handle on the
    /// neighbor's side. This is the hot-loop iterator engines use to
    /// reach each neighbor's intrusive slot without hashing.
    #[inline]
    pub fn half_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        self.adj
            .get(v as usize)
            .into_iter()
            .flatten()
            .map(|e| (e.neighbor, e.mirror))
    }

    /// Random access into the adjacency of `v` (hot-loop helper).
    #[inline]
    pub fn neighbor_at(&self, v: VertexId, i: usize) -> VertexId {
        self.adj[v as usize][i].neighbor
    }

    /// Iterates all live vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }

    /// Iterates all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.keys().map(|&k| crate::hash::unpack_pair(k))
    }

    /// Maximum degree Δ over live vertices (O(n) scan).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree d̄ = 2m / n.
    pub fn avg_degree(&self) -> f64 {
        if self.n_alive == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.n_alive as f64
        }
    }

    /// Approximate heap footprint in bytes (adjacency — including the
    /// intrusive payload slots — plus marked lists and the edge index).
    pub fn heap_bytes(&self) -> usize {
        let adj: usize = self
            .adj
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<AdjEntry>())
            .sum();
        let marked: usize = self.marked.iter().map(|l| l.capacity() * 4).sum();
        adj + marked
            + self.adj.capacity() * std::mem::size_of::<Vec<AdjEntry>>()
            + self.marked.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.alive.capacity()
            + self.edges.capacity() * (std::mem::size_of::<(u64, u32)>() + 8)
    }

    /// Exhaustive internal-consistency check. Test/debug use only: O(n + m).
    ///
    /// Verifies that mirror pointers are reciprocal, payload slots and
    /// marked lists are mutually consistent, the edge index matches the
    /// adjacency lists, dead vertices have no edges, and the half-edge
    /// count is exactly `2m`.
    pub fn check_consistency(&self) -> std::result::Result<(), String> {
        let mut half_edges = 0usize;
        let mut marks = 0usize;
        for v in 0..self.adj.len() as u32 {
            if !self.alive[v as usize] && !self.adj[v as usize].is_empty() {
                return Err(format!("dead vertex {v} still has edges"));
            }
            if !self.alive[v as usize] && !self.marked[v as usize].is_empty() {
                return Err(format!("dead vertex {v} still has marks"));
            }
            for (i, e) in self.adj[v as usize].iter().enumerate() {
                half_edges += 1;
                let back = &self.adj[e.neighbor as usize]
                    .get(e.mirror as usize)
                    .ok_or_else(|| format!("mirror of ({v},{}) out of range", e.neighbor))?;
                if back.neighbor != v || back.mirror as usize != i {
                    return Err(format!("mirror mismatch on edge ({v},{})", e.neighbor));
                }
                if e.payload != NO_PAYLOAD {
                    marks += 1;
                    let slot = self.marked[v as usize].get(e.payload as usize);
                    if slot != Some(&(i as u32)) {
                        return Err(format!(
                            "payload of half-edge ({v},{}) does not point back: \
                             payload {} vs marked {:?}",
                            e.neighbor, e.payload, slot
                        ));
                    }
                }
                let key = pair_key(v, e.neighbor);
                let &pos = self
                    .edges
                    .get(&key)
                    .ok_or_else(|| format!("edge ({v},{}) missing from index", e.neighbor))?;
                let a = v.min(e.neighbor);
                let stored = &self.adj[a as usize][pos as usize];
                if stored.neighbor != v.max(e.neighbor) {
                    return Err(format!("index position stale for ({v},{})", e.neighbor));
                }
            }
            for (j, &pos) in self.marked[v as usize].iter().enumerate() {
                let entry = self.adj[v as usize]
                    .get(pos as usize)
                    .ok_or_else(|| format!("marked[{v}][{j}] = {pos} out of adjacency range"))?;
                if entry.payload as usize != j {
                    return Err(format!(
                        "marked[{v}][{j}] -> pos {pos} whose payload is {}",
                        entry.payload
                    ));
                }
            }
        }
        if half_edges != 2 * self.edges.len() {
            return Err(format!(
                "half-edge count {half_edges} != 2m = {}",
                2 * self.edges.len()
            ));
        }
        let marked_total: usize = self.marked.iter().map(Vec::len).sum();
        if marks != marked_total {
            return Err(format!(
                "payload mark count {marks} != marked-list total {marked_total}"
            ));
        }
        if self.alive.iter().filter(|&&a| a).count() != self.n_alive {
            return Err("n_alive counter out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> DynamicGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        DynamicGraph::from_edges(n, &edges)
    }

    #[test]
    fn empty_graph() {
        let g = DynamicGraph::new();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn insert_and_query_edges() {
        let mut g = DynamicGraph::new();
        g.add_vertices(4);
        assert!(g.insert_edge(0, 1).unwrap());
        assert!(!g.insert_edge(1, 0).unwrap(), "duplicate rejected");
        assert!(g.insert_edge(1, 2).unwrap());
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        g.check_consistency().unwrap();
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicGraph::new();
        g.add_vertex();
        assert_eq!(g.insert_edge(0, 0), Err(GraphError::SelfLoop(0)));
        assert_eq!(g.remove_edge(0, 0), Err(GraphError::SelfLoop(0)));
    }

    #[test]
    fn dead_vertex_rejected() {
        let mut g = DynamicGraph::new();
        g.add_vertices(2);
        assert_eq!(g.insert_edge(0, 5), Err(GraphError::VertexNotFound(5)));
        g.remove_vertex(1).unwrap();
        assert_eq!(g.insert_edge(0, 1), Err(GraphError::VertexNotFound(1)));
    }

    #[test]
    fn remove_edge_fixes_mirrors() {
        let mut g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        assert!(g.remove_edge(0, 1).unwrap());
        assert!(!g.remove_edge(0, 1).unwrap(), "already gone");
        g.check_consistency().unwrap();
        assert_eq!(g.degree(0), 3);
        // Removing the first entry forces a swap_remove fix-up.
        assert!(g.remove_edge(0, 2).unwrap());
        g.check_consistency().unwrap();
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn remove_vertex_clears_incident_edges() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let mut former = g.remove_vertex(0).unwrap();
        former.sort_unstable();
        assert_eq!(former, vec![1, 2, 3]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 3);
        assert!(!g.is_alive(0));
        g.check_consistency().unwrap();
    }

    #[test]
    fn vertex_ids_are_recycled() {
        let mut g = DynamicGraph::new();
        g.add_vertices(3);
        g.remove_vertex(1).unwrap();
        let v = g.add_vertex();
        assert_eq!(v, 1, "freed slot is reused");
        assert_eq!(g.num_vertices(), 3);
        g.check_consistency().unwrap();
    }

    #[test]
    fn ensure_vertex_extends_and_revives() {
        let mut g = DynamicGraph::new();
        g.ensure_vertex(5);
        assert!(g.is_alive(5));
        assert!(!g.is_alive(3));
        assert_eq!(g.num_vertices(), 1);
        g.ensure_vertex(3);
        assert_eq!(g.num_vertices(), 2);
        g.insert_edge(3, 5).unwrap();
        g.check_consistency().unwrap();
    }

    #[test]
    fn neighbors_iteration_matches_degree() {
        let g = path(6);
        for v in g.vertices() {
            assert_eq!(g.neighbors(v).count(), g.degree(v));
        }
        let mid: Vec<u32> = g.neighbors(3).collect();
        assert_eq!(mid.len(), 2);
        assert!(mid.contains(&2) && mid.contains(&4));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = DynamicGraph::from_edges(4, &[(3, 1), (2, 0)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn stats() {
        let g = path(5);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.6).abs() < 1e-9);
        assert!(g.heap_bytes() > 0);
    }

    #[test]
    fn edge_handles_resolve_both_sides() {
        let mut g = DynamicGraph::new();
        g.add_vertices(3);
        let h = g.insert_edge_handle(2, 0).unwrap().unwrap();
        assert_eq!((h.u, h.v), (2, 0));
        assert_eq!(g.neighbor_at(2, h.pos_u as usize), 0);
        assert_eq!(g.neighbor_at(0, h.pos_v as usize), 2);
        assert!(g.insert_edge_handle(0, 2).unwrap().is_none(), "duplicate");
        let r = g.edge_handle(0, 2).unwrap();
        assert_eq!((r.u, r.v), (0, 2));
        assert_eq!(g.neighbor_at(0, r.pos_u as usize), 2);
        assert_eq!(g.neighbor_at(2, r.pos_v as usize), 0);
        assert!(g.edge_handle(0, 1).is_none());
        assert!(g.edge_handle(1, 1).is_none());
    }

    #[test]
    fn remove_edge_at_handle() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2)]);
        let h = g.edge_handle(0, 1).unwrap();
        g.remove_edge_at(h);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        g.check_consistency().unwrap();
    }

    #[test]
    fn marks_survive_unrelated_removals() {
        // Mark 0's half-edges to 2 and 4, then delete other edges of 0,
        // forcing swap_remove relocations through the marked entries.
        let mut g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let h2 = g.edge_handle(0, 2).unwrap();
        let h4 = g.edge_handle(0, 4).unwrap();
        g.mark_neighbor(0, h2.pos_u);
        g.mark_neighbor(0, h4.pos_u);
        assert_eq!(g.marked_count(0), 2);
        g.check_consistency().unwrap();
        g.remove_edge(0, 1).unwrap(); // relocates (0,5) into slot 0
        g.remove_edge(0, 3).unwrap(); // relocates a marked entry
        g.check_consistency().unwrap();
        let mut ms: Vec<u32> = g.marked_neighbors(0).collect();
        ms.sort_unstable();
        assert_eq!(ms, vec![2, 4], "marks follow relocated half-edges");
    }

    #[test]
    fn removing_marked_edge_drops_the_mark() {
        let mut g = DynamicGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let h = g.edge_handle(0, 1).unwrap();
        g.mark_neighbor(0, h.pos_u);
        g.remove_edge(0, 1).unwrap();
        assert_eq!(g.marked_count(0), 0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn remove_vertex_drops_reciprocal_marks() {
        // 1 marks its edge to 0; removing 0 must unmark it.
        let mut g = DynamicGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let h = g.edge_handle(1, 0).unwrap();
        g.mark_neighbor(1, h.pos_u);
        let h2 = g.edge_handle(0, 1).unwrap();
        g.mark_neighbor(0, h2.pos_u); // 0's own mark dies with it
        g.remove_vertex(0).unwrap();
        assert_eq!(g.marked_count(1), 0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn mark_unmark_round_trip_keeps_payload_dense() {
        let mut g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        for v in [1u32, 2, 3, 4] {
            let h = g.edge_handle(0, v).unwrap();
            g.mark_neighbor(0, h.pos_u);
        }
        assert_eq!(g.marked_count(0), 4);
        // Unmark the middle one: swap_remove must repair the moved slot.
        let h = g.edge_handle(0, 2).unwrap();
        g.unmark_neighbor(0, h.pos_u);
        assert!(!g.is_marked(0, h.pos_u));
        g.check_consistency().unwrap();
        let mut ms: Vec<u32> = g.marked_neighbors(0).collect();
        ms.sort_unstable();
        assert_eq!(ms, vec![1, 3, 4]);
        assert_eq!(g.marked_neighbor(0, 0), {
            let pos = g.marked[0][0];
            g.neighbor_at(0, pos as usize)
        });
    }

    #[test]
    fn clear_marks_resets_everything() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let h = g.edge_handle(1, 0).unwrap();
        g.mark_neighbor(1, h.pos_u);
        let h = g.edge_handle(2, 3).unwrap();
        g.mark_neighbor(2, h.pos_u);
        g.clear_marks();
        assert_eq!(g.marked_count(1) + g.marked_count(2), 0);
        g.check_consistency().unwrap();
    }

    #[test]
    fn half_edges_yield_valid_reciprocal_handles() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (2, 3), (2, 4)]);
        for v in g.vertices() {
            for (n, mirror) in g.half_edges(v) {
                assert_eq!(g.neighbor_at(n, mirror as usize), v);
            }
        }
    }

    #[test]
    fn interleaved_update_stress() {
        // Deterministic pseudo-random interleaving of all four op kinds
        // plus mark/unmark churn, checked against full consistency after
        // every batch.
        let mut g = DynamicGraph::new();
        g.add_vertices(40);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..2000u32 {
            let op = rng() % 100;
            let cap = g.capacity() as u64;
            if op < 40 {
                let (u, v) = ((rng() % cap) as u32, (rng() % cap) as u32);
                if u != v && g.is_alive(u) && g.is_alive(v) {
                    g.insert_edge(u, v).unwrap();
                }
            } else if op < 70 {
                let (u, v) = ((rng() % cap) as u32, (rng() % cap) as u32);
                if u != v && g.is_alive(u) && g.is_alive(v) {
                    g.remove_edge(u, v).unwrap();
                }
            } else if op < 80 {
                let v = (rng() % cap) as u32;
                if g.is_alive(v) && g.num_vertices() > 2 {
                    g.remove_vertex(v).unwrap();
                }
            } else if op < 90 {
                // Toggle the mark on a random half-edge.
                let v = (rng() % cap) as u32;
                if g.is_alive(v) && g.degree(v) > 0 {
                    let pos = (rng() % g.degree(v) as u64) as u32;
                    if g.is_marked(v, pos) {
                        g.unmark_neighbor(v, pos);
                    } else {
                        g.mark_neighbor(v, pos);
                    }
                }
            } else {
                g.add_vertex();
            }
            if round % 101 == 0 {
                g.check_consistency().unwrap();
            }
        }
        g.check_consistency().unwrap();
    }
}
