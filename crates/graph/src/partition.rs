//! Partitioning strategies for the [`ShardMap`](crate::ShardMap).
//!
//! Two ways to split a vertex space into `P` shards:
//!
//! * [`Partitioner::DegreeGreedy`] — the classic greedy makespan
//!   heuristic: visit vertices heaviest-first, each goes to the
//!   currently lightest shard. Balances per-shard adjacency work
//!   tightly but ignores *where* the edges go, so on any graph it cuts
//!   roughly a `(1 − 1/P)` share of the edges.
//! * [`Partitioner::Locality`] — a label-propagation partition grown by
//!   capacity-bounded multi-source BFS from high-degree seeds, then
//!   polished by a Fiduccia–Mattheyses-style refinement pass (single
//!   positive-gain vertex moves under a balance constraint). On graphs
//!   with community structure — the massive real graphs the source
//!   paper targets — this places whole neighborhoods on one shard, so
//!   far fewer updates touch the sharded write path's boundary
//!   protocol.
//!
//! The partition only ever changes *coordination cost*: for any fixed
//! partition the sharded engine's solution is a pure function of the
//! update stream (every protocol tie-break resolves on global vertex
//! ids), which the cross-partitioner equivalence suites pin.
//!
//! ```
//! use dynamis_graph::{DynamicGraph, Partitioner, ShardMap};
//!
//! // Two 4-cliques joined by a single bridge: an ideal 2-way split.
//! let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
//! edges.extend([(4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7), (3, 4)]);
//! let g = DynamicGraph::from_edges(8, &edges);
//! let local = ShardMap::with_partitioner(&g, 2, Partitioner::Locality);
//! assert_eq!(local.cut_edges(&g), 1); // only the bridge crosses
//! ```

use crate::DynamicGraph;
use std::collections::VecDeque;

/// How a [`ShardMap`](crate::ShardMap) assigns vertices to shards; see
/// the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioner {
    /// Heaviest-first greedy degree balance (locality-blind).
    #[default]
    DegreeGreedy,
    /// Capacity-bounded BFS/label-propagation growth from high-degree
    /// seeds plus boundary refinement; fresh vertices join the
    /// neighbor-majority shard.
    Locality,
}

impl Partitioner {
    /// Stable lowercase name (CLI values, bench reports).
    pub fn name(&self) -> &'static str {
        match self {
            Partitioner::DegreeGreedy => "greedy",
            Partitioner::Locality => "locality",
        }
    }
}

impl std::fmt::Display for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Partitioner {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" | "degree" | "degree-greedy" => Ok(Partitioner::DegreeGreedy),
            "locality" | "local" => Ok(Partitioner::Locality),
            other => Err(format!(
                "unknown partitioner `{other}` (expected `greedy` or `locality`)"
            )),
        }
    }
}

/// The per-shard vertex-count ceiling the locality partitioner (growth,
/// leftover placement, and refinement alike) never exceeds: an even
/// split `⌈live / shards⌉` plus ~6% slack, at least one vertex of
/// headroom so refinement can actually move something.
pub fn balance_cap(live: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    let even = live.div_ceil(shards);
    even + (live / (16 * shards)).max(1)
}

/// Maximum refinement sweeps. Each retained move strictly reduces the
/// cut so the loop terminates on its own; the cap only bounds worst-case
/// build time.
const MAX_REFINE_PASSES: usize = 8;

/// Computes locality-aware owners for every vertex slot of `g`
/// (`u16::MAX` for dead slots — the caller round-robins those). Pure
/// function of the graph *structure*: every scan is ordered by
/// `(degree, id)` or plain id, never by adjacency-list insertion order.
pub(crate) fn locality_owners(g: &DynamicGraph, shards: u16) -> Vec<u16> {
    let p = shards as usize;
    let mut owners = vec![u16::MAX; g.capacity()];
    if p == 1 {
        for v in g.vertices() {
            owners[v as usize] = 0;
        }
        return owners;
    }

    // Heaviest-first order drives seeding and leftover placement.
    let mut by_degree: Vec<u32> = g.vertices().collect();
    by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let live = by_degree.len();
    let cap = balance_cap(live, p);

    // Seeds: the highest-degree vertices, preferring ones not adjacent
    // to an earlier seed so the BFS regions start apart. If the graph is
    // too small or dense to find P independent hubs, fall back to the
    // next-heaviest vertices regardless of adjacency.
    let mut seeds: Vec<u32> = Vec::with_capacity(p);
    for &v in &by_degree {
        if seeds.len() == p {
            break;
        }
        if seeds.iter().all(|&s| !g.has_edge(s, v)) {
            seeds.push(v);
        }
    }
    if seeds.len() < p {
        for &v in &by_degree {
            if seeds.len() == p {
                break;
            }
            if !seeds.contains(&v) {
                seeds.push(v);
            }
        }
    }

    let mut load = vec![0usize; p];
    let mut queues: Vec<VecDeque<u32>> = vec![VecDeque::new(); p];
    for (s, &v) in seeds.iter().enumerate() {
        owners[v as usize] = s as u16;
        load[s] = 1;
        queues[s].push_back(v);
    }

    // Capacity-bounded multi-source BFS: shards take turns expanding one
    // frontier vertex each, claiming its unassigned neighbors (smallest
    // id first) until full. Round-robin turns keep the regions growing
    // at the same rate instead of letting shard 0 flood the graph.
    let mut nb = Vec::new();
    loop {
        let mut progressed = false;
        for s in 0..p {
            if load[s] >= cap {
                queues[s].clear();
                continue;
            }
            let Some(u) = queues[s].pop_front() else {
                continue;
            };
            progressed = true;
            nb.clear();
            nb.extend(g.neighbors(u));
            nb.sort_unstable();
            for &v in &nb {
                if owners[v as usize] == u16::MAX && load[s] < cap {
                    owners[v as usize] = s as u16;
                    load[s] += 1;
                    queues[s].push_back(v);
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // Leftovers (other components, capacity spill): join the
    // neighbor-majority shard when one has room, otherwise the lightest.
    let mut counts = vec![0u32; p];
    for &v in &by_degree {
        if owners[v as usize] != u16::MAX {
            continue;
        }
        let touched = count_neighbor_owners(g, &owners, v, &mut counts);
        let mut best: Option<usize> = None;
        for &s in &touched {
            if load[s] < cap && best.is_none_or(|b| counts[s] > counts[b]) {
                best = Some(s);
            }
        }
        let s = best.unwrap_or_else(|| (0..p).min_by_key(|&s| load[s]).unwrap());
        owners[v as usize] = s as u16;
        load[s] += 1;
        for s in touched {
            counts[s] = 0;
        }
    }

    // FM-style boundary refinement: sweep vertices in id order, moving a
    // vertex to the shard holding strictly more of its neighbors when
    // the balance cap allows. Every retained move reduces the cut by the
    // (positive) gain, so the sweeps converge; the pass cap is a time
    // bound, not a correctness requirement.
    for _ in 0..MAX_REFINE_PASSES {
        let mut moved = 0usize;
        for v in g.vertices() {
            let cur = owners[v as usize] as usize;
            let touched = count_neighbor_owners(g, &owners, v, &mut counts);
            let mut best = cur;
            for &s in &touched {
                if counts[s] > counts[best] || (counts[s] == counts[best] && s < best) {
                    best = s;
                }
            }
            if best != cur && counts[best] > counts[cur] && load[best] < cap {
                owners[v as usize] = best as u16;
                load[cur] -= 1;
                load[best] += 1;
                moved += 1;
            }
            for s in touched {
                counts[s] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }

    owners
}

/// Tallies how many of `v`'s neighbors each shard owns into `counts`
/// (caller-zeroed scratch) and returns the shards touched. Callers must
/// reset the touched entries before reuse.
fn count_neighbor_owners(
    g: &DynamicGraph,
    owners: &[u16],
    v: u32,
    counts: &mut [u32],
) -> Vec<usize> {
    let mut touched = Vec::new();
    for u in g.neighbors(v) {
        let o = owners[u as usize];
        if o == u16::MAX {
            continue;
        }
        let o = o as usize;
        if counts[o] == 0 {
            touched.push(o);
        }
        counts[o] += 1;
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardMap;

    /// `c` cliques of `size` vertices, chained by single bridge edges.
    fn clique_chain(c: usize, size: usize) -> DynamicGraph {
        let mut edges = Vec::new();
        for ci in 0..c {
            let base = (ci * size) as u32;
            for a in 0..size as u32 {
                for b in (a + 1)..size as u32 {
                    edges.push((base + a, base + b));
                }
            }
            if ci + 1 < c {
                edges.push((base + size as u32 - 1, base + size as u32));
            }
        }
        DynamicGraph::from_edges(c * size, &edges)
    }

    #[test]
    fn parses_cli_names() {
        assert_eq!("greedy".parse(), Ok(Partitioner::DegreeGreedy));
        assert_eq!("degree".parse(), Ok(Partitioner::DegreeGreedy));
        assert_eq!("locality".parse(), Ok(Partitioner::Locality));
        assert!("metis".parse::<Partitioner>().is_err());
        assert_eq!(Partitioner::Locality.to_string(), "locality");
    }

    #[test]
    fn locality_separates_clique_chain() {
        let g = clique_chain(4, 6);
        let map = ShardMap::with_partitioner(&g, 2, Partitioner::Locality);
        // A perfect split cuts exactly the middle bridge; allow the
        // greedy growth a little slack but demand real locality.
        assert!(
            map.cut_edges(&g) <= 3,
            "cut {} on a 1-bridge split",
            map.cut_edges(&g)
        );
        let greedy = ShardMap::degree_aware(&g, 2);
        assert!(map.cut_edges(&g) < greedy.cut_edges(&g));
    }

    #[test]
    fn locality_respects_the_balance_cap() {
        let g = clique_chain(4, 8);
        for p in [2usize, 3, 4] {
            let map = ShardMap::with_partitioner(&g, p, Partitioner::Locality);
            let cap = balance_cap(g.num_vertices(), p);
            for (s, &l) in map.vertex_loads(&g).iter().enumerate() {
                assert!(l <= cap, "shard {s} holds {l} > cap {cap} at P = {p}");
            }
        }
    }

    #[test]
    fn locality_covers_disconnected_components() {
        // Three components, no edges between them; everything must still
        // get exactly one owner.
        let mut edges = vec![(0, 1), (1, 2)];
        edges.extend([(3, 4), (4, 5)]);
        edges.extend([(6, 7)]);
        let g = DynamicGraph::from_edges(9, &edges); // vertex 8 isolated
        let map = ShardMap::with_partitioner(&g, 3, Partitioner::Locality);
        for v in 0..9u32 {
            assert!(map.owner(v) < 3);
        }
    }

    #[test]
    fn locality_is_a_pure_function_of_the_structure() {
        let g = clique_chain(3, 5);
        let a = locality_owners(&g, 3);
        let b = locality_owners(&g, 3);
        assert_eq!(a, b);
        // Same structure built in a different edge order.
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        edges.reverse();
        let g2 = DynamicGraph::from_edges(g.capacity(), &edges);
        assert_eq!(locality_owners(&g2, 3), a);
    }

    #[test]
    fn single_shard_and_tiny_graphs() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let one = locality_owners(&g, 1);
        assert!(one.iter().all(|&o| o == 0));
        // More shards than vertices: every vertex still owned, in range.
        let map = ShardMap::with_partitioner(&g, 8, Partitioner::Locality);
        assert!(map.owner(0) < 8 && map.owner(1) < 8);
    }
}
