//! Compact little-endian binary graph codec.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   4 bytes  "DYNG"
//! version u16      currently 1
//! slots   u32      number of vertex slots (capacity)
//! alive   ⌈slots/8⌉ bytes, LSB-first bitmap of live vertices
//! m       u64      edge count
//! edges   m × (u32, u32) with u < v
//! ```
//!
//! Unlike the text formats this codec is *exact*: dead vertex slots and
//! therefore vertex ids survive a round trip, so an engine can resume a
//! workload from a snapshot without id remapping.

use crate::error::GraphError;
use crate::{DynamicGraph, Result};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DYNG";
const VERSION: u16 = 1;

/// Little-endian reader over a byte slice (std-only stand-in for the
/// `bytes::Buf` cursor this module originally used).
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        head
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("length checked"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("length checked"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("length checked"))
    }
}

/// Serializes a graph into a fresh byte buffer.
pub fn encode_graph(g: &DynamicGraph) -> Vec<u8> {
    let slots = g.capacity();
    let bitmap_len = slots.div_ceil(8);
    let mut buf = Vec::with_capacity(4 + 2 + 4 + bitmap_len + 8 + g.num_edges() * 8);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(slots as u32).to_le_bytes());
    let mut bitmap = vec![0u8; bitmap_len];
    for v in g.vertices() {
        bitmap[(v / 8) as usize] |= 1 << (v % 8);
    }
    buf.extend_from_slice(&bitmap);
    let mut edges: Vec<_> = g.edges().collect();
    edges.sort_unstable();
    buf.extend_from_slice(&(edges.len() as u64).to_le_bytes());
    for (u, v) in edges {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Deserializes a graph from a byte slice produced by [`encode_graph`].
pub fn decode_graph(data: &[u8]) -> Result<DynamicGraph> {
    let corrupt = |message: &str| GraphError::Parse {
        line: 0,
        message: message.into(),
    };
    let mut data = Reader { data };
    if data.remaining() < 10 {
        return Err(corrupt("truncated header"));
    }
    if data.take(4) != MAGIC {
        return Err(corrupt("bad magic (not a dynamis binary graph)"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let slots = data.get_u32_le() as usize;
    let bitmap_len = slots.div_ceil(8);
    if data.remaining() < bitmap_len + 8 {
        return Err(corrupt("truncated bitmap"));
    }
    let bitmap = data.take(bitmap_len);

    let mut g = DynamicGraph::with_capacity(slots);
    g.add_vertices(slots);
    // Kill the dead slots after allocating all of them, so surviving ids
    // match the encoder's exactly.
    for v in 0..slots as u32 {
        if bitmap[(v / 8) as usize] & (1 << (v % 8)) == 0 {
            g.remove_vertex(v)
                .expect("freshly added vertex is removable");
        }
    }
    let m = data.get_u64_le() as usize;
    // checked_mul: a crafted edge count must yield Err, not an overflow
    // wrap that lets the read run past the slice and panic.
    let edge_bytes = m
        .checked_mul(8)
        .ok_or_else(|| corrupt("edge count overflows"))?;
    if data.remaining() < edge_bytes {
        return Err(corrupt("truncated edge section"));
    }
    for _ in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        if u >= v {
            return Err(corrupt("edge endpoints not strictly ordered"));
        }
        let inserted = g
            .insert_edge(u, v)
            .map_err(|e| corrupt(&format!("bad edge ({u},{v}): {e}")))?;
        if !inserted {
            return Err(corrupt("duplicate edge in binary stream"));
        }
    }
    if data.remaining() > 0 {
        return Err(corrupt("trailing bytes after edge section"));
    }
    Ok(g)
}

/// Writes a binary snapshot to a file.
pub fn write_binary<P: AsRef<Path>>(g: &DynamicGraph, path: P) -> Result<()> {
    let bytes = encode_graph(g);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads a binary snapshot from a file.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<DynamicGraph> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode_graph(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let g = DynamicGraph::from_edges(7, &[(0, 6), (1, 2), (2, 3), (5, 6)]);
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
        g2.check_consistency().unwrap();
    }

    #[test]
    fn round_trip_preserves_dead_slots() {
        let mut g = DynamicGraph::from_edges(5, &[(0, 1), (3, 4)]);
        g.remove_vertex(2).unwrap();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert!(!g2.is_alive(2));
        assert!(g2.is_alive(4));
        assert_eq!(g2.capacity(), 5);
        assert_eq!(g2.num_vertices(), 4);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = DynamicGraph::new();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(decode_graph(b"").is_err(), "empty");
        assert!(
            decode_graph(b"NOPE\x01\x00\x00\x00\x00\x00").is_err(),
            "magic"
        );
        let good = encode_graph(&DynamicGraph::from_edges(3, &[(0, 1)]));
        assert!(decode_graph(&good[..good.len() - 1]).is_err(), "truncated");
        let mut trailing = good.to_vec();
        trailing.push(0);
        assert!(decode_graph(&trailing).is_err(), "trailing bytes");
        let mut bad_version = good.to_vec();
        bad_version[4] = 9;
        assert!(decode_graph(&bad_version).is_err(), "version");
        // Overflowing edge count must be a clean Err, not a panic.
        let mut huge_m = Vec::new();
        huge_m.extend_from_slice(MAGIC);
        huge_m.extend_from_slice(&VERSION.to_le_bytes());
        huge_m.extend_from_slice(&0u32.to_le_bytes());
        huge_m.extend_from_slice(&(u64::MAX / 4).to_le_bytes());
        huge_m.extend_from_slice(&[0u8; 8]);
        assert!(decode_graph(&huge_m).is_err(), "overflowing edge count");
    }

    #[test]
    fn unordered_edge_is_rejected() {
        // Hand-build a stream with (1, 0) instead of (0, 1).
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(0b11);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_graph(&buf).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.dyng");
        let g = DynamicGraph::from_edges(4, &[(0, 2), (1, 3)]);
        write_binary(&g, &path).unwrap();
        let rd = read_binary(&path).unwrap();
        assert_eq!(rd.num_edges(), 2);
        assert!(rd.has_edge(1, 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = DynamicGraph::from_edges(10, &[(3, 7), (0, 9), (1, 2)]);
        assert_eq!(encode_graph(&g), encode_graph(&g.clone()));
    }
}
