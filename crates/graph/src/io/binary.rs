//! Compact little-endian binary graph codec.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   4 bytes  "DYNG"
//! version u16      currently 1
//! slots   u32      number of vertex slots (capacity)
//! alive   ⌈slots/8⌉ bytes, LSB-first bitmap of live vertices
//! m       u64      edge count
//! edges   m × (u32, u32) with u < v
//! ```
//!
//! Unlike the text formats this codec is *exact*: dead vertex slots and
//! therefore vertex ids survive a round trip, so an engine can resume a
//! workload from a snapshot without id remapping.

use crate::error::GraphError;
use crate::{DynamicGraph, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DYNG";
const VERSION: u16 = 1;

/// Serializes a graph into a fresh byte buffer.
pub fn encode_graph(g: &DynamicGraph) -> Bytes {
    let slots = g.capacity();
    let bitmap_len = slots.div_ceil(8);
    let mut buf = BytesMut::with_capacity(4 + 2 + 4 + bitmap_len + 8 + g.num_edges() * 8);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(slots as u32);
    let mut bitmap = vec![0u8; bitmap_len];
    for v in g.vertices() {
        bitmap[(v / 8) as usize] |= 1 << (v % 8);
    }
    buf.put_slice(&bitmap);
    let mut edges: Vec<_> = g.edges().collect();
    edges.sort_unstable();
    buf.put_u64_le(edges.len() as u64);
    for (u, v) in edges {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    buf.freeze()
}

/// Deserializes a graph from a byte slice produced by [`encode_graph`].
pub fn decode_graph(mut data: &[u8]) -> Result<DynamicGraph> {
    let corrupt = |message: &str| GraphError::Parse {
        line: 0,
        message: message.into(),
    };
    if data.remaining() < 10 {
        return Err(corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic (not a dynamis binary graph)"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let slots = data.get_u32_le() as usize;
    let bitmap_len = slots.div_ceil(8);
    if data.remaining() < bitmap_len + 8 {
        return Err(corrupt("truncated bitmap"));
    }
    let mut bitmap = vec![0u8; bitmap_len];
    data.copy_to_slice(&mut bitmap);

    let mut g = DynamicGraph::with_capacity(slots);
    g.add_vertices(slots);
    // Kill the dead slots after allocating all of them, so surviving ids
    // match the encoder's exactly.
    for v in 0..slots as u32 {
        if bitmap[(v / 8) as usize] & (1 << (v % 8)) == 0 {
            g.remove_vertex(v)
                .expect("freshly added vertex is removable");
        }
    }
    let m = data.get_u64_le() as usize;
    if data.remaining() < m * 8 {
        return Err(corrupt("truncated edge section"));
    }
    for _ in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        if u >= v {
            return Err(corrupt("edge endpoints not strictly ordered"));
        }
        let inserted = g
            .insert_edge(u, v)
            .map_err(|e| corrupt(&format!("bad edge ({u},{v}): {e}")))?;
        if !inserted {
            return Err(corrupt("duplicate edge in binary stream"));
        }
    }
    if data.has_remaining() {
        return Err(corrupt("trailing bytes after edge section"));
    }
    Ok(g)
}

/// Writes a binary snapshot to a file.
pub fn write_binary<P: AsRef<Path>>(g: &DynamicGraph, path: P) -> Result<()> {
    let bytes = encode_graph(g);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads a binary snapshot from a file.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<DynamicGraph> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode_graph(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let g = DynamicGraph::from_edges(7, &[(0, 6), (1, 2), (2, 3), (5, 6)]);
        let bytes = encode_graph(&g);
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
        g2.check_consistency().unwrap();
    }

    #[test]
    fn round_trip_preserves_dead_slots() {
        let mut g = DynamicGraph::from_edges(5, &[(0, 1), (3, 4)]);
        g.remove_vertex(2).unwrap();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert!(!g2.is_alive(2));
        assert!(g2.is_alive(4));
        assert_eq!(g2.capacity(), 5);
        assert_eq!(g2.num_vertices(), 4);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = DynamicGraph::new();
        let g2 = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(decode_graph(b"").is_err(), "empty");
        assert!(decode_graph(b"NOPE\x01\x00\x00\x00\x00\x00").is_err(), "magic");
        let good = encode_graph(&DynamicGraph::from_edges(3, &[(0, 1)]));
        assert!(decode_graph(&good[..good.len() - 1]).is_err(), "truncated");
        let mut trailing = good.to_vec();
        trailing.push(0);
        assert!(decode_graph(&trailing).is_err(), "trailing bytes");
        let mut bad_version = good.to_vec();
        bad_version[4] = 9;
        assert!(decode_graph(&bad_version).is_err(), "version");
    }

    #[test]
    fn unordered_edge_is_rejected() {
        // Hand-build a stream with (1, 0) instead of (0, 1).
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u32_le(2);
        buf.put_u8(0b11);
        buf.put_u64_le(1);
        buf.put_u32_le(1);
        buf.put_u32_le(0);
        assert!(decode_graph(&buf).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.dyng");
        let g = DynamicGraph::from_edges(4, &[(0, 2), (1, 3)]);
        write_binary(&g, &path).unwrap();
        let rd = read_binary(&path).unwrap();
        assert_eq!(rd.num_edges(), 2);
        assert!(rd.has_edge(1, 3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = DynamicGraph::from_edges(10, &[(3, 7), (0, 9), (1, 2)]);
        assert_eq!(encode_graph(&g), encode_graph(&g.clone()));
    }
}
