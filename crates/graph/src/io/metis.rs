//! METIS / KaHIP adjacency format.
//!
//! ```text
//! % comment
//! <n> <m> [fmt]
//! <neighbors of vertex 1, 1-based, space separated>
//! <neighbors of vertex 2>
//! ...
//! ```
//!
//! Every undirected edge appears in both endpoint lines. Only the
//! unweighted variant (`fmt` absent or `0`/`00`/`000`) is supported —
//! the KaMIS tool family reads exactly this flavor.

use crate::error::GraphError;
use crate::{CsrGraph, DynamicGraph, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a METIS document. Returns `(n, edges)` with 0-based ids and each
/// undirected edge listed once.
pub fn parse_metis<R: Read>(reader: R) -> Result<(usize, Vec<(u32, u32)>)> {
    let mut r = BufReader::new(reader);
    let mut buf = String::new();
    let mut line_no = 0usize;

    // Header: first non-comment line.
    let (n, declared_m) = loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            return Err(GraphError::Parse {
                line: line_no,
                message: "missing METIS header".into(),
            });
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let err = |message: String| GraphError::Parse {
            line: line_no,
            message,
        };
        let n: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("bad vertex count".into()))?;
        let m: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err("bad edge count".into()))?;
        if let Some(fmt) = it.next() {
            if fmt.chars().any(|c| c != '0') {
                return Err(err(format!("weighted METIS format `{fmt}` unsupported")));
            }
        }
        break (n, m);
    };

    let mut edges = Vec::with_capacity(declared_m);
    let mut vertex = 0u32; // 0-based id of the line being read
    while vertex < n as u32 {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("expected {n} adjacency lines, got {vertex}"),
            });
        }
        line_no += 1;
        let line = buf.trim();
        if line.starts_with('%') {
            continue;
        }
        for tok in line.split_whitespace() {
            let id: u64 = tok.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("bad neighbor id `{tok}`"),
            })?;
            if id == 0 || id > n as u64 {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("neighbor id {id} outside 1..={n}"),
                });
            }
            let u = vertex;
            let v = (id - 1) as u32;
            if u < v {
                // Each edge appears on both lines; record it from the
                // smaller endpoint only.
                edges.push((u, v));
            }
        }
        vertex += 1;
    }
    if edges.len() != declared_m {
        return Err(GraphError::Parse {
            line: line_no,
            message: format!("header declares {declared_m} edges, found {}", edges.len()),
        });
    }
    Ok((n, edges))
}

/// Reads a METIS file into a [`DynamicGraph`].
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<DynamicGraph> {
    let file = std::fs::File::open(path)?;
    let (n, edges) = parse_metis(file)?;
    Ok(DynamicGraph::from_edges(n, &edges))
}

/// Writes a graph in METIS format. Vertex ids are compacted to `1..=n`
/// over live vertices.
pub fn write_metis<W: Write>(g: &DynamicGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    // Compact live ids to a dense 1-based range.
    let live: Vec<u32> = g.vertices().collect();
    let mut rank = vec![0u32; g.capacity()];
    for (i, &v) in live.iter().enumerate() {
        rank[v as usize] = i as u32 + 1;
    }
    writeln!(w, "% dynamis export")?;
    writeln!(w, "{} {}", live.len(), g.num_edges())?;
    let mut neigh = Vec::new();
    for &v in &live {
        neigh.clear();
        neigh.extend(g.neighbors(v).map(|u| rank[u as usize]));
        neigh.sort_unstable();
        let mut first = true;
        for &r in &neigh {
            if first {
                write!(w, "{r}")?;
                first = false;
            } else {
                write!(w, " {r}")?;
            }
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Convenience: parse into a CSR snapshot directly.
pub fn read_metis_csr<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = std::fs::File::open(path)?;
    let (n, edges) = parse_metis(file)?;
    Ok(CsrGraph::from_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_small_instance() {
        // Path 1-2-3 in METIS terms.
        let text = "% tiny\n3 2\n2\n1 3\n2\n";
        let (n, edges) = parse_metis(text.as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn parse_accepts_isolated_vertices_and_fmt_zero() {
        let text = "4 1 0\n2\n1\n\n\n";
        let (n, edges) = parse_metis(text.as_bytes()).unwrap();
        assert_eq!(n, 4);
        assert_eq!(edges, vec![(0, 1)]);
    }

    #[test]
    fn parse_rejects_weighted_and_malformed() {
        assert!(parse_metis("3 2 011\n".as_bytes()).is_err(), "weighted");
        assert!(parse_metis("".as_bytes()).is_err(), "no header");
        assert!(parse_metis("3 2\n2\n1\n".as_bytes()).is_err(), "short file");
        assert!(
            parse_metis("2 1\n5\n1\n".as_bytes()).is_err(),
            "id out of range"
        );
        assert!(
            parse_metis("2 1\nx\n1\n".as_bytes()).is_err(),
            "garbage token"
        );
        assert!(
            parse_metis("3 5\n2\n1 3\n2\n".as_bytes()).is_err(),
            "edge count mismatch"
        );
    }

    #[test]
    fn round_trip() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 5), (2, 4), (3, 4), (4, 5)]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let (n, edges) = parse_metis(buf.as_slice()).unwrap();
        let g2 = DynamicGraph::from_edges(n, &edges);
        assert_eq!(g2.num_vertices(), 6);
        assert_eq!(g2.num_edges(), 5);
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn write_compacts_dead_vertex_ids() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
        g.remove_vertex(1).unwrap();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let (n, edges) = parse_metis(buf.as_slice()).unwrap();
        assert_eq!(n, 3, "live vertices only");
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_metis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.graph");
        let g = DynamicGraph::from_edges(3, &[(0, 1), (1, 2)]);
        write_metis(&g, std::fs::File::create(&path).unwrap()).unwrap();
        let rd = read_metis(&path).unwrap();
        assert_eq!(rd.num_edges(), 2);
        let rc = read_metis_csr(&path).unwrap();
        assert_eq!(rc.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
