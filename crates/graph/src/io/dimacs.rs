//! DIMACS clique/coloring challenge format.
//!
//! ```text
//! c an optional comment
//! p edge <n> <m>
//! e <u> <v>        (vertex ids are 1-based)
//! ```
//!
//! This is the format of the classic MIS/max-clique benchmark instances
//! (DIMACS second challenge, BHOSLIB). Ids are converted to this crate's
//! 0-based convention on read and back to 1-based on write.

use crate::error::GraphError;
use crate::{DynamicGraph, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a DIMACS `p edge` document. Returns `(n, edges)` with 0-based
/// vertex ids.
pub fn parse_dimacs<R: Read>(reader: R) -> Result<(usize, Vec<(u32, u32)>)> {
    let mut r = BufReader::new(reader);
    let mut buf = String::new();
    let mut n: Option<usize> = None;
    let mut declared_m = 0usize;
    let mut edges = Vec::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let err = |message: String| GraphError::Parse {
            line: line_no,
            message,
        };
        let mut it = line.split_whitespace();
        match it.next() {
            Some("p") => {
                if n.is_some() {
                    return Err(err("duplicate problem line".into()));
                }
                let kind = it.next().ok_or_else(|| err("missing format".into()))?;
                if kind != "edge" && kind != "col" {
                    return Err(err(format!("unsupported DIMACS format `{kind}`")));
                }
                let nv: usize = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad vertex count".into()))?;
                declared_m = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad edge count".into()))?;
                edges.reserve(declared_m);
                n = Some(nv);
            }
            Some("e") => {
                let nv = n.ok_or_else(|| err("edge before problem line".into()))?;
                let mut vertex = || -> Result<u32> {
                    let id: u64 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad vertex id".into()))?;
                    if id == 0 || id > nv as u64 {
                        return Err(err(format!("vertex id {id} outside 1..={nv}")));
                    }
                    Ok((id - 1) as u32)
                };
                let u = vertex()?;
                let v = vertex()?;
                edges.push((u, v));
            }
            Some(other) => {
                return Err(err(format!("unknown record `{other}`")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let n = n.ok_or(GraphError::Parse {
        line: line_no,
        message: "missing `p edge n m` line".into(),
    })?;
    // Benchmark files sometimes list each edge twice; only warn-level
    // validation is possible without a second pass, so accept any count
    // between m and 2m.
    if edges.len() != declared_m && edges.len() != 2 * declared_m {
        return Err(GraphError::Parse {
            line: line_no,
            message: format!("expected {declared_m} edges, found {}", edges.len()),
        });
    }
    Ok((n, edges))
}

/// Reads a DIMACS file into a [`DynamicGraph`].
pub fn read_dimacs<P: AsRef<Path>>(path: P) -> Result<DynamicGraph> {
    let file = std::fs::File::open(path)?;
    let (n, edges) = parse_dimacs(file)?;
    Ok(DynamicGraph::from_edges(n, &edges))
}

/// Writes a graph in DIMACS `p edge` format (1-based ids, each edge once).
pub fn write_dimacs<W: Write>(g: &DynamicGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c dynamis export")?;
    // DIMACS ids must cover every live vertex; dead slots are emitted as
    // isolated vertices, which DIMACS tools tolerate.
    writeln!(w, "p edge {} {}", g.capacity(), g.num_edges())?;
    let mut edges: Vec<_> = g.edges().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_instance() {
        let text = "c tiny\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let (n, edges) = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(n, 4);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn parse_accepts_col_format_and_doubled_edges() {
        let text = "p col 3 2\ne 1 2\ne 2 1\ne 2 3\ne 3 2\n";
        let (n, edges) = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges.len(), 4);
        let g = DynamicGraph::from_edges(n, &edges);
        assert_eq!(g.num_edges(), 2, "duplicates collapse");
    }

    #[test]
    fn parse_rejects_edge_before_header() {
        let err = parse_dimacs("e 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_out_of_range_ids() {
        let err = parse_dimacs("p edge 3 1\ne 1 4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("outside"));
        let err = parse_dimacs("p edge 3 1\ne 0 2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn parse_rejects_bad_counts_and_unknown_records() {
        assert!(parse_dimacs("p edge 3 5\ne 1 2\n".as_bytes()).is_err());
        assert!(parse_dimacs("p edge 3 1\nx 1 2\n".as_bytes()).is_err());
        assert!(parse_dimacs("p matrix 3 1\n".as_bytes()).is_err());
        assert!(parse_dimacs("".as_bytes()).is_err(), "missing header");
        assert!(parse_dimacs("p edge 2 0\np edge 2 0\n".as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 4), (2, 3)]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let (n, edges) = parse_dimacs(buf.as_slice()).unwrap();
        let g2 = DynamicGraph::from_edges(n, &edges);
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_dimacs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.col");
        let g = DynamicGraph::from_edges(4, &[(0, 3), (1, 2)]);
        write_dimacs(&g, std::fs::File::create(&path).unwrap()).unwrap();
        let rd = read_dimacs(&path).unwrap();
        assert_eq!(rd.num_edges(), 2);
        assert!(rd.has_edge(0, 3));
        std::fs::remove_file(&path).ok();
    }
}
