//! Plain-text edge-list I/O in the SNAP style: one `u v` pair per line,
//! `#`-prefixed comment lines ignored, whitespace-separated.

use crate::error::GraphError;
use crate::{CsrGraph, DynamicGraph, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses an edge list from a reader. Returns `(n, edges)` where `n` is one
/// more than the largest vertex id seen (0 for an empty input).
pub fn parse_edge_list<R: Read>(reader: R) -> Result<(usize, Vec<(u32, u32)>)> {
    let mut edges = Vec::new();
    let mut max_id: Option<u32> = None;
    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32> {
            tok.ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "expected two vertex ids".into(),
            })?
            .parse::<u32>()
            .map_err(|e| GraphError::Parse {
                line: line_no,
                message: e.to_string(),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = Some(max_id.map_or(u.max(v), |m| m.max(u).max(v)));
        edges.push((u, v));
    }
    Ok((max_id.map_or(0, |m| m as usize + 1), edges))
}

/// Reads an edge-list file into a [`DynamicGraph`].
pub fn read_dynamic<P: AsRef<Path>>(path: P) -> Result<DynamicGraph> {
    let file = std::fs::File::open(path)?;
    let (n, edges) = parse_edge_list(file)?;
    Ok(DynamicGraph::from_edges(n, &edges))
}

/// Reads an edge-list file into a [`CsrGraph`].
pub fn read_csr<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = std::fs::File::open(path)?;
    let (n, edges) = parse_edge_list(file)?;
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes a graph as an edge list with a statistics header comment.
pub fn write_edge_list<W: Write>(g: &DynamicGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# dynamis edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    let mut edges: Vec<_> = g.edges().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &DynamicGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_with_comments() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let (n, edges) = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = parse_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn parse_empty_input() {
        let (n, edges) = parse_edge_list("".as_bytes()).unwrap();
        assert_eq!(n, 0);
        assert!(edges.is_empty());
    }

    #[test]
    fn round_trip_through_bytes() {
        let g = DynamicGraph::from_edges(5, &[(0, 4), (1, 3), (2, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (n, edges) = parse_edge_list(buf.as_slice()).unwrap();
        assert_eq!(n, 5);
        let g2 = DynamicGraph::from_edges(n, &edges);
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = DynamicGraph::from_edges(4, &[(0, 1), (2, 3)]);
        write_edge_list_path(&g, &path).unwrap();
        let rd = read_dynamic(&path).unwrap();
        assert_eq!(rd.num_edges(), 2);
        let rc = read_csr(&path).unwrap();
        assert_eq!(rc.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
