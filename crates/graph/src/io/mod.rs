//! Graph readers and writers.
//!
//! Four interchange formats are supported, all loss-free for simple
//! undirected graphs:
//!
//! * [`edgelist`] — SNAP-style plain text, one `u v` pair per line
//!   (`#`/`%` comments ignored); the format of the paper's 22 datasets;
//! * [`dimacs`] — the DIMACS clique/coloring challenge format
//!   (`p edge n m` header, `e u v` lines, **1-based** ids) used by most
//!   published MIS/MVC benchmark instances;
//! * [`metis`] — the METIS/KaHIP adjacency format (`n m` header then one
//!   neighbor list per line, 1-based) used by KaMIS-family tools;
//! * [`binary`] — a compact little-endian binary codec built on the
//!   `bytes` crate, for fast workload snapshots.
//!
//! The edge-list names are re-exported at this level so existing call
//! sites (`io::read_dynamic`, `io::write_edge_list`, …) keep working.

pub mod binary;
pub mod dimacs;
pub mod edgelist;
pub mod metis;

pub use binary::{decode_graph, encode_graph, read_binary, write_binary};
pub use dimacs::{parse_dimacs, read_dimacs, write_dimacs};
pub use edgelist::{
    parse_edge_list, read_csr, read_dynamic, write_edge_list, write_edge_list_path,
};
pub use metis::{parse_metis, read_metis, write_metis};
