//! Stable vertex → shard ownership for partitioned maintenance.
//!
//! A [`ShardMap`] assigns every vertex slot of a graph to exactly one of
//! `P` shards and **never reassigns it**: ownership is decided once —
//! degree-aware for the vertices present when the map is built,
//! round-robin for vertices that appear later — and stays fixed for the
//! lifetime of the slot, across vertex removal and slot recycling. That
//! stability is what lets every participant of a sharded computation
//! (worker cells, a coordinator, readers merging per-shard views) agree
//! on who owns a vertex without ever exchanging the map again.
//!
//! Two initial-assignment policies exist (see [`Partitioner`]):
//! [`ShardMap::degree_aware`] balances *degree* — vertices visited in
//! decreasing-degree order, each to the currently lightest shard (ties
//! toward the lowest index), the classic greedy makespan heuristic — and
//! [`ShardMap::locality_aware`] additionally balances *edge locality*,
//! growing capacity-bounded BFS regions from high-degree seeds and
//! refining the boundary so far fewer edges cross shards. Fresh vertices
//! follow the map's policy too: round-robin for a degree-aware map, the
//! neighbor-majority shard for a locality-aware one (with round-robin as
//! the isolated-vertex fallback) — see [`ShardMap::assign_fresh_near`].
//!
//! ```
//! use dynamis_graph::{DynamicGraph, ShardMap};
//!
//! let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (4, 5)]);
//! let mut map = ShardMap::degree_aware(&g, 2);
//! assert_eq!(map.shards(), 2);
//! // The hub (vertex 0, degree 3) and the light pair end up on
//! // different shards; every slot has exactly one owner.
//! assert_ne!(map.owner(0), map.owner(4));
//! // Fresh vertices get a stable round-robin owner on first sight.
//! let first = map.assign_fresh(6);
//! assert_eq!(map.owner(6), first);
//! ```

use crate::partition::{locality_owners, Partitioner};
use crate::DynamicGraph;

/// An immutable-once-assigned map from vertex id to owning shard.
///
/// See the [module docs](self) for the assignment policies.
#[derive(Debug, Clone)]
pub struct ShardMap {
    owners: Vec<u16>,
    shards: u16,
    /// Next round-robin shard for ids assigned after construction.
    next_rr: u16,
    /// The policy that built the map; also selects the fresh-id policy.
    strategy: Partitioner,
}

impl ShardMap {
    /// Builds a map over `g`'s vertex slots for `shards` shards
    /// (`shards ≥ 1`; it is clamped to at least 1), balancing the total
    /// degree owned by each shard. Dead slots are assigned round-robin
    /// so a recycled id already has a stable owner.
    pub fn degree_aware(g: &DynamicGraph, shards: usize) -> Self {
        let shards = shards.clamp(1, u16::MAX as usize) as u16;
        let cap = g.capacity();
        let mut map = ShardMap {
            owners: vec![u16::MAX; cap],
            shards,
            next_rr: 0,
            strategy: Partitioner::DegreeGreedy,
        };
        if shards == 1 {
            map.owners.fill(0);
            return map;
        }
        // Live vertices: heaviest first, ties toward the smaller id so
        // the assignment is a pure function of the graph.
        let mut by_degree: Vec<u32> = g.vertices().collect();
        by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        let mut load = vec![0u64; shards as usize];
        for v in by_degree {
            let lightest = (0..shards).min_by_key(|&s| load[s as usize]).unwrap();
            map.owners[v as usize] = lightest;
            load[lightest as usize] += g.degree(v) as u64 + 1;
        }
        map.fill_dead_slots();
        map
    }

    /// Builds a locality-aware map: capacity-bounded BFS growth from
    /// high-degree seeds plus FM-style boundary refinement (see
    /// [`crate::partition`]). Dead slots are assigned round-robin, same
    /// as [`ShardMap::degree_aware`].
    pub fn locality_aware(g: &DynamicGraph, shards: usize) -> Self {
        let shards = shards.clamp(1, u16::MAX as usize) as u16;
        let mut map = ShardMap {
            owners: locality_owners(g, shards),
            shards,
            next_rr: 0,
            strategy: Partitioner::Locality,
        };
        map.fill_dead_slots();
        map
    }

    /// Builds with the given [`Partitioner`] — the single dispatch point
    /// the sharded engine and benches use.
    pub fn with_partitioner(g: &DynamicGraph, shards: usize, partitioner: Partitioner) -> Self {
        match partitioner {
            Partitioner::DegreeGreedy => Self::degree_aware(g, shards),
            Partitioner::Locality => Self::locality_aware(g, shards),
        }
    }

    /// Stable round-robin for the slots construction left unassigned, so
    /// recycling a dead id never changes its owner mid-run.
    fn fill_dead_slots(&mut self) {
        for slot in self.owners.iter_mut() {
            if *slot == u16::MAX {
                *slot = self.next_rr;
                self.next_rr = (self.next_rr + 1) % self.shards;
            }
        }
    }

    /// Number of shards this map partitions into.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` was never assigned (not in the initial graph and
    /// never passed to [`ShardMap::assign_fresh`]).
    #[inline]
    pub fn owner(&self, v: u32) -> usize {
        self.owners[v as usize] as usize
    }

    /// Number of vertex slots the map covers.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.owners.len()
    }

    /// Assigns an owner to a fresh vertex id (round-robin) and returns
    /// it. Calling it again for an already-assigned id is a no-op that
    /// returns the existing owner — assignment is write-once.
    pub fn assign_fresh(&mut self, v: u32) -> usize {
        let idx = v as usize;
        if idx >= self.owners.len() {
            self.owners.resize(idx + 1, u16::MAX);
        }
        if self.owners[idx] == u16::MAX {
            self.owners[idx] = self.next_rr;
            self.next_rr = (self.next_rr + 1) % self.shards;
        }
        self.owners[idx] as usize
    }

    /// Assigns an owner to a fresh vertex id given its neighbors at
    /// insertion time, honoring the map's policy: a locality-aware map
    /// picks the shard owning the most of `neighbors` (ties toward the
    /// lowest shard index, round-robin when none is owned yet); a
    /// degree-aware map keeps plain round-robin. Write-once like
    /// [`ShardMap::assign_fresh`]: re-assigning an owned id is a no-op
    /// returning the existing owner, so the assignment is deterministic
    /// across replays of the same update stream.
    pub fn assign_fresh_near(&mut self, v: u32, neighbors: &[u32]) -> usize {
        let idx = v as usize;
        if idx < self.owners.len() && self.owners[idx] != u16::MAX {
            return self.owners[idx] as usize;
        }
        if self.strategy == Partitioner::DegreeGreedy {
            return self.assign_fresh(v);
        }
        let mut counts = vec![0u32; self.shards as usize];
        let mut any = false;
        for &n in neighbors {
            if let Some(&o) = self.owners.get(n as usize) {
                if o != u16::MAX {
                    counts[o as usize] += 1;
                    any = true;
                }
            }
        }
        if !any {
            return self.assign_fresh(v);
        }
        let best = (0..self.shards as usize)
            .max_by_key(|&s| (counts[s], std::cmp::Reverse(s)))
            .unwrap() as u16;
        if idx >= self.owners.len() {
            self.owners.resize(idx + 1, u16::MAX);
        }
        self.owners[idx] = best;
        best as usize
    }

    /// The policy that built this map (and steers its fresh-id
    /// assignment).
    #[inline]
    pub fn partitioner(&self) -> Partitioner {
        self.strategy
    }

    /// Iterates the vertex ids owned by `shard`.
    pub fn owned_by(&self, shard: usize) -> impl Iterator<Item = u32> + '_ {
        self.owners
            .iter()
            .enumerate()
            .filter(move |&(_, &o)| o as usize == shard)
            .map(|(v, _)| v as u32)
    }

    /// Total degree owned by each shard in `g` — the balance the
    /// degree-aware assignment optimizes (exposed for tests and stats).
    pub fn degree_loads(&self, g: &DynamicGraph) -> Vec<u64> {
        let mut load = vec![0u64; self.shards as usize];
        for v in g.vertices() {
            load[self.owner(v)] += g.degree(v) as u64;
        }
        load
    }

    /// Number of live vertices of `g` owned by each shard — the balance
    /// the locality partitioner's capacity bound constrains.
    pub fn vertex_loads(&self, g: &DynamicGraph) -> Vec<usize> {
        let mut load = vec![0usize; self.shards as usize];
        for v in g.vertices() {
            load[self.owner(v)] += 1;
        }
        load
    }

    /// Number of edges of `g` whose endpoints live on different shards —
    /// the cut the boundary protocol pays for.
    pub fn cut_edges(&self, g: &DynamicGraph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_path() -> DynamicGraph {
        // Vertex 0 is a degree-6 hub; 7..10 a light path.
        DynamicGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (7, 8),
                (8, 9),
                (9, 10),
            ],
        )
    }

    #[test]
    fn every_slot_gets_exactly_one_owner() {
        let g = star_plus_path();
        let map = ShardMap::degree_aware(&g, 3);
        for v in 0..g.capacity() as u32 {
            assert!(map.owner(v) < 3);
        }
        let total: usize = (0..3).map(|s| map.owned_by(s).count()).sum();
        assert_eq!(total, g.capacity());
    }

    #[test]
    fn degree_loads_are_balanced() {
        let g = star_plus_path();
        let map = ShardMap::degree_aware(&g, 2);
        let loads = map.degree_loads(&g);
        // The hub alone carries 6 of 18 half-edges; greedy balance must
        // not put the whole path on the hub's shard.
        let (a, b) = (loads[0], loads[1]);
        assert!(a.abs_diff(b) <= 6, "loads {loads:?} too skewed");
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = star_plus_path();
        let map = ShardMap::degree_aware(&g, 1);
        assert!((0..g.capacity() as u32).all(|v| map.owner(v) == 0));
        assert_eq!(map.cut_edges(&g), 0);
    }

    #[test]
    fn fresh_assignment_is_stable_round_robin() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let mut map = ShardMap::degree_aware(&g, 4);
        let a = map.assign_fresh(2);
        let b = map.assign_fresh(3);
        assert_ne!(a, b, "consecutive fresh ids round-robin");
        assert_eq!(map.assign_fresh(2), a, "re-assignment is a no-op");
        assert_eq!(map.owner(3), b);
    }

    #[test]
    fn dead_slots_are_preassigned() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1)]);
        g.remove_vertex(3).unwrap();
        let mut map = ShardMap::degree_aware(&g, 2);
        let owner = map.owner(3); // dead slot still owned
        assert_eq!(map.assign_fresh(3), owner, "recycled id keeps its owner");
    }

    #[test]
    fn locality_fresh_ids_join_the_neighbor_majority() {
        // Two triangles; a 2-way locality split puts one on each shard.
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let mut map = ShardMap::locality_aware(&g, 2);
        assert_eq!(Partitioner::Locality, map.partitioner());
        let home = map.owner(3);
        assert_ne!(map.owner(0), home, "triangles split across shards");
        // A fresh vertex wired into the second triangle follows it.
        assert_eq!(map.assign_fresh_near(6, &[3, 4, 5]), home);
        // Write-once: a different neighborhood later cannot rebind it.
        assert_eq!(map.assign_fresh_near(6, &[0, 1, 2]), home);
        // No known neighbors: falls back to round-robin, still in range.
        assert!(map.assign_fresh_near(7, &[]) < 2);
    }

    #[test]
    fn degree_greedy_fresh_ids_stay_round_robin() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let mut a = ShardMap::degree_aware(&g, 4);
        let mut b = ShardMap::degree_aware(&g, 4);
        // Neighbor hints must not change the degree-greedy policy:
        // replays that mix the two entry points agree.
        assert_eq!(a.assign_fresh_near(2, &[0, 1]), b.assign_fresh(2));
        assert_eq!(a.assign_fresh(3), b.assign_fresh_near(3, &[2]));
    }

    #[test]
    fn assignment_is_deterministic() {
        let g = star_plus_path();
        let m1 = ShardMap::degree_aware(&g, 3);
        let m2 = ShardMap::degree_aware(&g, 3);
        assert!((0..g.capacity() as u32).all(|v| m1.owner(v) == m2.owner(v)));
    }
}
