//! Stable vertex → shard ownership for partitioned maintenance.
//!
//! A [`ShardMap`] assigns every vertex slot of a graph to exactly one of
//! `P` shards and **never reassigns it**: ownership is decided once —
//! degree-aware for the vertices present when the map is built,
//! round-robin for vertices that appear later — and stays fixed for the
//! lifetime of the slot, across vertex removal and slot recycling. That
//! stability is what lets every participant of a sharded computation
//! (worker cells, a coordinator, readers merging per-shard views) agree
//! on who owns a vertex without ever exchanging the map again.
//!
//! The initial assignment balances *degree*, not vertex count: vertices
//! are visited in decreasing-degree order and each goes to the currently
//! lightest shard (ties broken toward the lowest shard index), the
//! classic greedy makespan heuristic. On skewed (power-law) graphs this
//! keeps per-shard adjacency work within a few percent of even, where a
//! round-robin split can leave one shard owning most of the half-edges.
//!
//! ```
//! use dynamis_graph::{DynamicGraph, ShardMap};
//!
//! let g = DynamicGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (4, 5)]);
//! let mut map = ShardMap::degree_aware(&g, 2);
//! assert_eq!(map.shards(), 2);
//! // The hub (vertex 0, degree 3) and the light pair end up on
//! // different shards; every slot has exactly one owner.
//! assert_ne!(map.owner(0), map.owner(4));
//! // Fresh vertices get a stable round-robin owner on first sight.
//! let first = map.assign_fresh(6);
//! assert_eq!(map.owner(6), first);
//! ```

use crate::DynamicGraph;

/// An immutable-once-assigned map from vertex id to owning shard.
///
/// See the [module docs](self) for the assignment policy.
#[derive(Debug, Clone)]
pub struct ShardMap {
    owners: Vec<u16>,
    shards: u16,
    /// Next round-robin shard for ids assigned after construction.
    next_rr: u16,
}

impl ShardMap {
    /// Builds a map over `g`'s vertex slots for `shards` shards
    /// (`shards ≥ 1`; it is clamped to at least 1), balancing the total
    /// degree owned by each shard. Dead slots are assigned round-robin
    /// so a recycled id already has a stable owner.
    pub fn degree_aware(g: &DynamicGraph, shards: usize) -> Self {
        let shards = shards.clamp(1, u16::MAX as usize) as u16;
        let cap = g.capacity();
        let mut map = ShardMap {
            owners: vec![u16::MAX; cap],
            shards,
            next_rr: 0,
        };
        if shards == 1 {
            map.owners.fill(0);
            return map;
        }
        // Live vertices: heaviest first, ties toward the smaller id so
        // the assignment is a pure function of the graph.
        let mut by_degree: Vec<u32> = g.vertices().collect();
        by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        let mut load = vec![0u64; shards as usize];
        for v in by_degree {
            let lightest = (0..shards).min_by_key(|&s| load[s as usize]).unwrap();
            map.owners[v as usize] = lightest;
            load[lightest as usize] += g.degree(v) as u64 + 1;
        }
        // Dead slots: stable round-robin, so recycling an id never
        // changes its owner mid-run.
        for slot in map.owners.iter_mut() {
            if *slot == u16::MAX {
                *slot = map.next_rr;
                map.next_rr = (map.next_rr + 1) % shards;
            }
        }
        map
    }

    /// Number of shards this map partitions into.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` was never assigned (not in the initial graph and
    /// never passed to [`ShardMap::assign_fresh`]).
    #[inline]
    pub fn owner(&self, v: u32) -> usize {
        self.owners[v as usize] as usize
    }

    /// Number of vertex slots the map covers.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.owners.len()
    }

    /// Assigns an owner to a fresh vertex id (round-robin) and returns
    /// it. Calling it again for an already-assigned id is a no-op that
    /// returns the existing owner — assignment is write-once.
    pub fn assign_fresh(&mut self, v: u32) -> usize {
        let idx = v as usize;
        if idx >= self.owners.len() {
            self.owners.resize(idx + 1, u16::MAX);
        }
        if self.owners[idx] == u16::MAX {
            self.owners[idx] = self.next_rr;
            self.next_rr = (self.next_rr + 1) % self.shards;
        }
        self.owners[idx] as usize
    }

    /// Iterates the vertex ids owned by `shard`.
    pub fn owned_by(&self, shard: usize) -> impl Iterator<Item = u32> + '_ {
        self.owners
            .iter()
            .enumerate()
            .filter(move |&(_, &o)| o as usize == shard)
            .map(|(v, _)| v as u32)
    }

    /// Total degree owned by each shard in `g` — the balance the
    /// degree-aware assignment optimizes (exposed for tests and stats).
    pub fn degree_loads(&self, g: &DynamicGraph) -> Vec<u64> {
        let mut load = vec![0u64; self.shards as usize];
        for v in g.vertices() {
            load[self.owner(v)] += g.degree(v) as u64;
        }
        load
    }

    /// Number of edges of `g` whose endpoints live on different shards —
    /// the cut the boundary protocol pays for.
    pub fn cut_edges(&self, g: &DynamicGraph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_path() -> DynamicGraph {
        // Vertex 0 is a degree-6 hub; 7..10 a light path.
        DynamicGraph::from_edges(
            11,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (7, 8),
                (8, 9),
                (9, 10),
            ],
        )
    }

    #[test]
    fn every_slot_gets_exactly_one_owner() {
        let g = star_plus_path();
        let map = ShardMap::degree_aware(&g, 3);
        for v in 0..g.capacity() as u32 {
            assert!(map.owner(v) < 3);
        }
        let total: usize = (0..3).map(|s| map.owned_by(s).count()).sum();
        assert_eq!(total, g.capacity());
    }

    #[test]
    fn degree_loads_are_balanced() {
        let g = star_plus_path();
        let map = ShardMap::degree_aware(&g, 2);
        let loads = map.degree_loads(&g);
        // The hub alone carries 6 of 18 half-edges; greedy balance must
        // not put the whole path on the hub's shard.
        let (a, b) = (loads[0], loads[1]);
        assert!(a.abs_diff(b) <= 6, "loads {loads:?} too skewed");
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = star_plus_path();
        let map = ShardMap::degree_aware(&g, 1);
        assert!((0..g.capacity() as u32).all(|v| map.owner(v) == 0));
        assert_eq!(map.cut_edges(&g), 0);
    }

    #[test]
    fn fresh_assignment_is_stable_round_robin() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let mut map = ShardMap::degree_aware(&g, 4);
        let a = map.assign_fresh(2);
        let b = map.assign_fresh(3);
        assert_ne!(a, b, "consecutive fresh ids round-robin");
        assert_eq!(map.assign_fresh(2), a, "re-assignment is a no-op");
        assert_eq!(map.owner(3), b);
    }

    #[test]
    fn dead_slots_are_preassigned() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1)]);
        g.remove_vertex(3).unwrap();
        let mut map = ShardMap::degree_aware(&g, 2);
        let owner = map.owner(3); // dead slot still owned
        assert_eq!(map.assign_fresh(3), owner, "recycled id keeps its owner");
    }

    #[test]
    fn assignment_is_deterministic() {
        let g = star_plus_path();
        let m1 = ShardMap::degree_aware(&g, 3);
        let m2 = ShardMap::degree_aware(&g, 3);
        assert!((0..g.capacity() as u32).all(|v| m1.owner(v) == m2.owner(v)));
    }
}
