//! The dynamic-graph update vocabulary shared by engines and workload
//! generators: the paper's four operations (§II) — insert/delete a vertex
//! or an edge.

use crate::{DynamicGraph, Result};

/// A single graph update, in the paper's four-operation model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(u, v)`; both endpoints already exist.
    InsertEdge(u32, u32),
    /// Remove existing edge `(u, v)`.
    RemoveEdge(u32, u32),
    /// Insert a fresh vertex together with its initial incident edges.
    /// `id` is the slot a consumer's [`DynamicGraph`] will assign when the
    /// operations are replayed in order (vertex slots are recycled
    /// deterministically).
    InsertVertex {
        /// The vertex id the consumer graph will allocate.
        id: u32,
        /// Initial neighbors of the inserted vertex.
        neighbors: Vec<u32>,
    },
    /// Remove vertex `v` and all incident edges.
    RemoveVertex(u32),
}

/// Applies one update to a graph. The update must be valid for `g`
/// (guaranteed when replaying a generated stream in order onto the
/// stream's starting graph).
pub fn apply_update(g: &mut DynamicGraph, u: &Update) -> Result<()> {
    match u {
        Update::InsertEdge(a, b) => {
            g.insert_edge(*a, *b)?;
        }
        Update::RemoveEdge(a, b) => {
            g.remove_edge(*a, *b)?;
        }
        Update::InsertVertex { id, neighbors } => {
            let got = g.add_vertex();
            debug_assert_eq!(got, *id, "vertex id allocation diverged");
            for &n in neighbors {
                g.insert_edge(got, n)?;
            }
        }
        Update::RemoveVertex(v) => {
            g.remove_vertex(*v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_all_four_ops() {
        let mut g = DynamicGraph::from_edges(3, &[(0, 1)]);
        apply_update(&mut g, &Update::InsertEdge(1, 2)).unwrap();
        assert!(g.has_edge(1, 2));
        apply_update(&mut g, &Update::RemoveEdge(0, 1)).unwrap();
        assert!(!g.has_edge(0, 1));
        apply_update(
            &mut g,
            &Update::InsertVertex {
                id: 3,
                neighbors: vec![0, 2],
            },
        )
        .unwrap();
        assert_eq!(g.degree(3), 2);
        apply_update(&mut g, &Update::RemoveVertex(1)).unwrap();
        assert!(!g.is_alive(1));
        g.check_consistency().unwrap();
    }
}
