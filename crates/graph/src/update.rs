//! The dynamic-graph update vocabulary shared by engines and workload
//! generators: the paper's four operations (§II) — insert/delete a vertex
//! or an edge.

use crate::{DynamicGraph, GraphError, Result};

/// A single graph update, in the paper's four-operation model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(u, v)`; both endpoints already exist.
    InsertEdge(u32, u32),
    /// Remove existing edge `(u, v)`.
    RemoveEdge(u32, u32),
    /// Insert a fresh vertex together with its initial incident edges.
    /// `id` is the slot a consumer's [`DynamicGraph`] will assign when the
    /// operations are replayed in order (vertex slots are recycled
    /// deterministically).
    InsertVertex {
        /// The vertex id the consumer graph will allocate.
        id: u32,
        /// Initial neighbors of the inserted vertex.
        neighbors: Vec<u32>,
    },
    /// Remove vertex `v` and all incident edges.
    RemoveVertex(u32),
}

/// Applies one update to a graph. Invalid updates — dead endpoints,
/// self-loops, or an [`Update::InsertVertex`] whose `id` diverges from
/// the id the graph would allocate — are rejected with the matching
/// [`GraphError`] *before* any mutation, so a failed call leaves `g`
/// unchanged (replaying a generated stream in order onto the stream's
/// starting graph never fails).
pub fn apply_update(g: &mut DynamicGraph, u: &Update) -> Result<()> {
    match u {
        Update::InsertEdge(a, b) => {
            g.insert_edge(*a, *b)?;
        }
        Update::RemoveEdge(a, b) => {
            g.remove_edge(*a, *b)?;
        }
        Update::InsertVertex { id, neighbors } => {
            let next = g.next_vertex_id();
            if next != *id {
                return Err(GraphError::IdMismatch {
                    expected: *id,
                    got: next,
                });
            }
            for &n in neighbors {
                if !g.is_alive(n) {
                    return Err(GraphError::VertexNotFound(n));
                }
            }
            let got = g.add_vertex();
            for &n in neighbors {
                g.insert_edge(got, n)?;
            }
        }
        Update::RemoveVertex(v) => {
            g.remove_vertex(*v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_all_four_ops() {
        let mut g = DynamicGraph::from_edges(3, &[(0, 1)]);
        apply_update(&mut g, &Update::InsertEdge(1, 2)).unwrap();
        assert!(g.has_edge(1, 2));
        apply_update(&mut g, &Update::RemoveEdge(0, 1)).unwrap();
        assert!(!g.has_edge(0, 1));
        apply_update(
            &mut g,
            &Update::InsertVertex {
                id: 3,
                neighbors: vec![0, 2],
            },
        )
        .unwrap();
        assert_eq!(g.degree(3), 2);
        apply_update(&mut g, &Update::RemoveVertex(1)).unwrap();
        assert!(!g.is_alive(1));
        g.check_consistency().unwrap();
    }

    #[test]
    fn divergent_vertex_id_is_rejected_without_mutation() {
        let mut g = DynamicGraph::from_edges(3, &[(0, 1)]);
        let before = g.num_vertices();
        let err = apply_update(
            &mut g,
            &Update::InsertVertex {
                id: 7, // graph would allocate 3
                neighbors: vec![0],
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            GraphError::IdMismatch {
                expected: 7,
                got: 3
            }
        );
        assert_eq!(g.num_vertices(), before, "rejected update must not mutate");
        g.check_consistency().unwrap();
    }

    #[test]
    fn dead_neighbor_in_vertex_insert_is_rejected_without_mutation() {
        let mut g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let err = apply_update(
            &mut g,
            &Update::InsertVertex {
                id: 2,
                neighbors: vec![0, 9],
            },
        )
        .unwrap_err();
        assert_eq!(err, GraphError::VertexNotFound(9));
        assert_eq!(g.num_vertices(), 2);
        g.check_consistency().unwrap();
    }
}
