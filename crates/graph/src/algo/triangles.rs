//! Triangle counting and clustering coefficients.
//!
//! Uses the *forward* algorithm: orient every edge from the endpoint that
//! appears earlier in a degeneracy ordering to the later one, then
//! intersect out-neighborhoods. Runtime O(m · degeneracy), which is
//! near-linear on the power-law bounded graphs this workspace targets
//! (PLB graphs with β > 2 have bounded average degeneracy).

use super::cores::core_decomposition;
use crate::CsrGraph;

/// Counts the triangles of `g` and returns `(total, per_vertex)` where
/// `per_vertex[v]` is the number of triangles containing `v`.
pub fn count_triangles(g: &CsrGraph) -> (u64, Vec<u64>) {
    let n = g.num_vertices();
    let mut per_vertex = vec![0u64; n];
    if n == 0 {
        return (0, per_vertex);
    }
    let pos = core_decomposition(g).positions();
    // Forward adjacency: neighbors later in the degeneracy order.
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        for &u in g.neighbors(v) {
            if pos[u as usize] > pos[v as usize] {
                fwd[v as usize].push(u);
            }
        }
        fwd[v as usize].sort_unstable();
    }
    let mut total = 0u64;
    for v in 0..n as u32 {
        let fv = &fwd[v as usize];
        for &u in fv {
            // Merge-intersect fwd[v] and fwd[u]; every common w closes a
            // triangle v-u-w counted exactly once.
            let fu = &fwd[u as usize];
            let (mut i, mut j) = (0, 0);
            while i < fv.len() && j < fu.len() {
                match fv[i].cmp(&fu[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let w = fv[i];
                        total += 1;
                        per_vertex[v as usize] += 1;
                        per_vertex[u as usize] += 1;
                        per_vertex[w as usize] += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    (total, per_vertex)
}

/// Local clustering coefficient of every vertex:
/// `2 · triangles(v) / (d(v) · (d(v) − 1))`, 0 for degree < 2.
pub fn clustering_coefficients(g: &CsrGraph) -> Vec<f64> {
    let (_, tri) = count_triangles(g);
    (0..g.num_vertices() as u32)
        .map(|v| {
            let d = g.degree(v) as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d * (d - 1.0))
            }
        })
        .collect()
}

/// Global clustering coefficient (transitivity):
/// `3 · #triangles / #wedges`, 0 when the graph has no wedge.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let (tri, _) = count_triangles(g);
    let wedges: u64 = (0..g.num_vertices() as u32)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    /// O(n³) reference count.
    fn naive_triangles(g: &CsrGraph) -> u64 {
        let n = g.num_vertices() as u32;
        let mut t = 0;
        for u in 0..n {
            for v in u + 1..n {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in v + 1..n {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        t += 1;
                    }
                }
            }
        }
        t
    }

    #[test]
    fn complete_graph_triangle_count() {
        // K_n has C(n, 3) triangles, each vertex in C(n-1, 2) of them.
        let g = complete(6);
        let (total, per) = count_triangles(&g);
        assert_eq!(total, 20);
        assert!(per.iter().all(|&t| t == 10));
    }

    #[test]
    fn triangle_free_graphs() {
        let path = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(count_triangles(&path).0, 0);
        let c4 = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&c4).0, 0);
        assert_eq!(global_clustering(&c4), 0.0);
    }

    #[test]
    fn single_triangle_per_vertex_counts() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let (total, per) = count_triangles(&g);
        assert_eq!(total, 1);
        assert_eq!(per, vec![1, 1, 1, 0]);
    }

    #[test]
    fn matches_naive_on_random_graph() {
        let mut state = 0x5deece66du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 40u32;
        let mut edges = Vec::new();
        for _ in 0..220 {
            let (u, v) = ((rng() % n as u64) as u32, (rng() % n as u64) as u32);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        assert_eq!(count_triangles(&g).0, naive_triangles(&g));
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = complete(5);
        assert!(clustering_coefficients(&g).iter().all(|&c| c == 1.0));
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_paw_graph() {
        // Triangle 0-1-2 with pendant 3 on vertex 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cc = clustering_coefficients(&g);
        assert_eq!(cc[0], 1.0);
        assert_eq!(cc[1], 1.0);
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[3], 0.0);
        // 3 triangles-times-3 over wedges: wedges = 1 + 1 + 3 = 5.
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(count_triangles(&g).0, 0);
        assert_eq!(global_clustering(&g), 0.0);
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(count_triangles(&g).0, 0);
        assert_eq!(clustering_coefficients(&g), vec![0.0, 0.0]);
    }
}
