//! Breadth-first traversal, connected components, and the double-sweep
//! diameter lower bound.

use crate::CsrGraph;

/// Distance value for vertices unreachable from the BFS source.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source`. Unreachable vertices get [`UNREACHABLE`].
///
/// # Example
/// ```
/// use dynamis_graph::CsrGraph;
/// use dynamis_graph::algo::bfs_distances;
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
/// let d = bfs_distances(&g, 0);
/// assert_eq!(d[2], 2);
/// assert_eq!(d[3], u32::MAX); // isolated
/// ```
pub fn bfs_distances(g: &CsrGraph, source: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = std::collections::VecDeque::with_capacity(64);
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The connected components of a graph: a label per vertex plus the size of
/// every component.
#[derive(Debug, Clone)]
pub struct Components {
    /// `label[v]` = component id of `v`, in `0..count()`.
    pub label: Vec<u32>,
    /// `sizes[c]` = number of vertices in component `c`.
    pub sizes: Vec<u32>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of the largest component (ties broken by smaller id); `None` on
    /// the empty graph.
    pub fn largest(&self) -> Option<u32> {
        let (best, _) = self
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))?;
        Some(best as u32)
    }

    /// Whether vertices `u` and `v` lie in the same component.
    pub fn same(&self, u: u32, v: u32) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }
}

/// Computes connected components with an iterative BFS sweep, O(n + m).
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if label[s as usize] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        sizes.push(0u32);
        label[s as usize] = c;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            sizes[c as usize] += 1;
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = c;
                    queue.push_back(u);
                }
            }
        }
    }
    Components { label, sizes }
}

/// Returns the vertices of the largest connected component, sorted by id.
pub fn largest_component(g: &CsrGraph) -> Vec<u32> {
    let comps = connected_components(g);
    let Some(target) = comps.largest() else {
        return Vec::new();
    };
    (0..g.num_vertices() as u32)
        .filter(|&v| comps.label[v as usize] == target)
        .collect()
}

/// Double-sweep BFS lower bound on the diameter of the component containing
/// `start`: run BFS from `start`, then from the farthest vertex found; the
/// eccentricity of the second sweep is a lower bound on (and on many graph
/// families equal to) the true diameter.
pub fn diameter_lower_bound(g: &CsrGraph, start: u32) -> u32 {
    let first = bfs_distances(g, start);
    let Some((far, _)) = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
    else {
        return 0;
    };
    let second = bfs_distances(g, far as u32);
    second
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_path_counts_hops() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, 2);
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_out_of_range_source_is_all_unreachable() {
        let g = path(3);
        let d = bfs_distances(&g, 17);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn components_of_disjoint_paths() {
        // Two paths and an isolated vertex: 3 components.
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert!(c.same(0, 2));
        assert!(c.same(3, 5));
        assert!(!c.same(2, 3));
        assert!(!c.same(6, 0));
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn largest_component_prefers_bigger_then_smaller_id() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let big = largest_component(&g);
        assert_eq!(big, vec![2, 3, 4]);
        // Tie: two components of size 2 → the one discovered first wins.
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(largest_component(&g), vec![0, 1]);
    }

    #[test]
    fn empty_graph_components() {
        let g = CsrGraph::from_edges(0, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
        assert!(largest_component(&g).is_empty());
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = path(9);
        // Start mid-path: first sweep reaches an end, second spans the path.
        assert_eq!(diameter_lower_bound(&g, 4), 8);
        assert_eq!(diameter_lower_bound(&g, 0), 8);
    }

    #[test]
    fn diameter_of_cycle() {
        let n = 10u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        assert_eq!(diameter_lower_bound(&g, 0), 5);
    }

    #[test]
    fn diameter_ignores_other_components() {
        let g = CsrGraph::from_edges(8, &[(0, 1), (2, 3), (3, 4), (4, 5), (5, 6)]);
        assert_eq!(diameter_lower_bound(&g, 0), 1);
        assert_eq!(diameter_lower_bound(&g, 2), 4);
    }
}
