//! k-core decomposition and degeneracy ordering by bucket peeling.
//!
//! The *k-core* of a graph is the maximal subgraph in which every vertex
//! has degree ≥ k; the *core number* of a vertex is the largest k such
//! that it belongs to the k-core. The peeling order that repeatedly
//! removes a minimum-degree vertex is a *degeneracy ordering*, and the
//! largest core number is the graph's *degeneracy* — the quantity that
//! makes triangle counting O(m · degeneracy) and that upper-bounds the
//! greedy chromatic number.
//!
//! Implemented with the classic O(n + m) bucket algorithm of Batagelj and
//! Zaveršnik: vertices live in an array sorted by current degree, with
//! per-degree bucket starts, so a degree decrement is a swap plus a
//! boundary shift.

use crate::CsrGraph;

/// Output of [`core_decomposition`].
#[derive(Debug, Clone)]
pub struct CoreDecomposition {
    /// `core[v]` = core number of vertex `v`.
    pub core: Vec<u32>,
    /// Vertices in peeling order (a degeneracy ordering).
    pub order: Vec<u32>,
    /// The degeneracy: `max(core)` (0 for an empty graph).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Vertices belonging to the k-core (core number ≥ k), sorted by id.
    pub fn k_core(&self, k: u32) -> Vec<u32> {
        (0..self.core.len() as u32)
            .filter(|&v| self.core[v as usize] >= k)
            .collect()
    }

    /// `position[v]` = index of `v` in the peeling order; later position
    /// means peeled later (higher or equal core).
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = vec![0u32; self.order.len()];
        for (i, &v) in self.order.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        pos
    }
}

/// Computes core numbers and a degeneracy ordering in O(n + m).
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            order: Vec::new(),
            degeneracy: 0,
        };
    }
    let mut degree: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // Counting sort of vertices by degree.
    let mut bucket_start = vec![0u32; max_deg + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut vert = vec![0u32; n]; // vertices sorted by current degree
    let mut pos = vec![0u32; n]; // pos[v] = index of v in `vert`
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n as u32 {
            let d = degree[v as usize] as usize;
            vert[cursor[d] as usize] = v;
            pos[v as usize] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bucket_start[d] now = first index of a degree-d vertex in `vert`.

    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = vert[i];
        let dv = degree[v as usize];
        degeneracy = degeneracy.max(dv);
        core[v as usize] = degeneracy;
        for &u in g.neighbors(v) {
            if degree[u as usize] > dv {
                // Move u to the front of its bucket, then shrink its degree.
                let du = degree[u as usize] as usize;
                let pu = pos[u as usize];
                let pw = bucket_start[du];
                let w = vert[pw as usize];
                if u != w {
                    vert.swap(pu as usize, pw as usize);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bucket_start[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    CoreDecomposition {
        core,
        order: vert,
        degeneracy,
    }
}

/// The degeneracy of the graph (smallest d such that every subgraph has a
/// vertex of degree ≤ d).
pub fn degeneracy(g: &CsrGraph) -> u32 {
    core_decomposition(g).degeneracy
}

/// A degeneracy ordering: repeatedly remove a minimum-degree vertex.
pub fn degeneracy_ordering(g: &CsrGraph) -> Vec<u32> {
    core_decomposition(g).order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    /// Reference O(n²m) peeling for cross-checking.
    fn naive_core_numbers(g: &CsrGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut alive = vec![true; n];
        let mut deg: Vec<i64> = (0..n as u32).map(|v| g.degree(v) as i64).collect();
        let mut core = vec![0u32; n];
        let mut k = 0i64;
        for _ in 0..n {
            let v = (0..n)
                .filter(|&v| alive[v])
                .min_by_key(|&v| deg[v])
                .unwrap();
            k = k.max(deg[v]);
            core[v] = k as u32;
            alive[v] = false;
            for &u in g.neighbors(v as u32) {
                if alive[u as usize] {
                    deg[u as usize] -= 1;
                }
            }
        }
        core
    }

    #[test]
    fn complete_graph_core_is_n_minus_1() {
        let g = complete(6);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 5);
        assert!(d.core.iter().all(|&c| c == 5));
        assert_eq!(d.k_core(5).len(), 6);
        assert!(d.k_core(6).is_empty());
    }

    #[test]
    fn path_has_degeneracy_one() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn triangle_with_pendant() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core, vec![2, 2, 2, 1]);
        assert_eq!(d.degeneracy, 2);
        assert_eq!(d.k_core(2), vec![0, 1, 2]);
        // The pendant must be peeled before the triangle finishes.
        let pos = d.positions();
        assert!(pos[3] < 3);
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation() {
        let g = complete(5);
        let mut order = degeneracy_ordering(&g);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ordering_property_back_degree_bounded_by_degeneracy() {
        // In a degeneracy ordering, each vertex has at most `degeneracy`
        // neighbors later in the order.
        let g = CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (4, 6),
                (5, 6),
                (6, 7),
            ],
        );
        let d = core_decomposition(&g);
        let pos = d.positions();
        for v in 0..8u32 {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| pos[u as usize] > pos[v as usize])
                .count() as u32;
            assert!(later <= d.degeneracy, "vertex {v}: {later} later neighbors");
        }
    }

    #[test]
    fn matches_naive_on_random_graph() {
        // Deterministic xorshift-built graph, cross-checked against the
        // O(n²m) reference.
        let mut state = 0xabcdef12345u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 60u32;
        let mut edges = Vec::new();
        for _ in 0..200 {
            let (u, v) = ((rng() % n as u64) as u32, (rng() % n as u64) as u32);
            if u != v {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(n as usize, &edges);
        let fast = core_decomposition(&g).core;
        assert_eq!(fast, naive_core_numbers(&g));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert!(d.order.is_empty());
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core[2], 0);
        assert_eq!(d.core[3], 0);
        assert_eq!(d.core[0], 1);
    }
}
