//! Degree summaries and structural predicates used by the dataset
//! registry (Table I) and the PLB fitter.

use crate::CsrGraph;

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree δ.
    pub min: usize,
    /// Maximum degree Δ.
    pub max: usize,
    /// Average degree d̄ = 2m/n.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Edge density 2m / (n (n − 1)).
    pub density: f64,
}

/// Computes [`DegreeStats`] in O(n log n).
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            isolated: 0,
            density: 0.0,
        };
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let density = if n > 1 {
        2.0 * g.num_edges() as f64 / (n as f64 * (n as f64 - 1.0))
    } else {
        0.0
    };
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: g.avg_degree(),
        median: degrees[n / 2],
        isolated: degrees.iter().take_while(|&&d| d == 0).count(),
        density,
    }
}

/// BFS 2-coloring: returns `color[v] ∈ {0, 1}` per vertex, or `None` if
/// an odd cycle makes the graph non-bipartite. O(n + m).
pub fn two_coloring(g: &CsrGraph) -> Option<Vec<u8>> {
    let n = g.num_vertices();
    let mut color = vec![u8::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as u32 {
        if color[s as usize] != u8::MAX {
            continue;
        }
        color[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            let cv = color[v as usize];
            for &u in g.neighbors(v) {
                if color[u as usize] == u8::MAX {
                    color[u as usize] = 1 - cv;
                    queue.push_back(u);
                } else if color[u as usize] == cv {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// Whether the graph is bipartite (2-colorable). O(n + m).
pub fn is_bipartite(g: &CsrGraph) -> bool {
    two_coloring(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_star() {
        // Star K_{1,4}: center degree 4, leaves degree 1.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.median, 1);
        assert_eq!(s.isolated, 0);
        assert!((s.density - 8.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn stats_count_isolated_vertices() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        let s = degree_stats(&g);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn even_cycles_are_bipartite_odd_are_not() {
        let cycle = |n: u32| {
            let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
            CsrGraph::from_edges(n as usize, &edges)
        };
        assert!(is_bipartite(&cycle(4)));
        assert!(is_bipartite(&cycle(8)));
        assert!(!is_bipartite(&cycle(3)));
        assert!(!is_bipartite(&cycle(7)));
    }

    #[test]
    fn bipartite_checks_every_component() {
        // Bipartite component + triangle component → not bipartite.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]);
        assert!(!is_bipartite(&g));
        // Both bipartite → bipartite.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        assert!(is_bipartite(&g));
    }

    #[test]
    fn empty_and_edgeless_graphs_are_bipartite() {
        assert!(is_bipartite(&CsrGraph::from_edges(0, &[])));
        assert!(is_bipartite(&CsrGraph::from_edges(5, &[])));
    }
}
