//! Matchings: greedy maximal matching and Hopcroft–Karp maximum matching
//! on bipartite graphs.
//!
//! The greedy matching backs the classical vertex-cover 2-approximation;
//! Hopcroft–Karp enables *exact* minimum vertex cover (and hence exact
//! MaxIS) on bipartite graphs through König's theorem — a polynomial
//! special case worth exposing next to the NP-hard general machinery.

use super::stats::two_coloring;
use crate::CsrGraph;

/// A matching: `mate[v]` is `v`'s partner or `u32::MAX` if unmatched.
#[derive(Debug, Clone)]
pub struct Matching {
    /// Partner per vertex (`u32::MAX` = unmatched).
    pub mate: Vec<u32>,
    /// Number of matched edges.
    pub size: usize,
}

/// Sentinel for unmatched vertices.
pub const UNMATCHED: u32 = u32::MAX;

impl Matching {
    /// Whether `v` is matched.
    pub fn is_matched(&self, v: u32) -> bool {
        self.mate[v as usize] != UNMATCHED
    }

    /// The matched edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.size);
        for (v, &m) in self.mate.iter().enumerate() {
            if m != UNMATCHED && (v as u32) < m {
                out.push((v as u32, m));
            }
        }
        out
    }

    /// Test helper: every mate pointer is reciprocal and every matched
    /// pair is an edge of `g`.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        let mut count = 0usize;
        for v in 0..g.num_vertices() as u32 {
            let m = self.mate[v as usize];
            if m == UNMATCHED {
                continue;
            }
            if self.mate[m as usize] != v {
                return Err(format!("mate of {v} is {m} but not reciprocal"));
            }
            if !g.has_edge(v, m) {
                return Err(format!("matched pair ({v}, {m}) is not an edge"));
            }
            count += 1;
        }
        if count != 2 * self.size {
            return Err(format!(
                "size {} != {}/2 matched endpoints",
                self.size, count
            ));
        }
        Ok(())
    }
}

/// Greedy maximal matching: scan edges once, match both endpoints when
/// free. O(n + m); at least half the size of a maximum matching.
pub fn greedy_matching(g: &CsrGraph) -> Matching {
    let n = g.num_vertices();
    let mut mate = vec![UNMATCHED; n];
    let mut size = 0usize;
    for u in 0..n as u32 {
        if mate[u as usize] != UNMATCHED {
            continue;
        }
        for &v in g.neighbors(u) {
            if mate[v as usize] == UNMATCHED {
                mate[u as usize] = v;
                mate[v as usize] = u;
                size += 1;
                break;
            }
        }
    }
    Matching { mate, size }
}

/// Hopcroft–Karp maximum matching on a **bipartite** graph.
///
/// Returns `None` if the graph is not bipartite. O(m·√n): BFS layers the
/// graph from free left vertices, DFS extracts a maximal set of
/// vertex-disjoint shortest augmenting paths, repeated O(√n) times.
pub fn hopcroft_karp(g: &CsrGraph) -> Option<Matching> {
    let n = g.num_vertices();
    let color = two_coloring(g)?;
    let left: Vec<u32> = (0..n as u32).filter(|&v| color[v as usize] == 0).collect();
    let mut mate = vec![UNMATCHED; n];
    let mut size = 0usize;

    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; n];
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS from free left vertices, layering only left vertices.
        queue.clear();
        for &v in &left {
            if mate[v as usize] == UNMATCHED {
                dist[v as usize] = 0;
                queue.push_back(v);
            } else {
                dist[v as usize] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                let w = mate[u as usize];
                if w == UNMATCHED {
                    found_augmenting = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: vertex-disjoint augmenting paths along the layering.
        fn try_augment(v: u32, g: &CsrGraph, mate: &mut [u32], dist: &mut [u32]) -> bool {
            for i in 0..g.degree(v) {
                let u = g.neighbors(v)[i];
                let w = mate[u as usize];
                let ok = if w == UNMATCHED {
                    true
                } else if dist[w as usize] == dist[v as usize] + 1 {
                    try_augment(w, g, mate, dist)
                } else {
                    false
                };
                if ok {
                    mate[v as usize] = u;
                    mate[u as usize] = v;
                    return true;
                }
            }
            dist[v as usize] = u32::MAX; // dead end: prune for this phase
            false
        }
        for &v in &left {
            if mate[v as usize] == UNMATCHED && try_augment(v, g, &mut mate, &mut dist) {
                size += 1;
            }
        }
    }
    Some(Matching { mate, size })
}

/// König's theorem: in a bipartite graph, minimum vertex cover size
/// equals maximum matching size, and the cover is extracted from the
/// alternating-reachability structure of a maximum matching.
///
/// Returns `None` if the graph is not bipartite. The cover is exact
/// (hence `V \ cover` is a *maximum* independent set).
pub fn koenig_vertex_cover(g: &CsrGraph) -> Option<Vec<u32>> {
    let n = g.num_vertices();
    let color = two_coloring(g)?;
    let matching = hopcroft_karp(g)?;
    // Alternating BFS from unmatched left vertices: visit left via
    // non-matching edges, right via matching edges.
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n as u32 {
        if color[v as usize] == 0 && !matching.is_matched(v) {
            visited[v as usize] = true;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        if color[v as usize] == 0 {
            for &u in g.neighbors(v) {
                // Left → right over non-matching edges.
                if matching.mate[v as usize] != u && !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        } else {
            let w = matching.mate[v as usize];
            if w != UNMATCHED && !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    // Cover = (L \ visited) ∪ (R ∩ visited).
    let cover: Vec<u32> = (0..n as u32)
        .filter(|&v| {
            if color[v as usize] == 0 {
                !visited[v as usize]
            } else {
                visited[v as usize]
            }
        })
        .collect();
    debug_assert_eq!(cover.len(), matching.size, "König equality");
    Some(cover)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n as usize, &edges)
    }

    fn complete_bipartite(a: u32, b: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..a {
            for v in 0..b {
                edges.push((u, a + v));
            }
        }
        CsrGraph::from_edges((a + b) as usize, &edges)
    }

    #[test]
    fn greedy_matching_is_valid_and_maximal() {
        let g = cycle(7);
        let m = greedy_matching(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.size, 3, "C₇ maximal matchings have 3 edges");
        // Maximality: no edge with both endpoints free.
        for u in 0..7u32 {
            for &v in g.neighbors(u) {
                assert!(m.is_matched(u) || m.is_matched(v));
            }
        }
    }

    #[test]
    fn hopcroft_karp_on_complete_bipartite() {
        let g = complete_bipartite(4, 6);
        let m = hopcroft_karp(&g).unwrap();
        m.validate(&g).unwrap();
        assert_eq!(m.size, 4, "K_{{4,6}} has a perfect left matching");
    }

    #[test]
    fn hopcroft_karp_needs_augmenting_paths() {
        // A "crown" where greedy can pick badly but max matching is 3:
        // L = {0,1,2}, R = {3,4,5}; 0-3, 0-4, 1-3, 1-5, 2-4.
        let g = CsrGraph::from_edges(6, &[(0, 3), (0, 4), (1, 3), (1, 5), (2, 4)]);
        let m = hopcroft_karp(&g).unwrap();
        m.validate(&g).unwrap();
        assert_eq!(m.size, 3);
    }

    #[test]
    fn hopcroft_karp_rejects_odd_cycles() {
        assert!(hopcroft_karp(&cycle(5)).is_none());
        assert!(koenig_vertex_cover(&cycle(9)).is_none());
    }

    #[test]
    fn even_cycle_matching_and_cover() {
        let g = cycle(8);
        let m = hopcroft_karp(&g).unwrap();
        assert_eq!(m.size, 4, "perfect matching");
        let cover = koenig_vertex_cover(&g).unwrap();
        assert_eq!(cover.len(), 4, "König: τ = ν");
        // Verify covering.
        let in_cover: std::collections::BTreeSet<u32> = cover.into_iter().collect();
        for u in 0..8u32 {
            for &v in g.neighbors(u) {
                assert!(in_cover.contains(&u) || in_cover.contains(&v));
            }
        }
    }

    #[test]
    fn koenig_complement_is_maximum_independent_set() {
        // P₆ has a perfect matching (ν = 3), so König gives τ = 3 and the
        // complement is a maximum independent set of size α = 6 − 3 = 3.
        let edges: Vec<(u32, u32)> = (0..5u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(6, &edges);
        let cover = koenig_vertex_cover(&g).unwrap();
        assert_eq!(cover.len(), 3);
        let mis: Vec<u32> = (0..6u32).filter(|v| !cover.contains(v)).collect();
        assert_eq!(mis.len(), 3);
        // MIS is independent.
        for (i, &u) in mis.iter().enumerate() {
            for &v in &mis[i + 1..] {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn matches_exhaustive_on_random_bipartite() {
        // Cross-check Hopcroft–Karp size against an O(2^L) exhaustive
        // matcher on small random bipartite graphs.
        fn brute_max_matching(g: &CsrGraph, left: &[u32]) -> usize {
            fn rec(g: &CsrGraph, left: &[u32], i: usize, used: &mut Vec<bool>) -> usize {
                if i == left.len() {
                    return 0;
                }
                // Skip left[i].
                let mut best = rec(g, left, i + 1, used);
                for &v in g.neighbors(left[i]) {
                    if !used[v as usize] {
                        used[v as usize] = true;
                        best = best.max(1 + rec(g, left, i + 1, used));
                        used[v as usize] = false;
                    }
                }
                best
            }
            let mut used = vec![false; g.num_vertices()];
            rec(g, left, 0, &mut used)
        }
        let mut state = 0xbead5eed_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let a = 3 + (rng() % 4) as u32;
            let b = 3 + (rng() % 4) as u32;
            let mut edges = Vec::new();
            for u in 0..a {
                for v in 0..b {
                    if rng() % 2 == 0 {
                        edges.push((u, a + v));
                    }
                }
            }
            let g = CsrGraph::from_edges((a + b) as usize, &edges);
            let hk = hopcroft_karp(&g).unwrap();
            hk.validate(&g).unwrap();
            let left: Vec<u32> = (0..a).collect();
            assert_eq!(hk.size, brute_max_matching(&g, &left), "round {round}");
            let cover = koenig_vertex_cover(&g).unwrap();
            assert_eq!(cover.len(), hk.size, "round {round}: König equality");
        }
    }

    #[test]
    fn empty_and_edgeless() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(greedy_matching(&g).size, 0);
        assert_eq!(hopcroft_karp(&g).unwrap().size, 0);
        let g = CsrGraph::from_edges(4, &[]);
        assert_eq!(hopcroft_karp(&g).unwrap().size, 0);
        assert!(koenig_vertex_cover(&g).unwrap().is_empty());
    }
}
