//! Classic graph algorithms over [`CsrGraph`](crate::CsrGraph) snapshots.
//!
//! These back the dataset statistics of Table I, the PLB analysis of
//! §III-A, and the reduction rules of the static solvers. All of them are
//! linear or near-linear:
//!
//! * [`traversal`] — BFS distances, connected components, double-sweep
//!   diameter estimation;
//! * [`cores`] — k-core decomposition and degeneracy ordering (bucket
//!   peeling, O(n + m));
//! * [`triangles`] — triangle counting and clustering coefficients on the
//!   degeneracy-oriented DAG;
//! * [`stats`] — degree summaries, density, bipartiteness;
//! * [`matching`] — greedy maximal matching and Hopcroft–Karp maximum
//!   bipartite matching with König vertex-cover extraction (exact MaxIS
//!   on bipartite graphs).

pub mod cores;
pub mod matching;
pub mod stats;
pub mod traversal;
pub mod triangles;

pub use cores::{core_decomposition, degeneracy, degeneracy_ordering, CoreDecomposition};
pub use matching::{greedy_matching, hopcroft_karp, koenig_vertex_cover, Matching};
pub use stats::{degree_stats, is_bipartite, two_coloring, DegreeStats};
pub use traversal::{
    bfs_distances, connected_components, diameter_lower_bound, largest_component, Components,
};
pub use triangles::{clustering_coefficients, count_triangles, global_clustering};
