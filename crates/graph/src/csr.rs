//! Immutable compressed-sparse-row snapshot.
//!
//! Static algorithms (the exact branch-and-reduce solver, the ARW local
//! search, reducing–peeling) operate on frozen graphs; CSR gives them
//! cache-friendly, allocation-free neighborhood scans.

use crate::dynamic::DynamicGraph;

/// A static undirected graph in CSR form. Vertex ids are `0..n` and every
/// edge appears in both endpoint lists. Neighbor lists are sorted, which
/// lets algorithms use merge scans and binary-search adjacency tests.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph on `n` vertices from an undirected edge list.
    /// Self-loops and duplicate edges are dropped.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0u32; n];
        let mut clean: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        {
            let mut seen = crate::hash::FxHashSet::default();
            seen.reserve(edges.len());
            for &(u, v) in edges {
                if u == v || u as usize >= n || v as usize >= n {
                    continue;
                }
                if seen.insert(crate::hash::pair_key(u, v)) {
                    clean.push((u, v));
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for v in 0..n {
            offsets.push(offsets[v] + deg[v]);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; offsets[n] as usize];
        for &(u, v) in &clean {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        CsrGraph { offsets, targets }
    }

    /// Snapshots a [`DynamicGraph`]. Dead vertex slots become isolated
    /// vertices so ids are preserved; callers that need compaction should
    /// relabel first.
    pub fn from_dynamic(g: &DynamicGraph) -> Self {
        let edges: Vec<(u32, u32)> = g.edges().collect();
        Self::from_edges(g.capacity(), &edges)
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Adjacency test by binary search: O(log d(u)) on the smaller list.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree d̄ = 2m / n.
    pub fn avg_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / n as f64
        }
    }

    /// Degree histogram: `hist[d]` = number of vertices with degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in 0..self.num_vertices() as u32 {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// All edges as `(u, v)` with `u < v`.
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices() as u32 {
            for &v in self.neighbors(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Converts back into a [`DynamicGraph`] (all ids live).
    pub fn to_dynamic(&self) -> DynamicGraph {
        DynamicGraph::from_edges(self.num_vertices(), &self.edge_list())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 3), (1, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn dynamic_round_trip() {
        let d = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)]);
        let c = CsrGraph::from_dynamic(&d);
        assert_eq!(c.num_edges(), d.num_edges());
        for v in d.vertices() {
            assert_eq!(c.degree(v), d.degree(v));
        }
        let back = c.to_dynamic();
        assert_eq!(back.num_edges(), d.num_edges());
        back.check_consistency().unwrap();
    }

    #[test]
    fn histogram_counts_every_vertex() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let h = g.degree_histogram();
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 1); // vertex 4 isolated
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 2);
    }

    #[test]
    fn empty_csr() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
