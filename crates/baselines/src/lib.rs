//! # dynamis-baselines — dynamic competitors from the paper's evaluation
//!
//! * [`DyArw`] — "the dynamic version DyARW of ARW \[14\], which also uses
//!   1-swaps to improve the size of independent sets on static graphs".
//!   Semantically equivalent to `DyOneSwap` (both maintain a 1-maximal
//!   set) but implemented, as in the original ARW code, over **sorted**
//!   adjacency with double-pointer merge scans — the ordered-structure
//!   maintenance the paper blames for its "little higher maintenance
//!   time" (§V-B).
//! * [`DgDis`] — reimplementation of the dependency-graph index approach
//!   of Zheng et al., ICDE 2019 (\[21\]): `DGOneDIS` builds its index from
//!   degree-one reductions, `DGTwoDIS` additionally from degree-two
//!   reductions; on the loss of a solution vertex the index is searched
//!   for a complementary set of at least the same size. The index is not
//!   rebuilt between updates, so dependency chains lengthen and the
//!   search cost grows with the number of updates — the degradation the
//!   paper's experiments document. This is an emulation from the
//!   published description (the authors' code is not public); see
//!   DESIGN.md.
//! * [`MaximalOnly`] — maximality repair without any swap; the quality
//!   floor every swap-based method must beat.
//! * [`Restart`] — recompute-from-scratch with a static solver every
//!   `interval` updates; the strawman the introduction argues against,
//!   made measurable (see the `restart` ablation).

pub mod dgdis;
pub mod dyarw;
pub mod repair;
pub mod restart;

pub use dgdis::DgDis;
pub use dyarw::DyArw;
pub use repair::MaximalOnly;
pub use restart::{Restart, RestartSolver};
