//! The recompute-from-scratch baseline.
//!
//! The introduction's case against static methods is that they "need to
//! recompute the solution from scratch after each update, which is
//! obviously time consuming". This baseline makes that cost measurable:
//! between recomputations it only keeps the solution *valid* (evicting a
//! conflicted endpoint on edge insertion, dropping deleted vertices), and
//! every `interval` updates it rebuilds the solution with a static solver.
//!
//! * `interval = 1` is the paper's strawman — a full static solve per
//!   update;
//! * larger intervals trade staleness (smaller solutions between solves)
//!   for amortized cost, the knob the `restart` ablation sweeps.

use dynamis_core::{
    validate_update, DeltaFeed, DynamicMis, EngineBuilder, EngineError, SolutionDelta,
};
use dynamis_graph::{DynamicGraph, Update};
use dynamis_static::verify::compact_live;
use dynamis_static::{arw_local_search, greedy_mis, ArwConfig};

/// Which static solver the baseline reruns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartSolver {
    /// Min-degree greedy — the cheap rebuild.
    Greedy,
    /// ARW iterated local search — the high-quality rebuild.
    Arw,
}

/// Recompute-from-scratch maintenance (see module docs).
#[derive(Debug)]
pub struct Restart {
    g: DynamicGraph,
    solver: RestartSolver,
    interval: usize,
    since_solve: usize,
    status: Vec<bool>,
    size: usize,
    feed: DeltaFeed,
    /// Full static solves performed (exposed for the ablation harness).
    pub recomputes: u64,
}

impl Restart {
    /// Builds the baseline from a builder-described session plus its
    /// own knobs (which solver to rerun, and how often); solves once
    /// immediately, so the session's initial set is superseded and
    /// ignored. `interval` must be at least 1.
    pub fn from_builder(
        builder: EngineBuilder,
        solver: RestartSolver,
        interval: usize,
    ) -> Result<Self, EngineError> {
        if interval == 0 {
            return Err(EngineError::BadParameter("restart interval must be ≥ 1"));
        }
        let session = builder.into_session()?;
        let cap = session.graph.capacity();
        let mut b = Restart {
            g: session.graph,
            solver,
            interval,
            since_solve: 0,
            status: vec![false; cap],
            size: 0,
            feed: DeltaFeed::default(),
            recomputes: 0,
        };
        b.resolve();
        let _ = b.feed.finish_update(); // close the bootstrap span
        Ok(b)
    }

    /// Runs the static solver on the current graph. The wholesale
    /// status rewrite is recorded as a (large, honest) solution delta.
    fn resolve(&mut self) {
        self.recomputes += 1;
        self.since_solve = 0;
        let (csr, map) = compact_live(&self.g);
        let compact_solution = match self.solver {
            RestartSolver::Greedy => greedy_mis(&csr),
            RestartSolver::Arw => arw_local_search(
                &csr,
                ArwConfig {
                    // Few perturbation rounds: this baseline exists to
                    // measure the *amortized* recompute price, not to be
                    // the best solver.
                    perturbations: 2,
                    seed: 0xD15EA5E,
                },
            ),
        };
        // Invert the old→new map onto the status bitmap.
        let mut inv = vec![u32::MAX; csr.num_vertices()];
        for (old, &new) in map.iter().enumerate() {
            if new != u32::MAX {
                inv[new as usize] = old as u32;
            }
        }
        let mut new_status = vec![false; self.status.len()];
        for &c in &compact_solution {
            let old = inv[c as usize];
            new_status[old as usize] = true;
        }
        for (v, (&old, &new)) in self.status.iter().zip(new_status.iter()).enumerate() {
            match (old, new) {
                (false, true) => self.feed.record_in(v as u32),
                (true, false) => self.feed.record_out(v as u32),
                _ => {}
            }
        }
        self.status = new_status;
        self.size = compact_solution.len();
    }

    fn bump(&mut self) {
        self.since_solve += 1;
        if self.since_solve >= self.interval {
            self.resolve();
        }
    }

    /// Test-only: the solution is a valid independent set (maximality is
    /// only guaranteed right after a solve).
    pub fn check_valid(&self) -> Result<(), String> {
        for v in self.g.vertices() {
            if self.status[v as usize] && self.g.neighbors(v).any(|u| self.status[u as usize]) {
                return Err(format!("solution not independent at {v}"));
            }
        }
        if self.status.iter().filter(|&&s| s).count() != self.size {
            return Err("size counter out of sync".into());
        }
        Ok(())
    }
}

impl DynamicMis for Restart {
    fn name(&self) -> &'static str {
        match self.solver {
            RestartSolver::Greedy => "Restart(Greedy)",
            RestartSolver::Arw => "Restart(ARW)",
        }
    }

    fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    fn try_apply(&mut self, upd: &Update) -> Result<SolutionDelta, EngineError> {
        // Edge ops fuse validation into the graph call (the graph checks
        // self-loops and aliveness before mutating; the boolean return
        // classifies duplicates/missing) — no duplicate hash probe. The
        // rare vertex ops pre-validate with `validate_update`.
        match upd {
            Update::InsertEdge(a, b) => {
                if !self.g.insert_edge(*a, *b)? {
                    return Err(EngineError::DuplicateEdge(*a, *b));
                }
                if self.status[*a as usize] && self.status[*b as usize] {
                    // Evict the higher-degree endpoint; no repair until the
                    // next solve.
                    let loser = if self.g.degree(*b) >= self.g.degree(*a) {
                        *b
                    } else {
                        *a
                    };
                    self.status[loser as usize] = false;
                    self.feed.record_out(loser);
                    self.size -= 1;
                }
            }
            Update::RemoveEdge(a, b) => {
                if !self.g.remove_edge(*a, *b)? {
                    return Err(EngineError::MissingEdge(*a, *b));
                }
            }
            Update::InsertVertex { id: _, neighbors } => {
                validate_update(&self.g, upd)?;
                let v = self.g.add_vertex();
                if self.status.len() < self.g.capacity() {
                    self.status.resize(self.g.capacity(), false);
                }
                self.status[v as usize] = false;
                for &n in neighbors {
                    self.g.insert_edge(v, n).expect("validated");
                }
            }
            Update::RemoveVertex(v) => {
                validate_update(&self.g, upd)?;
                if self.status[*v as usize] {
                    self.status[*v as usize] = false;
                    self.feed.record_out(*v);
                    self.size -= 1;
                }
                self.g.remove_vertex(*v).expect("validated");
            }
        }
        self.bump();
        let mut delta = self.feed.finish_update();
        delta.stats.updates = 1;
        Ok(delta)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.feed.drain()
    }

    fn size(&self) -> usize {
        self.size
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    fn contains(&self, v: u32) -> bool {
        self.status.get(v as usize).copied().unwrap_or(false)
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes() + self.status.capacity() + self.feed.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_static::verify::is_maximal_dynamic;

    fn build(g: DynamicGraph, solver: RestartSolver, interval: usize) -> Restart {
        Restart::from_builder(EngineBuilder::on(g), solver, interval).unwrap()
    }

    fn path(n: usize) -> DynamicGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        DynamicGraph::from_edges(n, &edges)
    }

    #[test]
    fn interval_one_is_always_fresh() {
        let mut r = build(path(8), RestartSolver::Greedy, 1);
        assert_eq!(r.recomputes, 1);
        for upd in [
            Update::RemoveEdge(3, 4),
            Update::InsertEdge(0, 7),
            Update::InsertEdge(2, 6),
        ] {
            r.try_apply(&upd).unwrap();
            r.check_valid().unwrap();
            assert!(
                is_maximal_dynamic(r.graph(), &r.solution()),
                "fresh solve must be maximal after {upd:?}"
            );
        }
        assert_eq!(r.recomputes, 4, "one solve per update plus the initial");
    }

    #[test]
    fn large_interval_amortizes_but_goes_stale() {
        let mut r = build(path(10), RestartSolver::Greedy, 100);
        let initial = r.size();
        // Pile conflicts onto solution vertices; no repair happens.
        let sol = r.solution();
        let (a, b) = (sol[0], sol[1]);
        r.try_apply(&Update::InsertEdge(a, b)).unwrap();
        r.check_valid().unwrap();
        assert_eq!(r.size(), initial - 1, "eviction without repair");
        assert_eq!(r.recomputes, 1, "no re-solve before the interval");
    }

    #[test]
    fn resolve_fires_exactly_on_interval() {
        let mut r = build(path(12), RestartSolver::Greedy, 3);
        for step in 1..=9usize {
            // Toggle one path edge out and back in: every op is valid.
            let e = ((step as u32 - 1) / 2) % 11;
            let upd = if step % 2 == 1 {
                Update::RemoveEdge(e, e + 1)
            } else {
                Update::InsertEdge(e, e + 1)
            };
            r.try_apply(&upd).unwrap();
            assert_eq!(r.recomputes as usize, 1 + step / 3, "after step {step}");
        }
    }

    #[test]
    fn arw_solver_never_smaller_than_greedy_right_after_solve() {
        // C₁₅ with chords: greedy can be suboptimal; ARW fixes 1-swaps.
        let n = 15u32;
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, 5));
        edges.push((3, 9));
        let g = DynamicGraph::from_edges(n as usize, &edges);
        let greedy = build(g.clone(), RestartSolver::Greedy, 1);
        let arw = build(g, RestartSolver::Arw, 1);
        assert!(arw.size() >= greedy.size());
        arw.check_valid().unwrap();
    }

    #[test]
    fn survives_vertex_churn() {
        let mut r = build(path(6), RestartSolver::Greedy, 2);
        r.try_apply(&Update::RemoveVertex(2)).unwrap();
        r.check_valid().unwrap();
        r.try_apply(&Update::InsertVertex {
            id: 2,
            neighbors: vec![0, 5],
        })
        .unwrap();
        r.check_valid().unwrap();
        r.try_apply(&Update::RemoveVertex(0)).unwrap();
        r.check_valid().unwrap();
        assert!(r.size() >= 2);
    }

    #[test]
    fn zero_interval_is_rejected() {
        let err = Restart::from_builder(EngineBuilder::on(path(3)), RestartSolver::Greedy, 0)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EngineError::BadParameter(_)));
    }
}
