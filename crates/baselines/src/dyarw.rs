//! `DyARW` — the dynamic adaptation of the Andrade–Resende–Werneck local
//! search (§V-A of the paper, reference \[14\]).
//!
//! Semantically this maintains the same invariant as `DyOneSwap`: a
//! 1-maximal independent set, restored after every update by
//! (1,2)-swaps. The difference is purely representational, and it is the
//! one the paper measures: ARW's implementation keeps each candidate
//! list **sorted** and detects two non-adjacent 1-tight neighbors with a
//! double-pointer merge scan, so every edge insertion pays an O(d) sorted
//! insert — "DyARW suffer\[s\] from a little higher maintenance time for
//! the ordered structure required by the double pointer scan
//! implementation".

use dynamis_core::{
    validate_update, BuildableEngine, DeltaFeed, DynamicMis, EngineBuilder, EngineError, Session,
    SolutionDelta,
};
use dynamis_graph::{DynamicGraph, Update};
use std::collections::VecDeque;

/// Dynamic ARW: 1-maximal independent set over sorted adjacency.
/// Constructed through the [`EngineBuilder`] session API (the builder's
/// `k` and config are ignored — ARW is inherently a 1-swap method).
#[derive(Debug)]
pub struct DyArw {
    g: DynamicGraph,
    /// Sorted adjacency mirror (the "ordered structure").
    sorted_adj: Vec<Vec<u32>>,
    status: Vec<bool>,
    count: Vec<u32>,
    size: usize,
    feed: DeltaFeed,
    /// Solution vertices to re-examine for 2-improvements.
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    repair: Vec<u32>,
}

impl DyArw {
    /// Builds the baseline from a validated [`Session`].
    fn from_session(session: Session) -> Self {
        let Session { graph, initial, .. } = session;
        let cap = graph.capacity();
        let mut sorted_adj: Vec<Vec<u32>> = vec![Vec::new(); cap];
        for v in graph.vertices() {
            let mut l: Vec<u32> = graph.neighbors(v).collect();
            l.sort_unstable();
            sorted_adj[v as usize] = l;
        }
        let mut b = DyArw {
            g: graph,
            sorted_adj,
            status: vec![false; cap],
            count: vec![0; cap],
            size: 0,
            feed: DeltaFeed::default(),
            queue: VecDeque::new(),
            queued: vec![false; cap],
            repair: Vec::new(),
        };
        for &v in &initial {
            b.status[v as usize] = true;
            b.feed.record_in(v);
            b.size += 1;
        }
        for v in 0..cap as u32 {
            if b.g.is_alive(v) && !b.status[v as usize] {
                b.count[v as usize] =
                    b.g.neighbors(v).filter(|&u| b.status[u as usize]).count() as u32;
                if b.count[v as usize] == 0 {
                    b.repair.push(v);
                }
            }
        }
        b.process_repairs();
        for v in 0..cap as u32 {
            if b.status[v as usize] {
                b.enqueue(v);
            }
        }
        b.drain();
        let _ = b.feed.finish_update(); // close the bootstrap span
        b
    }

    fn ensure_capacity(&mut self) {
        let cap = self.g.capacity();
        if self.status.len() < cap {
            self.status.resize(cap, false);
            self.count.resize(cap, 0);
            self.queued.resize(cap, false);
            self.sorted_adj.resize_with(cap, Vec::new);
        }
    }

    fn sorted_insert(&mut self, v: u32, n: u32) {
        let l = &mut self.sorted_adj[v as usize];
        // The O(d) ordered-structure maintenance cost.
        match l.binary_search(&n) {
            Ok(_) => {}
            Err(i) => l.insert(i, n),
        }
    }

    fn sorted_remove(&mut self, v: u32, n: u32) {
        let l = &mut self.sorted_adj[v as usize];
        if let Ok(i) = l.binary_search(&n) {
            l.remove(i);
        }
    }

    fn enqueue(&mut self, v: u32) {
        if self.status[v as usize] && !self.queued[v as usize] {
            self.queued[v as usize] = true;
            self.queue.push_back(v);
        }
    }

    /// The (unique, when count = 1) solution neighbor of `u`.
    fn parent_of(&self, u: u32) -> Option<u32> {
        self.g.neighbors(u).find(|&p| self.status[p as usize])
    }

    fn move_in(&mut self, v: u32) {
        self.status[v as usize] = true;
        self.feed.record_in(v);
        self.size += 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] += 1;
            if self.count[u as usize] == 1 {
                // u became 1-tight: its parent (v) may now have a swap.
                self.enqueue(v);
            } else if self.count[u as usize] == 2 {
                // u left some parent's 1-tight list; nothing to do.
            }
        }
    }

    fn move_out(&mut self, v: u32) {
        self.status[v as usize] = false;
        self.feed.record_out(v);
        self.size -= 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] -= 1;
            match self.count[u as usize] {
                0 if !self.status[u as usize] => {
                    self.repair.push(u);
                }
                1 => {
                    // u became 1-tight under its remaining parent.
                    if let Some(p) = self.parent_of(u) {
                        self.enqueue(p);
                    }
                }
                _ => {}
            }
        }
    }

    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.g.is_alive(u) && !self.status[u as usize] && self.count[u as usize] == 0 {
                self.move_in(u);
            }
        }
    }

    /// ARW 2-improvement at v, using sorted lists and merge scans.
    fn try_two_improvement(&mut self, v: u32) -> bool {
        if !self.status[v as usize] {
            return false;
        }
        // L(v): 1-tight neighbors, in sorted order.
        let l: Vec<u32> = self.sorted_adj[v as usize]
            .iter()
            .copied()
            .filter(|&u| {
                self.g.is_alive(u) && !self.status[u as usize] && self.count[u as usize] == 1
            })
            .collect();
        if l.len() < 2 {
            return false;
        }
        // Double-pointer scan: for each u ∈ L(v), merge sorted N(u)
        // against sorted L(v); a gap reveals a non-adjacent partner.
        for &u in &l {
            let nu = &self.sorted_adj[u as usize];
            let mut i = 0usize; // over l
            let mut j = 0usize; // over nu
            let mut witness: Option<u32> = None;
            while i < l.len() {
                let x = l[i];
                if x == u {
                    i += 1;
                    continue;
                }
                while j < nu.len() && nu[j] < x {
                    j += 1;
                }
                if j >= nu.len() || nu[j] != x {
                    witness = Some(x);
                    break;
                }
                i += 1;
            }
            if let Some(w) = witness {
                self.move_out(v);
                debug_assert_eq!(self.count[u as usize], 0);
                self.move_in(u);
                debug_assert_eq!(self.count[w as usize], 0);
                self.move_in(w);
                self.process_repairs();
                return true;
            }
        }
        false
    }

    fn drain(&mut self) {
        loop {
            self.process_repairs();
            let Some(v) = self.queue.pop_front() else {
                break;
            };
            self.queued[v as usize] = false;
            self.try_two_improvement(v);
        }
    }
}

impl BuildableEngine for DyArw {
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        builder.into_session().map(Self::from_session)
    }
}

impl DynamicMis for DyArw {
    fn name(&self) -> &'static str {
        "DyARW"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    fn try_apply(&mut self, upd: &Update) -> Result<SolutionDelta, EngineError> {
        // Edge ops fuse validation into the graph call (the graph checks
        // self-loops and aliveness before mutating; the boolean return
        // classifies duplicates/missing) — no duplicate hash probe. The
        // rare vertex ops pre-validate with `validate_update`.
        match upd {
            Update::InsertEdge(a, b) => {
                if !self.g.insert_edge(*a, *b)? {
                    return Err(EngineError::DuplicateEdge(*a, *b));
                }
                self.sorted_insert(*a, *b);
                self.sorted_insert(*b, *a);
                match (self.status[*a as usize], self.status[*b as usize]) {
                    (true, true) => {
                        let loser = if self.g.degree(*b) >= self.g.degree(*a) {
                            *b
                        } else {
                            *a
                        };
                        let winner = if loser == *a { *b } else { *a };
                        self.status[loser as usize] = false;
                        self.feed.record_out(loser);
                        self.size -= 1;
                        let nbrs: Vec<u32> =
                            self.g.neighbors(loser).filter(|&w| w != winner).collect();
                        for u in nbrs {
                            self.count[u as usize] -= 1;
                            match self.count[u as usize] {
                                0 if !self.status[u as usize] => {
                                    self.repair.push(u);
                                }
                                1 => {
                                    if let Some(p) = self.parent_of(u) {
                                        self.enqueue(p);
                                    }
                                }
                                _ => {}
                            }
                        }
                        self.count[loser as usize] = 1;
                        self.enqueue(winner);
                        self.process_repairs();
                    }
                    (true, false) => self.count[*b as usize] += 1,
                    (false, true) => self.count[*a as usize] += 1,
                    (false, false) => {}
                }
            }
            Update::RemoveEdge(a, b) => {
                if !self.g.remove_edge(*a, *b)? {
                    return Err(EngineError::MissingEdge(*a, *b));
                }
                self.sorted_remove(*a, *b);
                self.sorted_remove(*b, *a);
                let (sa, sb) = (self.status[*a as usize], self.status[*b as usize]);
                if sa && !sb {
                    self.count[*b as usize] -= 1;
                    match self.count[*b as usize] {
                        0 => {
                            self.repair.push(*b);
                            self.process_repairs();
                        }
                        1 => {
                            if let Some(p) = self.parent_of(*b) {
                                self.enqueue(p);
                            }
                        }
                        _ => {}
                    }
                } else if sb && !sa {
                    self.count[*a as usize] -= 1;
                    match self.count[*a as usize] {
                        0 => {
                            self.repair.push(*a);
                            self.process_repairs();
                        }
                        1 => {
                            if let Some(p) = self.parent_of(*a) {
                                self.enqueue(p);
                            }
                        }
                        _ => {}
                    }
                } else if !sa && !sb {
                    // Two outsiders: a shared 1-tight parent may now host
                    // a 2-improvement.
                    if self.count[*a as usize] == 1 && self.count[*b as usize] == 1 {
                        let pa = self.g.neighbors(*a).find(|&p| self.status[p as usize]);
                        let pb = self.g.neighbors(*b).find(|&p| self.status[p as usize]);
                        if let (Some(pa), Some(pb)) = (pa, pb) {
                            if pa == pb {
                                self.enqueue(pa);
                            }
                        }
                    }
                }
            }
            Update::InsertVertex { id: _, neighbors } => {
                validate_update(&self.g, upd)?;
                let v = self.g.add_vertex();
                self.ensure_capacity();
                for &n in neighbors {
                    self.g.insert_edge(v, n).expect("validated");
                    self.sorted_insert(v, n);
                    self.sorted_insert(n, v);
                }
                self.count[v as usize] = neighbors
                    .iter()
                    .filter(|&&n| self.status[n as usize])
                    .count() as u32;
                if self.count[v as usize] == 0 {
                    self.move_in(v);
                } else if self.count[v as usize] == 1 {
                    let p = neighbors
                        .iter()
                        .copied()
                        .find(|&n| self.status[n as usize])
                        .expect("count said one parent");
                    self.enqueue(p);
                }
            }
            Update::RemoveVertex(v) => {
                validate_update(&self.g, upd)?;
                let was_in = self.status[*v as usize];
                self.status[*v as usize] = false;
                if was_in {
                    self.feed.record_out(*v);
                    self.size -= 1;
                }
                self.count[*v as usize] = 0;
                let former = self.g.remove_vertex(*v).expect("validated");
                for &u in &former {
                    self.sorted_remove(u, *v);
                }
                self.sorted_adj[*v as usize].clear();
                if was_in {
                    for u in former {
                        self.count[u as usize] -= 1;
                        match self.count[u as usize] {
                            0 if !self.status[u as usize] => {
                                self.repair.push(u);
                            }
                            1 => {
                                if let Some(p) = self.parent_of(u) {
                                    self.enqueue(p);
                                }
                            }
                            _ => {}
                        }
                    }
                    self.process_repairs();
                }
            }
        }
        self.drain();
        let mut delta = self.feed.finish_update();
        delta.stats.updates = 1;
        Ok(delta)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.feed.drain()
    }

    fn size(&self) -> usize {
        self.size
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    fn contains(&self, v: u32) -> bool {
        self.status.get(v as usize).copied().unwrap_or(false)
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes()
            + self
                .sorted_adj
                .iter()
                .map(|l| l.capacity() * 4)
                .sum::<usize>()
            + self.status.capacity()
            + self.count.capacity() * 4
            + self.feed.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(g: DynamicGraph, initial: &[u32]) -> DyArw {
        EngineBuilder::on(g).initial(initial).build_as().unwrap()
    }

    #[test]
    fn fixes_star_like_one_swap() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let b = build(g, &[0]);
        assert_eq!(b.size(), 4);
    }

    #[test]
    fn updates_keep_one_maximality() {
        use dynamis_static::verify::is_k_maximal_dynamic;
        let g = DynamicGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let mut b = build(g, &[]);
        let schedule = [
            Update::RemoveEdge(1, 2),
            Update::InsertEdge(0, 4),
            Update::RemoveVertex(6),
            Update::InsertVertex {
                id: 6,
                neighbors: vec![0, 3],
            },
            Update::RemoveEdge(3, 4),
        ];
        for u in &schedule {
            b.try_apply(u).unwrap();
            assert!(
                is_k_maximal_dynamic(b.graph(), &b.solution(), 1),
                "DyARW must stay 1-maximal after {u:?}"
            );
        }
    }

    #[test]
    fn invalid_updates_are_rejected_without_state_change() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2)]);
        let mut b = build(g, &[]);
        let sol = b.solution();
        let _ = b.drain_delta();
        for bad in [
            Update::InsertEdge(0, 1),
            Update::RemoveEdge(0, 3),
            Update::RemoveVertex(9),
        ] {
            assert!(b.try_apply(&bad).is_err());
            assert_eq!(b.solution(), sol);
            assert!(b.drain_delta().is_empty());
        }
    }
}
