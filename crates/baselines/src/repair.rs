//! Maximality-repair-only baseline: the quality floor.

use dynamis_core::DynamicMis;
use dynamis_graph::{DynamicGraph, Update};

/// Maintains a *maximal* (not k-maximal) independent set: evicted or
/// conflicted vertices are replaced greedily by any freed neighbor, and
/// nothing else is ever attempted. Linear time, minimal memory, and the
/// weakest quality — used in ablations to quantify what the swap
/// machinery buys.
#[derive(Debug)]
pub struct MaximalOnly {
    g: DynamicGraph,
    status: Vec<bool>,
    count: Vec<u32>,
    size: usize,
    repair: Vec<u32>,
}

impl MaximalOnly {
    /// Builds the baseline from a graph and an initial independent set
    /// (extended to maximality).
    pub fn new(graph: DynamicGraph, initial: &[u32]) -> Self {
        let cap = graph.capacity();
        let mut b = MaximalOnly {
            g: graph,
            status: vec![false; cap],
            count: vec![0; cap],
            size: 0,
            repair: Vec::new(),
        };
        for &v in initial {
            b.status[v as usize] = true;
            b.size += 1;
        }
        for v in 0..cap as u32 {
            if b.g.is_alive(v) && !b.status[v as usize] {
                b.count[v as usize] =
                    b.g.neighbors(v).filter(|&u| b.status[u as usize]).count() as u32;
                if b.count[v as usize] == 0 {
                    b.repair.push(v);
                }
            }
        }
        b.process_repairs();
        b
    }

    fn move_in(&mut self, v: u32) {
        self.status[v as usize] = true;
        self.size += 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] += 1;
        }
    }

    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.g.is_alive(u) && !self.status[u as usize] && self.count[u as usize] == 0 {
                self.move_in(u);
            }
        }
    }

    /// Test-only invariant check.
    pub fn check_consistency(&self) -> Result<(), String> {
        for v in self.g.vertices() {
            let c = self
                .g
                .neighbors(v)
                .filter(|&u| self.status[u as usize])
                .count();
            if self.status[v as usize] && c != 0 {
                return Err(format!("not independent at {v}"));
            }
            if !self.status[v as usize] && c == 0 {
                return Err(format!("not maximal at {v}"));
            }
        }
        Ok(())
    }
}

impl DynamicMis for MaximalOnly {
    fn name(&self) -> &'static str {
        "MaximalOnly"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    fn apply_update(&mut self, upd: &Update) {
        match upd {
            Update::InsertEdge(a, b) => {
                if !self.g.insert_edge(*a, *b).expect("valid stream") {
                    return;
                }
                match (self.status[*a as usize], self.status[*b as usize]) {
                    (true, true) => {
                        // Evict the higher-degree endpoint. The winner is
                        // excluded from the decrement sweep: its edge to
                        // the loser was never counted.
                        let loser = if self.g.degree(*b) >= self.g.degree(*a) {
                            *b
                        } else {
                            *a
                        };
                        let winner = if loser == *a { *b } else { *a };
                        self.status[loser as usize] = false;
                        self.size -= 1;
                        let nbrs: Vec<u32> =
                            self.g.neighbors(loser).filter(|&w| w != winner).collect();
                        for u in nbrs {
                            self.count[u as usize] -= 1;
                            if self.count[u as usize] == 0 && !self.status[u as usize] {
                                self.repair.push(u);
                            }
                        }
                        self.count[loser as usize] = 1;
                        self.process_repairs();
                    }
                    (true, false) => self.count[*b as usize] += 1,
                    (false, true) => self.count[*a as usize] += 1,
                    (false, false) => {}
                }
            }
            Update::RemoveEdge(a, b) => {
                if !self.g.remove_edge(*a, *b).expect("valid stream") {
                    return;
                }
                if self.status[*a as usize] && !self.status[*b as usize] {
                    self.count[*b as usize] -= 1;
                    if self.count[*b as usize] == 0 {
                        self.move_in(*b);
                    }
                } else if self.status[*b as usize] && !self.status[*a as usize] {
                    self.count[*a as usize] -= 1;
                    if self.count[*a as usize] == 0 {
                        self.move_in(*a);
                    }
                }
            }
            Update::InsertVertex { id, neighbors } => {
                let v = self.g.add_vertex();
                debug_assert_eq!(v, *id);
                let cap = self.g.capacity();
                if self.status.len() < cap {
                    self.status.resize(cap, false);
                    self.count.resize(cap, 0);
                }
                for &n in neighbors {
                    self.g.insert_edge(v, n).expect("valid stream");
                }
                self.count[v as usize] = neighbors
                    .iter()
                    .filter(|&&n| self.status[n as usize])
                    .count() as u32;
                if self.count[v as usize] == 0 {
                    self.move_in(v);
                }
            }
            Update::RemoveVertex(v) => {
                let was_in = self.status[*v as usize];
                self.status[*v as usize] = false;
                if was_in {
                    self.size -= 1;
                }
                self.count[*v as usize] = 0;
                let former = self.g.remove_vertex(*v).expect("valid stream");
                if was_in {
                    for u in former {
                        self.count[u as usize] -= 1;
                        if self.count[u as usize] == 0 && !self.status[u as usize] {
                            self.repair.push(u);
                        }
                    }
                    self.process_repairs();
                }
            }
        }
    }

    fn size(&self) -> usize {
        self.size
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    fn contains(&self, v: u32) -> bool {
        self.status[v as usize]
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes() + self.status.capacity() + self.count.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_maximal_under_updates() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut b = MaximalOnly::new(g, &[]);
        b.check_consistency().unwrap();
        b.apply_update(&Update::RemoveEdge(1, 2));
        b.check_consistency().unwrap();
        b.apply_update(&Update::InsertEdge(0, 3));
        b.check_consistency().unwrap();
        b.apply_update(&Update::RemoveVertex(4));
        b.check_consistency().unwrap();
        b.apply_update(&Update::InsertVertex {
            id: 4,
            neighbors: vec![0, 5],
        });
        b.check_consistency().unwrap();
    }

    #[test]
    fn never_beats_one_swap_quality_on_star() {
        // Star with center in the set: MaximalOnly keeps {center}, the
        // swap engines would reach all leaves.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let b = MaximalOnly::new(g, &[0]);
        assert_eq!(b.size(), 1, "no swap machinery — stuck at the center");
    }
}
