//! Maximality-repair-only baseline: the quality floor.

use dynamis_core::{
    validate_update, BuildableEngine, DeltaFeed, DynamicMis, EngineBuilder, EngineError, Session,
    SolutionDelta,
};
use dynamis_graph::{DynamicGraph, Update};

/// Maintains a *maximal* (not k-maximal) independent set: evicted or
/// conflicted vertices are replaced greedily by any freed neighbor, and
/// nothing else is ever attempted. Linear time, minimal memory, and the
/// weakest quality — used in ablations to quantify what the swap
/// machinery buys. Constructed through the [`EngineBuilder`] session
/// API (the builder's `k` and config are ignored).
#[derive(Debug)]
pub struct MaximalOnly {
    g: DynamicGraph,
    status: Vec<bool>,
    count: Vec<u32>,
    size: usize,
    feed: DeltaFeed,
    repair: Vec<u32>,
}

impl MaximalOnly {
    /// Builds the baseline from a validated [`Session`] (extends the
    /// initial set to maximality).
    fn from_session(session: Session) -> Self {
        let Session { graph, initial, .. } = session;
        let cap = graph.capacity();
        let mut b = MaximalOnly {
            g: graph,
            status: vec![false; cap],
            count: vec![0; cap],
            size: 0,
            feed: DeltaFeed::default(),
            repair: Vec::new(),
        };
        for &v in &initial {
            b.status[v as usize] = true;
            b.feed.record_in(v);
            b.size += 1;
        }
        for v in 0..cap as u32 {
            if b.g.is_alive(v) && !b.status[v as usize] {
                b.count[v as usize] =
                    b.g.neighbors(v).filter(|&u| b.status[u as usize]).count() as u32;
                if b.count[v as usize] == 0 {
                    b.repair.push(v);
                }
            }
        }
        b.process_repairs();
        let _ = b.feed.finish_update(); // close the bootstrap span
        b
    }

    fn move_in(&mut self, v: u32) {
        self.status[v as usize] = true;
        self.feed.record_in(v);
        self.size += 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] += 1;
        }
    }

    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.g.is_alive(u) && !self.status[u as usize] && self.count[u as usize] == 0 {
                self.move_in(u);
            }
        }
    }

    /// Test-only invariant check.
    pub fn check_consistency(&self) -> Result<(), String> {
        for v in self.g.vertices() {
            let c = self
                .g
                .neighbors(v)
                .filter(|&u| self.status[u as usize])
                .count();
            if self.status[v as usize] && c != 0 {
                return Err(format!("not independent at {v}"));
            }
            if !self.status[v as usize] && c == 0 {
                return Err(format!("not maximal at {v}"));
            }
        }
        Ok(())
    }
}

impl BuildableEngine for MaximalOnly {
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        builder.into_session().map(Self::from_session)
    }
}

impl DynamicMis for MaximalOnly {
    fn name(&self) -> &'static str {
        "MaximalOnly"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    fn try_apply(&mut self, upd: &Update) -> Result<SolutionDelta, EngineError> {
        // Edge ops fuse validation into the graph call (the graph checks
        // self-loops and aliveness before mutating; the boolean return
        // classifies duplicates/missing) — no duplicate hash probe. The
        // rare vertex ops pre-validate with `validate_update`.
        match upd {
            Update::InsertEdge(a, b) => {
                if !self.g.insert_edge(*a, *b)? {
                    return Err(EngineError::DuplicateEdge(*a, *b));
                }
                match (self.status[*a as usize], self.status[*b as usize]) {
                    (true, true) => {
                        // Evict the higher-degree endpoint. The winner is
                        // excluded from the decrement sweep: its edge to
                        // the loser was never counted.
                        let loser = if self.g.degree(*b) >= self.g.degree(*a) {
                            *b
                        } else {
                            *a
                        };
                        let winner = if loser == *a { *b } else { *a };
                        self.status[loser as usize] = false;
                        self.feed.record_out(loser);
                        self.size -= 1;
                        let nbrs: Vec<u32> =
                            self.g.neighbors(loser).filter(|&w| w != winner).collect();
                        for u in nbrs {
                            self.count[u as usize] -= 1;
                            if self.count[u as usize] == 0 && !self.status[u as usize] {
                                self.repair.push(u);
                            }
                        }
                        self.count[loser as usize] = 1;
                        self.process_repairs();
                    }
                    (true, false) => self.count[*b as usize] += 1,
                    (false, true) => self.count[*a as usize] += 1,
                    (false, false) => {}
                }
            }
            Update::RemoveEdge(a, b) => {
                if !self.g.remove_edge(*a, *b)? {
                    return Err(EngineError::MissingEdge(*a, *b));
                }
                if self.status[*a as usize] && !self.status[*b as usize] {
                    self.count[*b as usize] -= 1;
                    if self.count[*b as usize] == 0 {
                        self.move_in(*b);
                    }
                } else if self.status[*b as usize] && !self.status[*a as usize] {
                    self.count[*a as usize] -= 1;
                    if self.count[*a as usize] == 0 {
                        self.move_in(*a);
                    }
                }
            }
            Update::InsertVertex { id: _, neighbors } => {
                validate_update(&self.g, upd)?;
                let v = self.g.add_vertex();
                let cap = self.g.capacity();
                if self.status.len() < cap {
                    self.status.resize(cap, false);
                    self.count.resize(cap, 0);
                }
                for &n in neighbors {
                    self.g.insert_edge(v, n).expect("validated");
                }
                self.count[v as usize] = neighbors
                    .iter()
                    .filter(|&&n| self.status[n as usize])
                    .count() as u32;
                if self.count[v as usize] == 0 {
                    self.move_in(v);
                }
            }
            Update::RemoveVertex(v) => {
                validate_update(&self.g, upd)?;
                let was_in = self.status[*v as usize];
                self.status[*v as usize] = false;
                if was_in {
                    self.feed.record_out(*v);
                    self.size -= 1;
                }
                self.count[*v as usize] = 0;
                let former = self.g.remove_vertex(*v).expect("validated");
                if was_in {
                    for u in former {
                        self.count[u as usize] -= 1;
                        if self.count[u as usize] == 0 && !self.status[u as usize] {
                            self.repair.push(u);
                        }
                    }
                    self.process_repairs();
                }
            }
        }
        let mut delta = self.feed.finish_update();
        delta.stats.updates = 1;
        Ok(delta)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.feed.drain()
    }

    fn size(&self) -> usize {
        self.size
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    fn contains(&self, v: u32) -> bool {
        self.status.get(v as usize).copied().unwrap_or(false)
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes()
            + self.status.capacity()
            + self.count.capacity() * 4
            + self.feed.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(g: DynamicGraph, initial: &[u32]) -> MaximalOnly {
        EngineBuilder::on(g).initial(initial).build_as().unwrap()
    }

    #[test]
    fn stays_maximal_under_updates() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut b = build(g, &[]);
        b.check_consistency().unwrap();
        b.try_apply(&Update::RemoveEdge(1, 2)).unwrap();
        b.check_consistency().unwrap();
        b.try_apply(&Update::InsertEdge(0, 3)).unwrap();
        b.check_consistency().unwrap();
        b.try_apply(&Update::RemoveVertex(4)).unwrap();
        b.check_consistency().unwrap();
        b.try_apply(&Update::InsertVertex {
            id: 4,
            neighbors: vec![0, 5],
        })
        .unwrap();
        b.check_consistency().unwrap();
    }

    #[test]
    fn never_beats_one_swap_quality_on_star() {
        // Star with center in the set: MaximalOnly keeps {center}, the
        // swap engines would reach all leaves.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let b = build(g, &[0]);
        assert_eq!(b.size(), 1, "no swap machinery — stuck at the center");
    }
}
