//! `DGOneDIS` / `DGTwoDIS` — reimplementation of the dependency-graph
//! index approach of Zheng, Piao, Cheng & Yu, ICDE 2019 (reference
//! \[21\]), from its published description.
//!
//! The original system indexes *complementary* relations harvested from
//! degree-one (OneDIS) and degree-one + degree-two (TwoDIS) reductions:
//! when a set of vertices is moved out of the solution, the index is
//! searched for a set of complementary vertices of at least the same
//! size. Two published behaviours drive the paper's comparison, and this
//! emulation reproduces both mechanically:
//!
//! 1. **The index is incremental and append-only** — every count
//!    transition appends a dependency edge and nothing is ever pruned, so
//!    entries go stale and "the complementary relation … could become
//!    quite complicated, which results in an excessive long search time"
//!    as updates accumulate.
//! 2. **Search happens only on solution loss** — quality is repaired
//!    when a solution vertex is evicted, but no global k-maximality is
//!    enforced, so the gap widens relative to the swap-based engines as
//!    the graph churns.
//!
//! This is an emulation (the authors' code is not public); DESIGN.md
//! records the substitution.

use dynamis_core::{
    validate_update, BuildableEngine, DeltaFeed, DynamicMis, EngineBuilder, EngineError, Session,
    SolutionDelta,
};
use dynamis_graph::{DynamicGraph, Update};

/// Per-vertex cap on dependency-list length. The real system's index also
/// grows with updates; the cap only bounds memory, not the staleness
/// behaviour (scans still degrade long before the cap binds).
const DEP_CAP: usize = 4096;

/// Dependency-index dynamic near-maximum independent set (OneDIS /
/// TwoDIS).
#[derive(Debug)]
pub struct DgDis {
    g: DynamicGraph,
    status: Vec<bool>,
    count: Vec<u32>,
    size: usize,
    feed: DeltaFeed,
    /// TwoDIS mode: degree-two dependencies and two-level search.
    two_hop: bool,
    /// Append-only dependency index: `deps[v]` = vertices recorded as
    /// complementary to solution vertex `v`.
    deps: Vec<Vec<u32>>,
    repair: Vec<u32>,
    /// Total index entries scanned — the quantity that balloons with
    /// update count (exposed for the harness).
    pub search_steps: u64,
}

impl DgDis {
    /// OneDIS: degree-one dependency index.
    pub fn one_dis(builder: EngineBuilder) -> Result<Self, EngineError> {
        builder.into_session().map(|s| Self::from_session(s, false))
    }

    /// TwoDIS: degree-one + degree-two dependency index.
    pub fn two_dis(builder: EngineBuilder) -> Result<Self, EngineError> {
        builder.into_session().map(|s| Self::from_session(s, true))
    }

    fn from_session(session: Session, two_hop: bool) -> Self {
        let Session { graph, initial, .. } = session;
        let cap = graph.capacity();
        let mut b = DgDis {
            g: graph,
            status: vec![false; cap],
            count: vec![0; cap],
            size: 0,
            feed: DeltaFeed::default(),
            two_hop,
            deps: vec![Vec::new(); cap],
            repair: Vec::new(),
            search_steps: 0,
        };
        for &v in &initial {
            b.status[v as usize] = true;
            b.feed.record_in(v);
            b.size += 1;
        }
        for v in 0..cap as u32 {
            if b.g.is_alive(v) && !b.status[v as usize] {
                b.count[v as usize] =
                    b.g.neighbors(v).filter(|&u| b.status[u as usize]).count() as u32;
                if b.count[v as usize] == 0 {
                    b.repair.push(v);
                }
            }
        }
        b.process_repairs();
        // Initial index from the reduction structure of G_0.
        for v in 0..cap as u32 {
            if b.g.is_alive(v) && !b.status[v as usize] {
                b.index_vertex(v);
            }
        }
        let _ = b.feed.finish_update(); // close the bootstrap span
        b
    }

    /// Records v's current dependencies (count-1 always; count-2 in
    /// TwoDIS mode).
    fn index_vertex(&mut self, v: u32) {
        match self.count[v as usize] {
            1 => {
                if let Some(p) = self.parent_of(v) {
                    self.push_dep(p, v);
                }
            }
            2 if self.two_hop => {
                let parents: Vec<u32> = self
                    .g
                    .neighbors(v)
                    .filter(|&p| self.status[p as usize])
                    .collect();
                for p in parents {
                    self.push_dep(p, v);
                }
            }
            _ => {}
        }
    }

    fn push_dep(&mut self, p: u32, v: u32) {
        let list = &mut self.deps[p as usize];
        if list.len() < DEP_CAP {
            list.push(v);
        }
    }

    fn parent_of(&self, v: u32) -> Option<u32> {
        self.g.neighbors(v).find(|&p| self.status[p as usize])
    }

    fn move_in(&mut self, v: u32) {
        self.status[v as usize] = true;
        self.feed.record_in(v);
        self.size += 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] += 1;
            if !self.status[u as usize] {
                self.index_vertex(u);
            }
        }
    }

    fn move_out(&mut self, v: u32) {
        self.status[v as usize] = false;
        self.feed.record_out(v);
        self.size -= 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] -= 1;
            if self.count[u as usize] == 0 && !self.status[u as usize] {
                self.repair.push(u);
            } else if !self.status[u as usize] {
                self.index_vertex(u);
            }
        }
    }

    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.g.is_alive(u) && !self.status[u as usize] && self.count[u as usize] == 0 {
                self.move_in(u);
            }
        }
    }

    #[inline]
    fn insertable(&self, v: u32) -> bool {
        self.g.is_alive(v) && !self.status[v as usize] && self.count[v as usize] == 0
    }

    /// The index search fired when solution vertex `w` is lost: walk w's
    /// (partly stale) dependency list for direct replacements and, in
    /// TwoDIS mode, for one- and two-level complementary exchanges.
    fn complementary_search(&mut self, w: u32) {
        let direct: Vec<u32> = self.deps[w as usize].clone();
        for c in direct {
            self.search_steps += 1;
            if self.insertable(c) {
                self.move_in(c);
                continue;
            }
            if !self.two_hop {
                continue;
            }
            if !self.g.is_alive(c) || self.status[c as usize] {
                continue; // stale entry — cost paid, nothing gained
            }
            match self.count[c as usize] {
                1 => {
                    // Replace c's blocker with {c, rc} if the index holds a
                    // compatible sibling rc.
                    let Some(blk) = self.parent_of(c) else {
                        continue;
                    };
                    let sibs: Vec<u32> = self.deps[blk as usize].clone();
                    for rc in sibs {
                        self.search_steps += 1;
                        if rc != c
                            && self.g.is_alive(rc)
                            && !self.status[rc as usize]
                            && self.count[rc as usize] == 1
                            && self.parent_of(rc) == Some(blk)
                            && !self.g.has_edge(rc, c)
                        {
                            self.move_out(blk);
                            debug_assert!(self.insertable(c));
                            self.move_in(c);
                            if self.insertable(rc) {
                                self.move_in(rc);
                            }
                            self.process_repairs();
                            break;
                        }
                    }
                }
                2 => {
                    // Two-level exchange: evict both blockers when the
                    // index supplies a compatible dependent for each.
                    let parents: Vec<u32> = self
                        .g
                        .neighbors(c)
                        .filter(|&p| self.status[p as usize])
                        .collect();
                    if parents.len() != 2 {
                        continue;
                    }
                    let (p1, p2) = (parents[0], parents[1]);
                    let find_partner = |me: &mut Self, p: u32, avoid: &[u32]| -> Option<u32> {
                        let list: Vec<u32> = me.deps[p as usize].clone();
                        for d in list {
                            me.search_steps += 1;
                            if me.g.is_alive(d)
                                && !me.status[d as usize]
                                && me.count[d as usize] == 1
                                && me.parent_of(d) == Some(p)
                                && avoid.iter().all(|&x| x != d && !me.g.has_edge(d, x))
                            {
                                return Some(d);
                            }
                        }
                        None
                    };
                    let Some(d1) = find_partner(self, p1, &[c]) else {
                        continue;
                    };
                    let Some(d2) = find_partner(self, p2, &[c, d1]) else {
                        continue;
                    };
                    self.move_out(p1);
                    self.move_out(p2);
                    for x in [c, d1, d2] {
                        if self.insertable(x) {
                            self.move_in(x);
                        }
                    }
                    self.process_repairs();
                }
                _ => {}
            }
        }
        self.process_repairs();
    }
}

impl BuildableEngine for DgDis {
    /// The builder's `k` selects the reduction depth: `k = 1` builds
    /// OneDIS, `k ≥ 2` builds TwoDIS.
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        let session = builder.into_session()?;
        let two_hop = session.k >= 2;
        Ok(Self::from_session(session, two_hop))
    }
}

impl DynamicMis for DgDis {
    fn name(&self) -> &'static str {
        if self.two_hop {
            "DGTwoDIS"
        } else {
            "DGOneDIS"
        }
    }

    fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    fn try_apply(&mut self, upd: &Update) -> Result<SolutionDelta, EngineError> {
        // Edge ops fuse validation into the graph call (the graph checks
        // self-loops and aliveness before mutating; the boolean return
        // classifies duplicates/missing) — no duplicate hash probe. The
        // rare vertex ops pre-validate with `validate_update`.
        match upd {
            Update::InsertEdge(a, b) => {
                if !self.g.insert_edge(*a, *b)? {
                    return Err(EngineError::DuplicateEdge(*a, *b));
                }
                match (self.status[*a as usize], self.status[*b as usize]) {
                    (true, true) => {
                        let loser = if self.g.degree(*b) >= self.g.degree(*a) {
                            *b
                        } else {
                            *a
                        };
                        let winner = if loser == *a { *b } else { *a };
                        self.status[loser as usize] = false;
                        self.feed.record_out(loser);
                        self.size -= 1;
                        let nbrs: Vec<u32> =
                            self.g.neighbors(loser).filter(|&w| w != winner).collect();
                        for u in nbrs {
                            self.count[u as usize] -= 1;
                            if self.count[u as usize] == 0 && !self.status[u as usize] {
                                self.repair.push(u);
                            } else if !self.status[u as usize] {
                                self.index_vertex(u);
                            }
                        }
                        self.count[loser as usize] = 1;
                        self.push_dep(winner, loser);
                        self.process_repairs();
                        // The ICDE'19 trigger: solution loss → index search.
                        self.complementary_search(loser);
                    }
                    (true, false) => {
                        self.count[*b as usize] += 1;
                        self.index_vertex(*b);
                    }
                    (false, true) => {
                        self.count[*a as usize] += 1;
                        self.index_vertex(*a);
                    }
                    (false, false) => {}
                }
            }
            Update::RemoveEdge(a, b) => {
                if !self.g.remove_edge(*a, *b)? {
                    return Err(EngineError::MissingEdge(*a, *b));
                }
                for (x, y) in [(*a, *b), (*b, *a)] {
                    if self.status[y as usize] && !self.status[x as usize] {
                        self.count[x as usize] -= 1;
                        if self.count[x as usize] == 0 {
                            self.repair.push(x);
                            self.process_repairs();
                        } else {
                            self.index_vertex(x);
                        }
                    }
                }
            }
            Update::InsertVertex { id: _, neighbors } => {
                validate_update(&self.g, upd)?;
                let v = self.g.add_vertex();
                let cap = self.g.capacity();
                if self.status.len() < cap {
                    self.status.resize(cap, false);
                    self.count.resize(cap, 0);
                    self.deps.resize_with(cap, Vec::new);
                }
                for &n in neighbors {
                    self.g.insert_edge(v, n).expect("validated");
                }
                self.count[v as usize] = neighbors
                    .iter()
                    .filter(|&&n| self.status[n as usize])
                    .count() as u32;
                if self.count[v as usize] == 0 {
                    self.move_in(v);
                } else {
                    self.index_vertex(v);
                }
            }
            Update::RemoveVertex(v) => {
                validate_update(&self.g, upd)?;
                let was_in = self.status[*v as usize];
                self.status[*v as usize] = false;
                if was_in {
                    self.feed.record_out(*v);
                    self.size -= 1;
                }
                self.count[*v as usize] = 0;
                let former = self.g.remove_vertex(*v).expect("validated");
                if was_in {
                    for u in former {
                        self.count[u as usize] -= 1;
                        if self.count[u as usize] == 0 && !self.status[u as usize] {
                            self.repair.push(u);
                        } else if !self.status[u as usize] {
                            self.index_vertex(u);
                        }
                    }
                    self.process_repairs();
                    self.complementary_search(*v);
                }
                self.deps[*v as usize].clear();
            }
        }
        let mut delta = self.feed.finish_update();
        delta.stats.updates = 1;
        Ok(delta)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.feed.drain()
    }

    fn size(&self) -> usize {
        self.size
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    fn contains(&self, v: u32) -> bool {
        self.status.get(v as usize).copied().unwrap_or(false)
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes()
            + self.status.capacity()
            + self.count.capacity() * 4
            + self.deps.iter().map(|d| d.capacity() * 4).sum::<usize>()
            + self.feed.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_static::verify::is_maximal_dynamic;

    #[test]
    fn maintains_maximal_solution() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut b = DgDis::one_dis(EngineBuilder::on(g)).unwrap();
        let schedule = [
            Update::RemoveEdge(2, 3),
            Update::InsertEdge(0, 3),
            Update::RemoveVertex(1),
            Update::InsertVertex {
                id: 1,
                neighbors: vec![0, 4],
            },
        ];
        for u in &schedule {
            b.try_apply(u).unwrap();
            assert!(
                is_maximal_dynamic(b.graph(), &b.solution()),
                "DGOneDIS must stay maximal after {u:?}"
            );
        }
    }

    #[test]
    fn two_dis_search_recovers_after_conflict() {
        // Solution {0, 1}; insert (0, 1): the evicted vertex's dependents
        // should be recovered through the index.
        let g = DynamicGraph::from_edges(5, &[(0, 2), (0, 3), (1, 4)]);
        let mut b = DgDis::two_dis(EngineBuilder::on(g).initial(&[0, 1])).unwrap();
        assert_eq!(b.size(), 2);
        b.try_apply(&Update::InsertEdge(0, 1)).unwrap();
        // 0 or 1 evicted; dependents (2, 3 or 4) fill in.
        assert!(b.size() >= 2, "index search must recover the loss");
        assert!(is_maximal_dynamic(b.graph(), &b.solution()));
    }

    #[test]
    fn search_steps_accumulate() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut b = DgDis::two_dis(EngineBuilder::on(g).initial(&[0])).unwrap();
        b.try_apply(&Update::InsertVertex {
            id: 4,
            neighbors: vec![1, 2, 3],
        })
        .unwrap();
        b.try_apply(&Update::RemoveVertex(4)).unwrap();
        assert!(b.search_steps > 0, "vertex loss must trigger index search");
    }
}
