//! Offline stand-in for `criterion` (the subset this workspace uses).
//!
//! Wall-clock benchmarking with median-of-samples reporting. Bench
//! binaries built against this shim honor the libtest-style `--test`
//! flag (run every benchmark exactly once, for `cargo test --benches`)
//! and treat any other CLI argument as a substring filter on benchmark
//! ids, so `cargo bench some/name` works as expected. No plots, no
//! statistics beyond min/median/max. See `crates/compat/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a run was invoked (parsed from CLI args by [`Criterion::default`]).
#[derive(Debug, Clone)]
struct RunMode {
    /// Run each benchmark body exactly once (``--test``).
    test_once: bool,
    /// Substring filter over benchmark ids.
    filter: Option<String>,
}

impl RunMode {
    fn from_args() -> Self {
        let mut test_once = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--bench" => test_once |= arg == "--test",
                a if a.starts_with("--") => {} // ignore harness flags
                a => filter = Some(a.to_string()),
            }
        }
        RunMode { test_once, filter }
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    test_once: bool,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_once {
            black_box(routine());
            return;
        }
        // One warm-up, then timed samples.
        black_box(routine());
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_count: usize, mode: &RunMode, mut f: F) {
    if !mode.selected(id) {
        return;
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count,
        test_once: mode.test_once,
    };
    f(&mut b);
    if mode.test_once {
        println!("test {id} ... ok");
        return;
    }
    b.samples.sort_unstable();
    if b.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let min = b.samples[0];
    let med = b.samples[b.samples.len() / 2];
    let max = b.samples[b.samples.len() - 1];
    println!("{id:<50} [{} {} {}]", human(min), human(med), human(max));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    mode: &'a RunMode,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_count, self.mode, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_count, self.mode, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
    mode: RunMode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 10,
            mode: RunMode::from_args(),
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_count, &self.mode, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.sample_count,
            mode: &self.mode,
        }
    }

    /// Runs registered group functions (used by [`criterion_main!`]).
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mode = RunMode {
            test_once: false,
            filter: None,
        };
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 4,
            test_once: false,
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(runs, 5, "warm-up + 4 samples");
        assert_eq!(b.samples.len(), 4);
        assert!(mode.selected("anything"));
    }

    #[test]
    fn filter_matches_substrings() {
        let mode = RunMode {
            test_once: false,
            filter: Some("insert".into()),
        };
        assert!(mode.selected("graph/insert_edges"));
        assert!(!mode.selected("graph/remove_edges"));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("greedy", 100).id, "greedy/100");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
