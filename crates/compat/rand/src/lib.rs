//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! Implements exactly what this workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`] over half-open integer/float ranges,
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). See
//! `crates/compat/README.md` for the substitution rationale.

use std::ops::Range;

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire's method with a
/// rejection fallback on the biased tail.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        // Accept unless we landed in the biased low fringe.
        if lo >= bound.wrapping_neg() % bound {
            return hi;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end as u64).wrapping_sub(self.start as u64);
        self.start.wrapping_add(bounded_u64(rng, span) as i64)
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + bounded_u64(rng, span) as i64) as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        // Clamp handles the (measure-zero in theory, possible in floating
        // point) case of rounding up to `end`.
        (self.start + u * (self.end - self.start)).min(self.end.next_down())
    }
}

/// The user-facing random-generation surface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (Blackman & Vigna), seeded
    /// through SplitMix64. Not crates.io-`SmallRng`-bit-compatible; all
    /// in-tree golden values were produced with this implementation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expansion, as the xoshiro authors advise.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values hit");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
