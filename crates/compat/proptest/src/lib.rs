//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! Supports the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, integer
//! range strategies (`lo..hi`), `prop_assert!`, `prop_assert_eq!`, and
//! `TestCaseError`. Sampling is uniform with a deterministic per-test
//! seed; there is **no shrinking** — a failure report prints the sampled
//! arguments instead. See `crates/compat/README.md`.

use rand::rngs::SmallRng;
pub use rand::Rng;
use rand::SeedableRng;
use std::ops::Range;

/// Runner configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (compatible with `proptest::test_runner`'s
/// error in the `fail` + `?` usage pattern).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Value generator bound to an argument position of a property.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Deterministic per-(test, case) seed: FNV-1a over the test path mixed
/// with the case index, so every property walks its own stable sequence.
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Builds the RNG for one case.
pub fn case_rng(test_path: &str, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(case_seed(test_path, case))
}

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            let msg = format!($($fmt)+);
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{msg}: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// The property-test item wrapper: each `#[test] fn name(arg in strategy,
/// ...)` becomes a plain `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    // `#[test]` is captured by the same attribute repetition as the doc
    // comments and re-emitted verbatim onto the generated zero-argument
    // wrapper (capturing it separately is ambiguous to the macro parser).
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(path, case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} of {total} failed: {e}\n  inputs: {inputs}",
                        case = case,
                        total = config.cases,
                        e = e,
                        inputs = [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values respect their strategies.
        #[test]
        fn ranges_hold(a in 0u64..100, b in 5usize..9) {
            prop_assert!(a < 100);
            prop_assert!((5..9).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, b + 1);
        }

        /// The `?` operator propagates TestCaseError.
        #[test]
        fn question_mark_works(x in 1u32..10) {
            let ok: Result<u32, String> = Ok(x);
            let y = ok.map_err(TestCaseError::fail)?;
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::case_seed("a::b", 3), crate::case_seed("a::b", 3));
        assert_ne!(crate::case_seed("a::b", 3), crate::case_seed("a::b", 4));
        assert_ne!(crate::case_seed("a::b", 3), crate::case_seed("a::c", 3));
    }

    #[test]
    fn prop_assert_returns_err_not_panic() {
        let failing = || -> Result<(), TestCaseError> {
            prop_assert!(1 > 2, "one is not greater");
            Ok(())
        };
        let e = failing().unwrap_err();
        assert!(e.to_string().contains("one is not greater"));
    }
}
