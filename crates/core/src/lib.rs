//! # dynamis-core — dynamic approximate maximum independent set
//!
//! Rust implementation of the maintenance framework of *Dynamic
//! Approximate Maximum Independent Set on Massive Graphs* (ICDE 2022):
//! a `k`-maximal independent set — one admitting no j-swap for any
//! `j ≤ k` — is maintained over a fully dynamic graph, guaranteeing a
//! `(Δ/2 + 1)`-approximate maximum independent set at all times
//! (Theorem 6), and a parameter-dependent **constant** approximation on
//! power-law bounded graphs (Theorem 4).
//!
//! ## The session API
//!
//! Construction goes through one path, the [`EngineBuilder`]: a
//! *session* is `(graph, initial set, k, tuning)`, whether the graph
//! comes from a loader or a resumed [`Snapshot`]. Updates go through
//! [`DynamicMis::try_apply`]: invalid operations (duplicate edge,
//! missing edge, dead vertex, diverging vertex id) are **rejected with
//! an [`EngineError`]** — engine state untouched — instead of
//! panicking, and every accepted update returns a [`SolutionDelta`]
//! naming the few vertices that entered and left the solution, so
//! consumers mirror `I` incrementally (via [`SolutionMirror`]) instead
//! of rematerializing it.
//!
//! Three engines implement the trait here:
//!
//! * [`DyOneSwap`] — k = 1 (Algorithm 2), worst-case linear time per
//!   update sequence;
//! * [`DyTwoSwap`] — k = 2 (Algorithm 3), near-linear expected time on
//!   power-law bounded graphs, empirically larger solutions;
//! * [`GenericKSwap`] — any k, in the §III-B lazy-collection mode (used
//!   for the k-sweep and lazy-vs-eager experiments).
//!
//! ```
//! use dynamis_core::{DynamicMis, EngineBuilder, SolutionMirror};
//! use dynamis_graph::{DynamicGraph, Update};
//!
//! let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let mut engine = EngineBuilder::on(g).k(2).build().unwrap();
//!
//! // A mirror fed from the delta feed tracks the solution exactly.
//! let mut mirror = SolutionMirror::new();
//! mirror.apply(&engine.drain_delta()).unwrap(); // bootstrap delta
//!
//! let delta = engine.try_apply(&Update::RemoveEdge(2, 3)).unwrap();
//! mirror.apply(&delta).unwrap();
//! assert_eq!(mirror.solution(), engine.solution());
//!
//! // Invalid updates are rejected, not panicked on.
//! assert!(engine.try_apply(&Update::RemoveEdge(2, 3)).is_err());
//! ```
//!
//! ## The engine invariants
//!
//! Everything downstream — the mirrors, the serving layer's broadcast
//! logs, the sharded partitions — leans on three contracts, each pinned
//! by a dedicated test suite in the workspace root:
//!
//! * **Delta shape.** Every [`SolutionDelta`] an engine reports (from
//!   `try_apply`, `try_apply_batch`, or `drain_delta`) has `entered`
//!   and `left` strictly sorted, duplicate-free, and disjoint, and is
//!   *net*: a vertex that oscillated during one span appears in
//!   neither list. [`SolutionMirror::apply`] enforces the shape and
//!   refuses inconsistent streams with a typed [`MirrorError`];
//!   `tests/delta_feed.rs` proves, for **all ten** maintainers, that
//!   replaying the deltas from an empty mirror reproduces `solution()`
//!   after every update.
//! * **Rejection is total.** When `try_apply` returns an
//!   [`EngineError`], the engine — graph, solution, counts, queues —
//!   is exactly as it was; when `try_apply_batch` fails at index `i`,
//!   the prefix `..i` is applied, the invariant is re-established, and
//!   everything from `i` on is untouched (see [`EngineError::Batch`]
//!   for the mirror-recovery rules). Pinned by
//!   `tests/engine_behavior.rs` and the batch-rejection cases of
//!   `tests/batching.rs`.
//! * **k-swap local optimality.** After every accepted update the
//!   maintained set is independent, maximal, and admits **no j-swap
//!   for any j ≤ k** — removing j members never allows inserting
//!   j + 1 outsiders. This is the paper's k-maximality, the source of
//!   the `(Δ/2 + 1)` bound, and it holds at *every* update boundary,
//!   not just eventually. `tests/invariants.rs` checks it against
//!   brute-force swap search (`dynamis_static::verify::find_swap`)
//!   over randomized schedules, and `tests/proptest_engines.rs`
//!   against from-scratch rebuilds.

pub mod builder;
pub mod delta;
mod engine;
pub mod error;
pub mod generic;
pub mod one_swap;
mod queues;
pub mod snapshot;
pub mod state;
pub mod two_swap;

pub use builder::{BuildableEngine, EngineBuilder, Session};
pub use delta::{DeltaFeed, SolutionDelta, SolutionMirror};
pub use dynamis_graph::Partitioner;
pub use engine::{EngineConfig, EngineStats};
pub use error::{validate_update, EngineError, MirrorError};
pub use generic::GenericKSwap;
pub use one_swap::DyOneSwap;
pub use snapshot::Snapshot;
pub use two_swap::DyTwoSwap;

use dynamis_graph::{DynamicGraph, Update};

/// Common interface of every dynamic MaxIS maintainer in this workspace
/// (the two paper engines, the generic-k engine, and the baselines in
/// `dynamis-baselines`). Engines are constructed with an
/// [`EngineBuilder`] and driven with fallible, delta-reporting updates.
pub trait DynamicMis {
    /// Algorithm name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// The maintained graph (engines own their copy).
    fn graph(&self) -> &DynamicGraph;

    /// Applies one update and restores the engine's invariant.
    ///
    /// Returns the [`SolutionDelta`] the update caused. An invalid
    /// update — duplicate-edge insert, missing-edge remove, an
    /// operation naming a dead vertex, or a vertex insert whose id
    /// diverges from the graph's allocator — is rejected with engine
    /// state **unchanged**.
    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError>;

    /// Applies a whole burst of updates, returning the net delta.
    ///
    /// The default loops [`DynamicMis::try_apply`]; engines with a real
    /// batch path (deferred swap search) override it. On a rejected
    /// update the valid prefix **stays applied** (with the engine's
    /// invariant re-established) and the error reports the failing
    /// index. The prefix's delta is not returned, but its flips remain
    /// in the drainable feed: feed-driven mirrors just drain as usual,
    /// while mirrors fed from return deltas must re-seed via
    /// [`SolutionMirror::from_solution`] (see [`EngineError::Batch`]).
    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        let mut total = SolutionDelta::default();
        for (index, u) in updates.iter().enumerate() {
            match self.try_apply(u) {
                Ok(delta) => total.merge(delta),
                Err(cause) => return Err(cause.in_batch(index)),
            }
        }
        Ok(total)
    }

    /// Drains the engine's delta feed: the net solution change since
    /// the previous drain (or since construction — the first drain
    /// includes the bootstrap, so a mirror started empty reconstructs
    /// the solution exactly).
    fn drain_delta(&mut self) -> SolutionDelta;

    /// Current solution size |I|.
    fn size(&self) -> usize;

    /// Materializes the solution (sorted vertex ids).
    fn solution(&self) -> Vec<u32>;

    /// O(1) membership test.
    fn contains(&self, v: u32) -> bool;

    /// Approximate heap footprint, for the memory experiments
    /// (Fig. 5b / 6b / 7b).
    fn heap_bytes(&self) -> usize;
}

/// The worst-case approximation guarantee of Theorem 6: any k-maximal
/// independent set satisfies `α(G) ≤ (Δ/2 + 1) · |I|`.
pub fn approximation_bound(max_degree: usize) -> f64 {
    max_degree as f64 / 2.0 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula() {
        assert_eq!(approximation_bound(0), 1.0);
        assert_eq!(approximation_bound(4), 3.0);
        assert_eq!(approximation_bound(7), 4.5);
    }

    #[test]
    fn batch_default_runs_full_schedule_and_merges_deltas() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut e: DyOneSwap = EngineBuilder::on(g).build_as().unwrap();
        let _ = e.drain_delta();
        let delta = e
            .try_apply_batch(&[
                Update::RemoveEdge(1, 2),
                Update::InsertEdge(0, 2),
                Update::InsertEdge(1, 3),
            ])
            .unwrap();
        e.check_consistency().unwrap();
        let mut mirror = SolutionMirror::from_solution(&{
            let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
            let e: DyOneSwap = EngineBuilder::on(g).build_as().unwrap();
            e.solution()
        });
        mirror.apply(&delta).unwrap();
        assert_eq!(mirror.solution(), e.solution());
    }

    #[test]
    fn batch_default_reports_failing_index_with_prefix_applied() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut e: DyOneSwap = EngineBuilder::on(g).build_as().unwrap();
        let err = e
            .try_apply_batch(&[
                Update::RemoveEdge(0, 1), // fine
                Update::InsertEdge(1, 2), // duplicate → rejected
                Update::RemoveEdge(2, 3), // never reached
            ])
            .unwrap_err();
        assert!(matches!(err, EngineError::Batch { index: 1, .. }));
        assert!(!e.graph().has_edge(0, 1), "prefix stays applied");
        assert!(e.graph().has_edge(2, 3), "suffix is not applied");
        e.check_consistency().unwrap();
    }
}
