//! # dynamis-core — dynamic approximate maximum independent set
//!
//! Rust implementation of the maintenance framework of *Dynamic
//! Approximate Maximum Independent Set on Massive Graphs* (ICDE 2022):
//! a `k`-maximal independent set — one admitting no j-swap for any
//! `j ≤ k` — is maintained over a fully dynamic graph, guaranteeing a
//! `(Δ/2 + 1)`-approximate maximum independent set at all times
//! (Theorem 6), and a parameter-dependent **constant** approximation on
//! power-law bounded graphs (Theorem 4).
//!
//! Three engines are provided:
//!
//! * [`DyOneSwap`] — k = 1 (Algorithm 2), worst-case linear time per
//!   update sequence;
//! * [`DyTwoSwap`] — k = 2 (Algorithm 3), near-linear expected time on
//!   power-law bounded graphs, empirically larger solutions;
//! * [`GenericKSwap`] — any k, in the §III-B lazy-collection mode (used
//!   for the k-sweep and lazy-vs-eager experiments).
//!
//! All engines implement the [`DynamicMis`] trait, own their graph, and
//! consume [`dynamis_graph::Update`] streams. [`Snapshot`] checkpoints a
//! running engine and resumes it (or a different-k sibling) later.
//!
//! ```
//! use dynamis_core::{DyTwoSwap, DynamicMis};
//! use dynamis_graph::{DynamicGraph, Update};
//!
//! let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
//! let mut engine = DyTwoSwap::new(g, &[]);
//! let before = engine.size();
//! engine.apply_update(&Update::RemoveEdge(2, 3));
//! assert!(engine.size() >= before);
//! ```

mod engine;
pub mod generic;
pub mod one_swap;
mod queues;
pub mod snapshot;
pub mod state;
pub mod two_swap;

pub use engine::{EngineConfig, EngineStats};
pub use generic::GenericKSwap;
pub use one_swap::DyOneSwap;
pub use snapshot::Snapshot;
pub use two_swap::DyTwoSwap;

use dynamis_graph::{DynamicGraph, Update};

/// Common interface of every dynamic MaxIS maintainer in this workspace
/// (the two paper engines, the generic-k engine, and the baselines in
/// `dynamis-baselines`).
pub trait DynamicMis {
    /// Algorithm name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// The maintained graph (engines own their copy).
    fn graph(&self) -> &DynamicGraph;

    /// Applies one update and restores the engine's invariant.
    fn apply_update(&mut self, u: &Update);

    /// Current solution size |I|.
    fn size(&self) -> usize;

    /// Materializes the solution (sorted vertex ids).
    fn solution(&self) -> Vec<u32>;

    /// O(1) membership test.
    fn contains(&self, v: u32) -> bool;

    /// Approximate heap footprint, for the memory experiments
    /// (Fig. 5b / 6b / 7b).
    fn heap_bytes(&self) -> usize;

    /// Applies a whole update schedule in order.
    fn apply_all(&mut self, updates: &[Update]) {
        for u in updates {
            self.apply_update(u);
        }
    }
}

/// The worst-case approximation guarantee of Theorem 6: any k-maximal
/// independent set satisfies `α(G) ≤ (Δ/2 + 1) · |I|`.
pub fn approximation_bound(max_degree: usize) -> f64 {
    max_degree as f64 / 2.0 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula() {
        assert_eq!(approximation_bound(0), 1.0);
        assert_eq!(approximation_bound(4), 3.0);
        assert_eq!(approximation_bound(7), 4.5);
    }

    #[test]
    fn apply_all_runs_full_schedule() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut e = DyOneSwap::new(g, &[]);
        e.apply_all(&[
            Update::RemoveEdge(1, 2),
            Update::InsertEdge(0, 2),
            Update::InsertEdge(1, 3),
        ]);
        e.check_consistency().unwrap();
    }
}
