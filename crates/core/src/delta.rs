//! Solution deltas: the per-update change to the maintained set.
//!
//! The framework's central empirical fact — each update changes the
//! maintained independent set by only a few vertices (the *adjustment
//! complexity* of Assadi et al., STOC 2018, which the paper's swap
//! cascades keep small in practice) — deserves a first-class API:
//! instead of rematerializing `solution()` (O(|I|)) after every update,
//! consumers receive a [`SolutionDelta`] naming exactly the vertices
//! that entered and left `I`, and can mirror the solution incrementally
//! with a [`SolutionMirror`].
//!
//! Engines record membership flips into a [`DeltaFeed`] as they happen.
//! The feed nets oscillations (a vertex swapped out and back in during
//! one cascade contributes nothing) and serves two consumers at once:
//! [`crate::DynamicMis::try_apply`] returns the per-update delta, while
//! [`crate::DynamicMis::drain_delta`] drains everything accumulated
//! since the last drain — including the construction-time bootstrap, so
//! a mirror started *empty* before any drain reconstructs the solution
//! exactly.
//!
//! Everything here is dense-vector work: recording is two `Vec` pushes
//! per membership flip, netting is one sort over the (small) flip log —
//! no hash probes are added to the update hot path.

use crate::engine::EngineStats;
use crate::error::MirrorError;
use dynamis_graph::hash::FxHashSet;

/// The net change one update (or one batch / one drain) made to the
/// maintained independent set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolutionDelta {
    /// Vertices that entered `I` (sorted, duplicate-free).
    pub entered: Vec<u32>,
    /// Vertices that left `I` (sorted, duplicate-free, disjoint from
    /// `entered`).
    pub left: Vec<u32>,
    /// Work-counter movement over the same span (zeroed for engines
    /// that do not track [`EngineStats`]).
    pub stats: EngineStats,
}

impl SolutionDelta {
    /// True when the update changed nothing about the solution.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty()
    }

    /// Net size change `|entered| − |left|`.
    pub fn net(&self) -> isize {
        self.entered.len() as isize - self.left.len() as isize
    }

    /// Number of vertices touched — the adjustment complexity of the
    /// span this delta covers.
    pub fn adjusted(&self) -> usize {
        self.entered.len() + self.left.len()
    }

    /// Folds `other` (a later delta) into `self`: enter-then-leave and
    /// leave-then-enter cancel, so the result is the net change across
    /// both spans.
    pub fn merge(&mut self, other: SolutionDelta) {
        if other.is_empty() {
            self.stats.accumulate(&other.stats);
            return;
        }
        let mut events: Vec<(u32, bool)> = Vec::with_capacity(self.adjusted() + other.adjusted());
        for list in [(&self.entered, true), (&self.left, false)] {
            events.extend(list.0.iter().map(|&v| (v, list.1)));
        }
        for list in [(&other.entered, true), (&other.left, false)] {
            events.extend(list.0.iter().map(|&v| (v, list.1)));
        }
        let netted = net_events(&mut events);
        self.entered = netted.0;
        self.left = netted.1;
        self.stats.accumulate(&other.stats);
    }
}

/// Nets a flip log: sorts by vertex and keeps, per vertex, the surplus
/// direction (membership flips alternate, so the surplus is −1, 0, or
/// +1). Returns `(entered, left)` sorted. Drains `events`.
fn net_events(events: &mut Vec<(u32, bool)>) -> (Vec<u32>, Vec<u32>) {
    events.sort_unstable_by_key(|&(v, _)| v);
    let mut entered = Vec::new();
    let mut left = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let v = events[i].0;
        let mut balance = 0i32;
        while i < events.len() && events[i].0 == v {
            balance += if events[i].1 { 1 } else { -1 };
            i += 1;
        }
        debug_assert!((-1..=1).contains(&balance), "flips must alternate");
        match balance {
            1 => entered.push(v),
            -1 => left.push(v),
            _ => {}
        }
    }
    events.clear();
    (entered, left)
}

/// Per-engine recorder behind the delta API: every solution-membership
/// flip is appended here, and the two read sides ([`DeltaFeed::finish_update`]
/// for `try_apply`'s return value, [`DeltaFeed::drain`] for the feed)
/// net the log on demand.
#[derive(Debug, Default)]
pub struct DeltaFeed {
    /// Flips of the update in progress.
    current: Vec<(u32, bool)>,
    /// Net flips accumulated since the last [`DeltaFeed::drain`].
    pending: Vec<(u32, bool)>,
    /// Compaction threshold: `pending` is re-netted when it outgrows
    /// this, bounding an undrained feed to O(solution size).
    watermark: usize,
}

const MIN_WATERMARK: usize = 1024;

impl DeltaFeed {
    /// Records that `v` entered the solution.
    #[inline]
    pub fn record_in(&mut self, v: u32) {
        self.current.push((v, true));
    }

    /// Records that `v` left the solution.
    #[inline]
    pub fn record_out(&mut self, v: u32) {
        self.current.push((v, false));
    }

    /// Closes the update in progress: nets its flips, appends them to
    /// the pending feed, and returns them as the update's delta
    /// (`stats` left at default — the engine fills it in).
    pub fn finish_update(&mut self) -> SolutionDelta {
        let (entered, left) = net_events(&mut self.current);
        self.pending.extend(entered.iter().map(|&v| (v, true)));
        self.pending.extend(left.iter().map(|&v| (v, false)));
        if self.pending.len() > self.watermark.max(MIN_WATERMARK) {
            let (e, l) = net_events(&mut self.pending);
            self.pending.extend(e.iter().map(|&v| (v, true)));
            self.pending.extend(l.iter().map(|&v| (v, false)));
            self.watermark = (2 * self.pending.len()).max(MIN_WATERMARK);
        }
        SolutionDelta {
            entered,
            left,
            stats: EngineStats::default(),
        }
    }

    /// Drains everything recorded since the last drain (or since
    /// construction) as one net delta.
    pub fn drain(&mut self) -> SolutionDelta {
        debug_assert!(self.current.is_empty(), "drain between updates only");
        let (entered, left) = net_events(&mut self.pending);
        self.watermark = 0;
        SolutionDelta {
            entered,
            left,
            stats: EngineStats::default(),
        }
    }

    /// Approximate heap footprint.
    pub fn heap_bytes(&self) -> usize {
        (self.current.capacity() + self.pending.capacity()) * std::mem::size_of::<(u32, bool)>()
    }
}

/// A downstream copy of the maintained solution, kept in sync by
/// applying [`SolutionDelta`]s — the read-side half of the session API
/// (a cache layer, a replication target, a UI, …).
#[derive(Debug, Clone, Default)]
pub struct SolutionMirror {
    in_set: FxHashSet<u32>,
    seq: u64,
}

impl SolutionMirror {
    /// An empty mirror; replaying an engine's full feed into it
    /// reconstructs the engine's solution.
    pub fn new() -> Self {
        Self::default()
    }

    /// A mirror primed with an already-materialized solution
    /// (sequence number 0 — deltas applied are counted from here).
    pub fn from_solution(solution: &[u32]) -> Self {
        SolutionMirror {
            in_set: solution.iter().copied().collect(),
            seq: 0,
        }
    }

    /// Applies one delta. Fails (mirror unchanged) with a typed
    /// [`MirrorError`] when the delta is inconsistent with the mirrored
    /// state — a vertex entering twice or leaving while absent means a
    /// delta was dropped or misordered upstream. A delta violating the
    /// [`SolutionDelta`] shape contract (strictly sorted,
    /// duplicate-free lists) is rejected the same way: a duplicated
    /// vertex would otherwise collapse silently in the set.
    pub fn apply(&mut self, delta: &SolutionDelta) -> Result<(), MirrorError> {
        for w in delta.entered.windows(2) {
            if w[0] >= w[1] {
                return Err(MirrorError::EnterExisting {
                    vertex: w[1],
                    seq: self.seq,
                });
            }
        }
        for w in delta.left.windows(2) {
            if w[0] >= w[1] {
                return Err(MirrorError::LeaveAbsent {
                    vertex: w[1],
                    seq: self.seq,
                });
            }
        }
        for &v in &delta.entered {
            if self.in_set.contains(&v) {
                return Err(MirrorError::EnterExisting {
                    vertex: v,
                    seq: self.seq,
                });
            }
        }
        for &v in &delta.left {
            if !self.in_set.contains(&v) {
                return Err(MirrorError::LeaveAbsent {
                    vertex: v,
                    seq: self.seq,
                });
            }
        }
        for &v in &delta.left {
            self.in_set.remove(&v);
        }
        self.in_set.extend(delta.entered.iter().copied());
        self.seq += 1;
        Ok(())
    }

    /// Number of deltas successfully applied since construction — the
    /// mirror's position in its delta stream.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Mirrored solution size.
    pub fn len(&self) -> usize {
        self.in_set.len()
    }

    /// Whether the mirror is empty.
    pub fn is_empty(&self) -> bool {
        self.in_set.is_empty()
    }

    /// O(1) membership test.
    pub fn contains(&self, v: u32) -> bool {
        self.in_set.contains(&v)
    }

    /// Materializes the mirrored solution (sorted) — the same shape
    /// [`crate::DynamicMis::solution`] returns.
    pub fn solution(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.in_set.iter().copied().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_nets_oscillations_within_one_update() {
        let mut f = DeltaFeed::default();
        f.record_in(3);
        f.record_out(7);
        f.record_out(3);
        f.record_in(3); // 3: in, out, in → net in
        let d = f.finish_update();
        assert_eq!(d.entered, vec![3]);
        assert_eq!(d.left, vec![7]);
        assert_eq!(d.net(), 0);
    }

    #[test]
    fn drain_nets_across_updates() {
        let mut f = DeltaFeed::default();
        f.record_in(5);
        let d1 = f.finish_update();
        assert_eq!(d1.entered, vec![5]);
        f.record_out(5);
        f.record_in(2);
        let d2 = f.finish_update();
        assert_eq!(d2.left, vec![5]);
        let drained = f.drain();
        assert_eq!(drained.entered, vec![2], "5's enter+leave cancels");
        assert!(drained.left.is_empty());
        assert!(f.drain().is_empty(), "drain clears the feed");
    }

    #[test]
    fn merge_cancels_and_accumulates_stats() {
        let mut a = SolutionDelta {
            entered: vec![1, 2],
            left: vec![9],
            stats: EngineStats {
                updates: 1,
                one_swaps: 2,
                ..EngineStats::default()
            },
        };
        let b = SolutionDelta {
            entered: vec![9],
            left: vec![2],
            stats: EngineStats {
                updates: 1,
                ..EngineStats::default()
            },
        };
        a.merge(b);
        assert_eq!(a.entered, vec![1]);
        assert!(a.left.is_empty());
        assert_eq!(a.stats.updates, 2);
        assert_eq!(a.stats.one_swaps, 2);
    }

    #[test]
    fn mirror_round_trip_and_error_detection() {
        let mut m = SolutionMirror::new();
        let d = SolutionDelta {
            entered: vec![1, 4],
            left: vec![],
            stats: EngineStats::default(),
        };
        m.apply(&d).unwrap();
        assert_eq!(m.solution(), vec![1, 4]);
        assert!(m.contains(4) && !m.contains(2));
        assert_eq!(m.seq(), 1);
        // Entering an existing member is rejected without mutation, with
        // the offending vertex and the mirror's position in the error.
        assert_eq!(
            m.apply(&d),
            Err(MirrorError::EnterExisting { vertex: 1, seq: 1 })
        );
        assert_eq!(m.len(), 2);
        assert_eq!(m.seq(), 1, "a refused delta does not advance the seq");
        let bad = SolutionDelta {
            entered: vec![],
            left: vec![8],
            stats: EngineStats::default(),
        };
        let err = m.apply(&bad).unwrap_err();
        assert_eq!(err, MirrorError::LeaveAbsent { vertex: 8, seq: 1 });
        assert_eq!((err.vertex(), err.seq()), (8, 1));
        let m2 = SolutionMirror::from_solution(&[4, 1]);
        assert_eq!(m2.solution(), m.solution());
        // A delta violating the shape contract (duplicates inside one
        // list) is corrupt and must not be half-applied silently.
        let dup = SolutionDelta {
            entered: vec![7, 7],
            left: vec![],
            stats: EngineStats::default(),
        };
        assert_eq!(
            m.apply(&dup),
            Err(MirrorError::EnterExisting { vertex: 7, seq: 1 })
        );
        assert!(!m.contains(7), "corrupt delta leaves the mirror unchanged");
    }

    #[test]
    fn undrained_feed_stays_bounded() {
        let mut f = DeltaFeed::default();
        // One vertex toggling forever: the pending log must compact to
        // O(1) instead of growing linearly with updates.
        for i in 0..100_000u32 {
            if i % 2 == 0 {
                f.record_in(7);
            } else {
                f.record_out(7);
            }
            let _ = f.finish_update();
        }
        assert!(
            f.heap_bytes() < 64 * 1024,
            "pending feed must auto-compact ({} bytes)",
            f.heap_bytes()
        );
        let d = f.drain();
        assert!(d.is_empty());
    }
}
