//! Engine checkpointing: persist `(graph, solution)` and resume any
//! engine from it later.
//!
//! A maintenance deployment restarts occasionally (upgrades, crashes);
//! rebuilding the solution from scratch at startup wastes exactly the
//! work the dynamic algorithms save. A [`Snapshot`] captures the live
//! graph (via the exact binary codec, so vertex ids survive) plus the
//! current solution, and resuming goes through the one construction
//! path: [`crate::EngineBuilder::resume`] (or
//! [`crate::EngineBuilder::resume_path`]) turns the pair into the
//! session's graph and initial set, for **any** engine type and any
//! `k` — the restored engine continues with the same `k`-maximal
//! invariant and the same vertex-id allocation behavior.
//!
//! Snapshots carry no framework bookkeeping: the intrusive half-edge
//! marks that store `I(u)` inside the graph (and the bar-tier indices)
//! are derived state, rebuilt in O(n + m) by the engine constructor —
//! which also clears any marks a cloned live graph still carries.
//!
//! Layout after the binary graph section:
//!
//! ```text
//! sol_len u64 LE
//! ids     sol_len × u32 LE (sorted)
//! ```

use crate::DynamicMis;
use dynamis_graph::io::binary::{decode_graph, encode_graph};
use dynamis_graph::{DynamicGraph, GraphError};
use std::io::{Read, Write};
use std::path::Path;

/// A resumable engine state: the graph and the maintained solution.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The graph at checkpoint time (vertex ids preserved exactly).
    pub graph: DynamicGraph,
    /// The maintained independent set (sorted).
    pub solution: Vec<u32>,
}

impl Snapshot {
    /// Captures the state of any engine.
    pub fn capture<E: DynamicMis + ?Sized>(engine: &E) -> Self {
        Snapshot {
            graph: engine.graph().clone(),
            solution: engine.solution(),
        }
    }

    /// Serializes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let graph_bytes = encode_graph(&self.graph);
        let mut out = Vec::with_capacity(graph_bytes.len() + 8 + self.solution.len() * 4);
        out.extend_from_slice(&graph_bytes);
        out.extend_from_slice(&(self.solution.len() as u64).to_le_bytes());
        for &v in &self.solution {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from bytes produced by [`Snapshot::encode`].
    pub fn decode(data: &[u8]) -> Result<Self, GraphError> {
        let corrupt = |message: &str| GraphError::Parse {
            line: 0,
            message: message.into(),
        };
        // The graph section's length is self-describing: header + bitmap
        // + 8 + m × 8 (see the binary codec). Recompute it to find the
        // solution section.
        if data.len() < 10 {
            return Err(corrupt("truncated snapshot"));
        }
        let slots = u32::from_le_bytes(data[6..10].try_into().expect("len checked")) as usize;
        let bitmap_len = slots.div_ceil(8);
        let m_off = 10 + bitmap_len;
        if data.len() < m_off + 8 {
            return Err(corrupt("truncated snapshot graph"));
        }
        let m =
            u64::from_le_bytes(data[m_off..m_off + 8].try_into().expect("len checked")) as usize;
        let graph_end = m_off + 8 + m * 8;
        if data.len() < graph_end + 8 {
            return Err(corrupt("truncated snapshot solution header"));
        }
        let graph = decode_graph(&data[..graph_end])?;
        let sol_len = u64::from_le_bytes(
            data[graph_end..graph_end + 8]
                .try_into()
                .expect("len checked"),
        ) as usize;
        let ids_off = graph_end + 8;
        if data.len() != ids_off + sol_len * 4 {
            return Err(corrupt("snapshot solution length mismatch"));
        }
        let mut solution = Vec::with_capacity(sol_len);
        let mut prev: Option<u32> = None;
        for i in 0..sol_len {
            let off = ids_off + i * 4;
            let v = u32::from_le_bytes(data[off..off + 4].try_into().expect("len checked"));
            if !graph.is_alive(v) {
                return Err(corrupt(&format!("solution vertex {v} not in graph")));
            }
            if let Some(p) = prev {
                if v <= p {
                    return Err(corrupt("solution ids not strictly increasing"));
                }
            }
            prev = Some(v);
            solution.push(v);
        }
        // The snapshot must be an independent set — engines trust it.
        for &v in &solution {
            for u in graph.neighbors(v) {
                if solution.binary_search(&u).is_ok() {
                    return Err(corrupt(&format!("snapshot solution has edge ({v}, {u})")));
                }
            }
        }
        Ok(Snapshot { graph, solution })
    }

    /// Writes the snapshot to a file.
    pub fn write_path<P: AsRef<Path>>(&self, path: P) -> Result<(), GraphError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads a snapshot from a file.
    pub fn read_path<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        let mut f = std::fs::File::open(path)?;
        let mut data = Vec::new();
        f.read_to_end(&mut data)?;
        Self::decode(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DyOneSwap, DyTwoSwap, EngineBuilder};
    use dynamis_graph::Update;

    fn engine_with_history() -> DyTwoSwap {
        let g = DynamicGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
        let mut e: DyTwoSwap = EngineBuilder::on(g).build_as().unwrap();
        e.try_apply(&Update::InsertEdge(0, 4)).unwrap();
        e.try_apply(&Update::RemoveEdge(2, 3)).unwrap();
        e.try_apply(&Update::RemoveVertex(6)).unwrap();
        e
    }

    #[test]
    fn capture_encode_decode_round_trip() {
        let e = engine_with_history();
        let snap = Snapshot::capture(&e);
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.solution, snap.solution);
        assert_eq!(back.graph.num_edges(), snap.graph.num_edges());
        assert!(!back.graph.is_alive(6), "dead slot preserved");
    }

    #[test]
    fn resumed_engine_continues_identically() {
        let e = engine_with_history();
        let snap = Snapshot::capture(&e);
        let mut resumed: DyTwoSwap = EngineBuilder::new().resume(snap).build_as().unwrap();
        assert_eq!(resumed.size(), e.size());
        assert_eq!(resumed.solution(), e.solution());
        // Continue updating: the resumed engine keeps the invariant.
        resumed.try_apply(&Update::InsertEdge(3, 7)).unwrap();
        resumed.check_consistency().unwrap();
    }

    #[test]
    fn resume_into_a_different_k() {
        // A 2-maximal solution is 1-maximal; resuming DyOneSwap from a
        // DyTwoSwap snapshot is valid (the reverse merely re-drains).
        let e = engine_with_history();
        let snap = Snapshot::capture(&e);
        let sol_len = snap.solution.len();
        let resumed: DyOneSwap = EngineBuilder::new().resume(snap).build_as().unwrap();
        resumed.check_consistency().unwrap();
        assert!(resumed.size() >= sol_len);
    }

    #[test]
    fn resume_path_goes_through_the_builder() {
        let dir = std::env::temp_dir().join("dynamis_snapshot_builder_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.snap");
        let e = engine_with_history();
        Snapshot::capture(&e).write_path(&path).unwrap();
        let resumed: DyTwoSwap = EngineBuilder::new()
            .resume_path(&path)
            .unwrap()
            .build_as()
            .unwrap();
        assert_eq!(resumed.solution(), e.solution());
        assert!(EngineBuilder::new()
            .resume_path(dir.join("nope.snap"))
            .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let e = engine_with_history();
        let good = Snapshot::capture(&e).encode();
        assert!(Snapshot::decode(&[]).is_err());
        assert!(Snapshot::decode(&good[..good.len() - 2]).is_err());
        let mut extra = good.clone();
        extra.extend_from_slice(&[0, 0, 0, 0]);
        assert!(Snapshot::decode(&extra).is_err());
    }

    #[test]
    fn non_independent_solution_is_rejected() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let snap = Snapshot {
            graph: g,
            solution: vec![0, 1],
        };
        let err = Snapshot::decode(&snap.encode()).unwrap_err();
        assert!(err.to_string().contains("edge"));
    }

    #[test]
    fn unsorted_or_dead_solutions_are_rejected() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1)]);
        g.remove_vertex(3).unwrap();
        let dead = Snapshot {
            graph: g.clone(),
            solution: vec![3],
        };
        assert!(Snapshot::decode(&dead.encode()).is_err());
        let unsorted = Snapshot {
            graph: g,
            solution: vec![2, 0],
        };
        assert!(Snapshot::decode(&unsorted.encode()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dynamis_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snap");
        let e = engine_with_history();
        Snapshot::capture(&e).write_path(&path).unwrap();
        let back = Snapshot::read_path(&path).unwrap();
        assert_eq!(back.solution, e.solution());
        std::fs::remove_file(&path).ok();
    }
}
