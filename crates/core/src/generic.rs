//! `GenericKSwap` — Algorithm 1 for a user-specified `k`, in the
//! §III-B *lazy collection* mode.
//!
//! Unlike the eager engines, only `status` and `count` are maintained
//! ("the framework only maintains count for each vertex explicitly, and
//! collects other information in real time if needed"). Candidate sets
//! `S ⊆ I` are processed bottom-up: a set of size `j` that yields no
//! j-swap is *promoted* to supersets of size `j + 1` exactly as Algorithm
//! 1 lines 11–12 prescribe. This is both the lazy-collection ablation of
//! Fig. 7 (k ∈ {1, 2}) and the only implementation for k ≥ 3 (Fig. 9) —
//! the paper, too, instantiates eager structures only for k ≤ 2.
//!
//! As the paper notes, "the worst-case time complexity of an algorithm
//! with such strategy can not be well bounded": swap search recollects
//! pools by neighborhood scans, so updates cost more as k grows — the
//! trade-off Fig. 7(d) reports.

use crate::builder::{BuildableEngine, EngineBuilder, Session};
use crate::delta::{DeltaFeed, SolutionDelta};
use crate::engine::EngineStats;
use crate::error::{validate_update, EngineError};
use crate::DynamicMis;
use dynamis_graph::hash::FxHashSet;
use dynamis_graph::{DynamicGraph, GraphError, Update};
use std::collections::VecDeque;

/// Dynamic k-maximal independent set maintenance with lazy collection.
/// Constructed through the [`EngineBuilder`] session API; the builder's
/// `k` selects the swap depth.
#[derive(Debug)]
pub struct GenericKSwap {
    g: DynamicGraph,
    k: usize,
    status: Vec<bool>,
    count: Vec<u32>,
    size: usize,
    feed: DeltaFeed,
    /// Outsiders whose count changed into `[1, k]` — seeds for candidate
    /// sets.
    dirty: VecDeque<u32>,
    dirty_flag: Vec<bool>,
    /// Promoted candidate sets (sorted solution-vertex lists).
    sets: VecDeque<Vec<u32>>,
    seen_sets: FxHashSet<Vec<u32>>,
    repair: Vec<u32>,
    /// Pool-size cap for the backtracking (j+1)-subset search; pools
    /// larger than this are truncated (documented bounded search).
    pub max_pool: usize,
    stats: EngineStats,
}

impl GenericKSwap {
    /// Builds the engine from a validated [`Session`] (use the
    /// [`EngineBuilder`]). The initial set is extended to maximality and
    /// driven to k-maximality.
    pub(crate) fn from_session(session: Session) -> Self {
        let Session {
            graph, initial, k, ..
        } = session;
        let cap = graph.capacity();
        let mut e = GenericKSwap {
            g: graph,
            k,
            status: vec![false; cap],
            count: vec![0; cap],
            size: 0,
            feed: DeltaFeed::default(),
            dirty: VecDeque::new(),
            dirty_flag: vec![false; cap],
            sets: VecDeque::new(),
            seen_sets: FxHashSet::default(),
            repair: Vec::new(),
            max_pool: 256,
            stats: EngineStats::default(),
        };
        for &v in &initial {
            debug_assert!(e.g.is_alive(v));
            e.status[v as usize] = true;
            e.feed.record_in(v);
            e.size += 1;
        }
        for v in 0..cap as u32 {
            if e.g.is_alive(v) && !e.status[v as usize] {
                e.count[v as usize] =
                    e.g.neighbors(v).filter(|&u| e.status[u as usize]).count() as u32;
            }
        }
        // Maximalize, then seed every low-count outsider.
        let free: Vec<u32> =
            e.g.vertices()
                .filter(|&v| !e.status[v as usize] && e.count[v as usize] == 0)
                .collect();
        for v in free {
            if !e.status[v as usize] && e.count[v as usize] == 0 {
                e.move_in(v);
            }
        }
        for v in e.g.vertices().collect::<Vec<_>>() {
            e.mark_dirty(v);
        }
        e.drain();
        // Close the bootstrap span (its flips stay in the drainable
        // feed for mirrors started before the first update).
        let _ = e.feed.finish_update();
        e
    }

    /// The engine's k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    fn ensure_capacity(&mut self) {
        let cap = self.g.capacity();
        if self.status.len() < cap {
            self.status.resize(cap, false);
            self.count.resize(cap, 0);
            self.dirty_flag.resize(cap, false);
        }
    }

    #[inline]
    fn mark_dirty(&mut self, v: u32) {
        if !self.status[v as usize]
            && self.count[v as usize] >= 1
            && self.count[v as usize] as usize <= self.k
            && !self.dirty_flag[v as usize]
        {
            self.dirty_flag[v as usize] = true;
            self.dirty.push_back(v);
        }
    }

    fn move_in(&mut self, v: u32) {
        debug_assert!(!self.status[v as usize] && self.count[v as usize] == 0);
        self.status[v as usize] = true;
        self.feed.record_in(v);
        self.size += 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] += 1;
            self.mark_dirty(u);
        }
    }

    fn move_out(&mut self, v: u32) {
        debug_assert!(self.status[v as usize]);
        self.status[v as usize] = false;
        self.feed.record_out(v);
        self.size -= 1;
        let nbrs: Vec<u32> = self.g.neighbors(v).collect();
        for u in nbrs {
            self.count[u as usize] -= 1;
            if self.count[u as usize] == 0 && !self.status[u as usize] {
                self.repair.push(u);
            } else {
                self.mark_dirty(u);
            }
        }
    }

    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.g.is_alive(u) && !self.status[u as usize] && self.count[u as usize] == 0 {
                self.stats.repairs += 1;
                self.move_in(u);
            }
        }
    }

    /// `I(u)` recomputed on demand (the lazy collection).
    fn parents(&self, u: u32) -> Vec<u32> {
        self.g
            .neighbors(u)
            .filter(|&p| self.status[p as usize])
            .collect()
    }

    /// Candidate pool `¯I≤j(S)`: outsiders with count ≤ |S| and all
    /// parents inside S, collected by scanning N(s) for s ∈ S.
    fn pool_of(&self, set: &[u32]) -> Vec<u32> {
        let j = set.len() as u32;
        let mut pool = Vec::new();
        let mut dedup = FxHashSet::default();
        for &s in set {
            for u in self.g.neighbors(s) {
                if self.status[u as usize] || self.count[u as usize] > j || !dedup.insert(u) {
                    continue;
                }
                let ok = self
                    .g
                    .neighbors(u)
                    .filter(|&p| self.status[p as usize])
                    .all(|p| set.contains(&p));
                if ok {
                    pool.push(u);
                    if pool.len() >= self.max_pool {
                        return pool;
                    }
                }
            }
        }
        pool
    }

    /// Backtracking search for `need` pairwise non-adjacent vertices in
    /// `pool`.
    fn independent_subset(&self, pool: &[u32], need: usize) -> Option<Vec<u32>> {
        fn grow(
            g: &DynamicGraph,
            pool: &[u32],
            start: usize,
            picked: &mut Vec<u32>,
            need: usize,
        ) -> bool {
            if picked.len() == need {
                return true;
            }
            if pool.len() - start < need - picked.len() {
                return false;
            }
            for i in start..pool.len() {
                let v = pool[i];
                if picked.iter().all(|&u| !g.has_edge(u, v)) {
                    picked.push(v);
                    if grow(g, pool, i + 1, picked, need) {
                        return true;
                    }
                    picked.pop();
                }
            }
            false
        }
        let mut picked = Vec::with_capacity(need);
        grow(&self.g, pool, 0, &mut picked, need).then_some(picked)
    }

    /// Processes candidate set S: swap if possible, else promote
    /// (Algorithm 1 lines 5–12).
    fn process_set(&mut self, set: Vec<u32>) {
        let j = set.len();
        if j == 0 || j > self.k || set.iter().any(|&s| !self.status[s as usize]) {
            return;
        }
        let pool = self.pool_of(&set);
        if pool.len() > j {
            if let Some(winners) = self.independent_subset(&pool, j + 1) {
                match j {
                    1 => self.stats.one_swaps += 1,
                    2 => self.stats.two_swaps += 1,
                    _ => {}
                }
                for &s in &set {
                    self.move_out(s);
                }
                for w in winners {
                    if !self.status[w as usize] && self.count[w as usize] == 0 {
                        self.move_in(w);
                    }
                }
                // Unlike the eager engines — whose swap pivot is adjacent
                // to every removed vertex by construction — a generic
                // swap-in set need not cover each s ∈ S: a removed vertex
                // with no winner neighbor must re-enter via repair, and a
                // covered one is a fresh pool member (candidate seed).
                for &s in &set {
                    if self.status[s as usize] {
                        continue; // re-inserted by an inner repair pass
                    }
                    if self.count[s as usize] == 0 {
                        self.repair.push(s);
                    } else {
                        self.mark_dirty(s);
                    }
                }
                self.process_repairs();
                self.seen_sets.clear(); // progress resets promotion dedup
                return;
            }
        }
        // Promote: S' = S ∪ {p} for parents p of nearby low-count
        // outsiders (supersets that inherit S's candidates).
        if j < self.k {
            let mut promoted: Vec<Vec<u32>> = Vec::new();
            for &s in &set {
                for u in self.g.neighbors(s) {
                    if self.status[u as usize] || self.count[u as usize] as usize > j + 1 {
                        continue;
                    }
                    for p in self.parents(u) {
                        if !set.contains(&p) {
                            let mut sup = set.clone();
                            sup.push(p);
                            sup.sort_unstable();
                            sup.dedup();
                            if sup.len() == j + 1 {
                                promoted.push(sup);
                            }
                        }
                    }
                }
            }
            for sup in promoted {
                if self.seen_sets.insert(sup.clone()) {
                    self.sets.push_back(sup);
                }
            }
        }
    }

    /// Drains dirty vertices and promoted sets until k-maximality.
    fn drain(&mut self) {
        loop {
            self.process_repairs();
            if let Some(u) = self.dirty.pop_front() {
                self.dirty_flag[u as usize] = false;
                if !self.g.is_alive(u)
                    || self.status[u as usize]
                    || self.count[u as usize] == 0
                    || self.count[u as usize] as usize > self.k
                {
                    continue;
                }
                let mut set = self.parents(u);
                set.sort_unstable();
                self.process_set(set);
            } else if let Some(set) = self.sets.pop_front() {
                self.process_set(set);
            } else {
                break;
            }
        }
        self.seen_sets.clear();
    }

    /// Test-only invariant check: independence, maximality, counts.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.g.check_consistency()?;
        let mut size = 0;
        for v in self.g.vertices() {
            if self.status[v as usize] {
                size += 1;
                if let Some(u) = self.g.neighbors(v).find(|&u| self.status[u as usize]) {
                    return Err(format!("not independent: ({v},{u})"));
                }
            } else {
                let c = self
                    .g
                    .neighbors(v)
                    .filter(|&u| self.status[u as usize])
                    .count();
                if c == 0 {
                    return Err(format!("not maximal at {v}"));
                }
                if c as u32 != self.count[v as usize] {
                    return Err(format!("count({v}) stale"));
                }
            }
        }
        if size != self.size {
            return Err("size counter stale".into());
        }
        Ok(())
    }
}

impl BuildableEngine for GenericKSwap {
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        builder.into_session().map(Self::from_session)
    }
}

impl DynamicMis for GenericKSwap {
    fn name(&self) -> &'static str {
        match self.k {
            1 => "GenericKSwap(k=1)",
            2 => "GenericKSwap(k=2)",
            3 => "GenericKSwap(k=3)",
            4 => "GenericKSwap(k=4)",
            _ => "GenericKSwap(k>=5)",
        }
    }

    fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    fn try_apply(&mut self, upd: &Update) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        match upd {
            Update::InsertEdge(a, b) => {
                // The graph validates endpoints before mutating; a
                // `false` return means the edge already existed.
                if !self.g.insert_edge(*a, *b)? {
                    return Err(EngineError::DuplicateEdge(*a, *b));
                }
                match (self.status[*a as usize], self.status[*b as usize]) {
                    (false, false) => {}
                    (true, false) => {
                        self.count[*b as usize] += 1;
                        self.mark_dirty(*b);
                    }
                    (false, true) => {
                        self.count[*a as usize] += 1;
                        self.mark_dirty(*a);
                    }
                    (true, true) => {
                        let loser = if self.g.degree(*b) >= self.g.degree(*a) {
                            *b
                        } else {
                            *a
                        };
                        let winner = if loser == *a { *b } else { *a };
                        // Demote loser; its count becomes 1 (the winner).
                        self.status[loser as usize] = false;
                        self.feed.record_out(loser);
                        self.size -= 1;
                        let nbrs: Vec<u32> =
                            self.g.neighbors(loser).filter(|&w| w != winner).collect();
                        for u in nbrs {
                            self.count[u as usize] -= 1;
                            if self.count[u as usize] == 0 && !self.status[u as usize] {
                                self.repair.push(u);
                            } else {
                                self.mark_dirty(u);
                            }
                        }
                        self.count[loser as usize] = 1;
                        self.mark_dirty(loser);
                        self.process_repairs();
                    }
                }
            }
            Update::RemoveEdge(a, b) => {
                if !self.g.remove_edge(*a, *b)? {
                    return Err(EngineError::MissingEdge(*a, *b));
                }
                match (self.status[*a as usize], self.status[*b as usize]) {
                    (true, true) => unreachable!("solution vertices never adjacent"),
                    (true, false) => {
                        self.count[*b as usize] -= 1;
                        if self.count[*b as usize] == 0 {
                            self.repair.push(*b);
                            self.process_repairs();
                        } else {
                            self.mark_dirty(*b);
                        }
                    }
                    (false, true) => {
                        self.count[*a as usize] -= 1;
                        if self.count[*a as usize] == 0 {
                            self.repair.push(*a);
                            self.process_repairs();
                        } else {
                            self.mark_dirty(*a);
                        }
                    }
                    (false, false) => {
                        self.mark_dirty(*a);
                        self.mark_dirty(*b);
                    }
                }
            }
            Update::InsertVertex { id: _, neighbors } => {
                // Full pre-validation (id allocation, neighbor
                // aliveness, duplicates) before the first mutation.
                validate_update(&self.g, upd)?;
                let v = self.g.add_vertex();
                self.ensure_capacity();
                for &n in neighbors {
                    self.g.insert_edge(v, n).expect("neighbors validated above");
                }
                self.count[v as usize] = neighbors
                    .iter()
                    .filter(|&&n| self.status[n as usize])
                    .count() as u32;
                if self.count[v as usize] == 0 {
                    self.move_in(v);
                } else {
                    self.mark_dirty(v);
                }
            }
            Update::RemoveVertex(v) => {
                if !self.g.is_alive(*v) {
                    return Err(GraphError::VertexNotFound(*v).into());
                }
                let was_in = self.status[*v as usize];
                if was_in {
                    self.status[*v as usize] = false;
                    self.feed.record_out(*v);
                    self.size -= 1;
                }
                self.count[*v as usize] = 0;
                self.dirty_flag[*v as usize] = false;
                let former = self.g.remove_vertex(*v).expect("aliveness checked above");
                if was_in {
                    for u in former {
                        self.count[u as usize] -= 1;
                        if self.count[u as usize] == 0 && !self.status[u as usize] {
                            self.repair.push(u);
                        } else {
                            self.mark_dirty(u);
                        }
                    }
                    self.process_repairs();
                }
            }
        }
        self.stats.updates += 1;
        self.drain();
        let mut delta = self.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        Ok(delta)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.feed.drain()
    }

    fn size(&self) -> usize {
        self.size
    }

    fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    fn contains(&self, v: u32) -> bool {
        self.status.get(v as usize).copied().unwrap_or(false)
    }

    fn heap_bytes(&self) -> usize {
        self.g.heap_bytes()
            + self.status.capacity()
            + self.count.capacity() * 4
            + self.dirty_flag.capacity()
            + self.dirty.capacity() * 4
            + self.feed.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(g: DynamicGraph, initial: &[u32], k: usize) -> GenericKSwap {
        EngineBuilder::on(g)
            .initial(initial)
            .k(k)
            .build_as()
            .unwrap()
    }

    /// Regression (found by proptest): a generic swap-in set need not
    /// cover every removed vertex, so an uncovered s ∈ S must re-enter
    /// through the repair queue or the solution loses maximality.
    #[test]
    fn swapped_out_vertex_without_winner_neighbor_is_repaired() {
        use dynamis_gen::uniform::gnm;
        let g = gnm(10, 20, 7718);
        let e = build(g, &[], 3);
        e.check_consistency().unwrap();
    }

    #[test]
    fn k1_fixes_star() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let e = build(g, &[0], 1);
        assert_eq!(e.size(), 4);
        e.check_consistency().unwrap();
    }

    #[test]
    fn k2_fixes_p5() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let e = build(g, &[1, 3], 2);
        assert_eq!(e.size(), 3, "2-swap must upgrade {{1,3}} to {{0,2,4}}");
        e.check_consistency().unwrap();
    }

    #[test]
    fn k3_beats_k1_on_triple_star_chain() {
        // Three stars sharing a common structure where a 3-swap helps:
        // P7 with I = {1, 3, 5} (1-maximal and 2-maximal is {0,2,4,6}).
        let g = DynamicGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]);
        let e1 = build(g.clone(), &[1, 3, 5], 1);
        assert_eq!(e1.size(), 3, "P7 center set is 1-maximal");
        let e3 = build(g, &[1, 3, 5], 3);
        assert_eq!(e3.size(), 4, "3-swap reaches the optimum");
        e3.check_consistency().unwrap();
    }

    #[test]
    fn updates_preserve_invariants() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut e = build(g, &[], 2);
        e.try_apply(&Update::InsertEdge(0, 2)).unwrap();
        e.check_consistency().unwrap();
        e.try_apply(&Update::RemoveVertex(3)).unwrap();
        e.check_consistency().unwrap();
        e.try_apply(&Update::InsertVertex {
            id: 3,
            neighbors: vec![0, 5],
        })
        .unwrap();
        e.check_consistency().unwrap();
        e.try_apply(&Update::RemoveEdge(0, 1)).unwrap();
        e.check_consistency().unwrap();
    }

    #[test]
    fn invalid_updates_are_rejected_without_state_change() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut e = build(g, &[], 3);
        let sol = e.solution();
        let _ = e.drain_delta();
        for bad in [
            Update::InsertEdge(0, 1),
            Update::RemoveEdge(0, 2),
            Update::RemoveVertex(11),
            Update::InsertVertex {
                id: 0,
                neighbors: vec![],
            },
        ] {
            assert!(e.try_apply(&bad).is_err(), "{bad:?} must be rejected");
            assert_eq!(e.solution(), sol);
            assert!(e.drain_delta().is_empty());
            e.check_consistency().unwrap();
        }
    }
}
