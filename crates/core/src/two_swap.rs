//! `DyTwoSwap` — the dynamic (Δ/2 + 1)-approximation algorithm that
//! maintains a **2-maximal** independent set (Algorithm 3).
//!
//! Considering 2-swaps does not improve the worst-case ratio (Theorem 3)
//! but consistently enlarges the maintained solution in practice
//! (Tables II–IV). Expected near-linear update time on power-law bounded
//! graphs: `O(c₁ c₂⁻¹ (t+1)^{β+1/2} ζ(2β−4)^{1/2} n_t)` (§IV-B).

use crate::engine::{EngineConfig, EngineStats, SwapEngine};
use crate::DynamicMis;
use dynamis_graph::{DynamicGraph, Update};

/// Dynamic 2-maximal independent set maintenance.
///
/// # Example
/// ```
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_core::{DyTwoSwap, DynamicMis};
///
/// // P5 with the 1-maximal (but not 2-maximal) set {1, 3}: the engine
/// // upgrades it to the optimum {0, 2, 4} at construction.
/// let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let engine = DyTwoSwap::new(g, &[1, 3]);
/// assert_eq!(engine.size(), 3);
/// assert_eq!(engine.solution(), vec![0, 2, 4]);
/// ```
#[derive(Debug)]
pub struct DyTwoSwap {
    inner: SwapEngine,
}

impl DyTwoSwap {
    /// Builds the engine from a graph and an initial independent set
    /// (extended to maximality, then driven to 2-maximality).
    pub fn new(graph: DynamicGraph, initial: &[u32]) -> Self {
        Self::with_config(graph, initial, EngineConfig::default())
    }

    /// Builds with explicit tuning (perturbation on/off).
    pub fn with_config(graph: DynamicGraph, initial: &[u32], cfg: EngineConfig) -> Self {
        DyTwoSwap {
            inner: SwapEngine::new(graph, initial, true, cfg),
        }
    }

    /// Engine statistics (swaps, repairs, perturbations).
    pub fn stats(&self) -> EngineStats {
        self.inner.stats
    }

    /// Applies a burst of updates with a single swap-search pass at the
    /// end (see `SwapEngine::apply_batch`). The final solution is
    /// 2-maximal, exactly as with per-update application.
    pub fn apply_batch(&mut self, updates: &[dynamis_graph::Update]) {
        self.inner.apply_batch(updates);
    }

    /// Full framework-invariant check (tests/debug only).
    pub fn check_consistency(&self) -> Result<(), String> {
        self.inner.st.check_consistency()
    }
}

impl DynamicMis for DyTwoSwap {
    fn name(&self) -> &'static str {
        "DyTwoSwap"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.inner.st.g
    }

    fn apply_update(&mut self, u: &Update) {
        self.inner.apply_update(u);
    }

    fn size(&self) -> usize {
        self.inner.st.size()
    }

    fn solution(&self) -> Vec<u32> {
        self.inner.st.solution()
    }

    fn contains(&self, v: u32) -> bool {
        self.inner.st.in_solution(v)
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_finds_two_swap_on_p5() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let e = DyTwoSwap::new(g, &[1, 3]);
        assert_eq!(e.size(), 3);
        assert!(e.stats().two_swaps >= 1);
        e.check_consistency().unwrap();
    }

    #[test]
    fn fig4_style_conflicting_insert_keeps_two_maximality() {
        // Modeled on Example 3 (Fig. 4(d)): after a conflicting edge
        // insertion, the k = 2 engine ends 2-maximal and at least as large
        // as the k = 1 engine on the same input.
        let edges = [
            (1, 3),
            (2, 3),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 8),
            (3, 7),
            (7, 9),
            (9, 10),
        ];
        let e0: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (a - 1, b - 1)).collect();
        let g = DynamicGraph::from_edges(10, &e0);
        let mut e2 = DyTwoSwap::new(g.clone(), &[2, 3, 5, 8]);
        let mut e1 = crate::DyOneSwap::new(g, &[2, 3, 5, 8]);
        e2.apply_update(&Update::InsertEdge(2, 3));
        e1.apply_update(&Update::InsertEdge(2, 3));
        assert!(e2.size() >= e1.size(), "k = 2 dominates k = 1");
        e2.check_consistency().unwrap();
        let csr = dynamis_graph::CsrGraph::from_dynamic(e2.graph());
        assert!(dynamis_static::verify::is_k_maximal(
            &csr,
            &e2.solution(),
            2
        ));
    }

    #[test]
    fn outsider_edge_removal_direct_two_swap() {
        // Case ii-b of Algorithm 3: u, v with distinct count-1 parents
        // x, y plus w ∈ ¯I₂({x, y}); deleting (u, v) enables the 2-swap
        // {x, y} → {u, v, w}.
        // Build: x=0, y=1 in I; u=2 (adj x), v=3 (adj y), w=4 (adj x, y);
        // u–v edge to delete; all of u, v, w pairwise non-adjacent
        // otherwise.
        let g = DynamicGraph::from_edges(5, &[(0, 2), (1, 3), (0, 4), (1, 4), (2, 3)]);
        let mut e = DyTwoSwap::new(g, &[0, 1]);
        assert_eq!(e.size(), 2);
        e.apply_update(&Update::RemoveEdge(2, 3));
        assert_eq!(e.size(), 3);
        let sol = e.solution();
        assert_eq!(sol, vec![2, 3, 4]);
        e.check_consistency().unwrap();
    }

    #[test]
    fn vertex_churn_keeps_invariants() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut e = DyTwoSwap::new(g, &[0, 2, 4]);
        e.apply_update(&Update::RemoveVertex(2));
        e.check_consistency().unwrap();
        e.apply_update(&Update::InsertVertex {
            id: 2,
            neighbors: vec![0, 4],
        });
        e.check_consistency().unwrap();
        e.apply_update(&Update::RemoveVertex(0));
        e.apply_update(&Update::RemoveVertex(4));
        e.check_consistency().unwrap();
        assert!(e.size() >= 2);
    }
}
