//! `DyTwoSwap` — the dynamic (Δ/2 + 1)-approximation algorithm that
//! maintains a **2-maximal** independent set (Algorithm 3).
//!
//! Considering 2-swaps does not improve the worst-case ratio (Theorem 3)
//! but consistently enlarges the maintained solution in practice
//! (Tables II–IV). Expected near-linear update time on power-law bounded
//! graphs: `O(c₁ c₂⁻¹ (t+1)^{β+1/2} ζ(2β−4)^{1/2} n_t)` (§IV-B).

use crate::builder::{BuildableEngine, EngineBuilder, Session};
use crate::delta::SolutionDelta;
use crate::engine::{EngineStats, SwapEngine};
use crate::error::EngineError;
use crate::DynamicMis;
use dynamis_graph::{DynamicGraph, Update};

/// Dynamic 2-maximal independent set maintenance.
///
/// Constructed through the [`EngineBuilder`] session API. `k` is fixed
/// at 2 by the type: a builder that explicitly requests any other `k`
/// is rejected rather than silently maintaining a different invariant
/// than the session asked for.
///
/// # Example
/// ```
/// use dynamis_graph::DynamicGraph;
/// use dynamis_core::{DyTwoSwap, DynamicMis, EngineBuilder};
///
/// // P5 with the 1-maximal (but not 2-maximal) set {1, 3}: the engine
/// // upgrades it to the optimum {0, 2, 4} at construction.
/// let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let engine: DyTwoSwap = EngineBuilder::on(g).initial(&[1, 3]).build_as().unwrap();
/// assert_eq!(engine.size(), 3);
/// assert_eq!(engine.solution(), vec![0, 2, 4]);
/// ```
#[derive(Debug)]
pub struct DyTwoSwap {
    inner: SwapEngine,
}

impl DyTwoSwap {
    /// Builds from a validated [`Session`] (use [`EngineBuilder`]).
    pub(crate) fn from_session(session: Session) -> Self {
        DyTwoSwap {
            inner: SwapEngine::new(session.graph, &session.initial, true, session.config),
        }
    }

    /// Engine statistics (swaps, repairs, perturbations).
    pub fn stats(&self) -> EngineStats {
        self.inner.stats
    }

    /// Full framework-invariant check (tests/debug only).
    pub fn check_consistency(&self) -> Result<(), String> {
        self.inner.st.check_consistency()
    }
}

impl BuildableEngine for DyTwoSwap {
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        if builder.requested_k().is_some_and(|k| k != 2) {
            return Err(EngineError::BadParameter(
                "DyTwoSwap maintains k = 2; use EngineBuilder::build (or GenericKSwap) for other k",
            ));
        }
        builder.into_session().map(Self::from_session)
    }
}

impl DynamicMis for DyTwoSwap {
    fn name(&self) -> &'static str {
        "DyTwoSwap"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.inner.st.g
    }

    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
        self.inner.try_apply(u)
    }

    /// The real batch path: one swap-search pass for the whole burst
    /// (see `SwapEngine::try_apply_batch`). The final solution is
    /// 2-maximal, exactly as with per-update application.
    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        self.inner.try_apply_batch(updates)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.inner.st.feed.drain()
    }

    fn size(&self) -> usize {
        self.inner.st.size()
    }

    fn solution(&self) -> Vec<u32> {
        self.inner.st.solution()
    }

    fn contains(&self, v: u32) -> bool {
        self.inner.st.in_solution(v)
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(g: DynamicGraph, initial: &[u32]) -> DyTwoSwap {
        EngineBuilder::on(g).initial(initial).build_as().unwrap()
    }

    #[test]
    fn bootstrap_finds_two_swap_on_p5() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let e = build(g, &[1, 3]);
        assert_eq!(e.size(), 3);
        assert!(e.stats().two_swaps >= 1);
        e.check_consistency().unwrap();
    }

    #[test]
    fn fig4_style_conflicting_insert_keeps_two_maximality() {
        // Modeled on Example 3 (Fig. 4(d)): after a conflicting edge
        // insertion, the k = 2 engine ends 2-maximal and at least as large
        // as the k = 1 engine on the same input.
        let edges = [
            (1, 3),
            (2, 3),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 8),
            (3, 7),
            (7, 9),
            (9, 10),
        ];
        let e0: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (a - 1, b - 1)).collect();
        let g = DynamicGraph::from_edges(10, &e0);
        let mut e2 = build(g.clone(), &[2, 3, 5, 8]);
        let mut e1: crate::DyOneSwap = EngineBuilder::on(g)
            .initial(&[2, 3, 5, 8])
            .build_as()
            .unwrap();
        e2.try_apply(&Update::InsertEdge(2, 3)).unwrap();
        e1.try_apply(&Update::InsertEdge(2, 3)).unwrap();
        assert!(e2.size() >= e1.size(), "k = 2 dominates k = 1");
        e2.check_consistency().unwrap();
        let csr = dynamis_graph::CsrGraph::from_dynamic(e2.graph());
        assert!(dynamis_static::verify::is_k_maximal(
            &csr,
            &e2.solution(),
            2
        ));
    }

    #[test]
    fn outsider_edge_removal_direct_two_swap() {
        // Case ii-b of Algorithm 3: u, v with distinct count-1 parents
        // x, y plus w ∈ ¯I₂({x, y}); deleting (u, v) enables the 2-swap
        // {x, y} → {u, v, w}.
        // Build: x=0, y=1 in I; u=2 (adj x), v=3 (adj y), w=4 (adj x, y);
        // u–v edge to delete; all of u, v, w pairwise non-adjacent
        // otherwise.
        let g = DynamicGraph::from_edges(5, &[(0, 2), (1, 3), (0, 4), (1, 4), (2, 3)]);
        let mut e = build(g, &[0, 1]);
        assert_eq!(e.size(), 2);
        let delta = e.try_apply(&Update::RemoveEdge(2, 3)).unwrap();
        assert_eq!(e.size(), 3);
        let sol = e.solution();
        assert_eq!(sol, vec![2, 3, 4]);
        // The delta names exactly the adjustment the 2-swap made.
        assert_eq!(delta.entered, vec![2, 3, 4]);
        assert_eq!(delta.left, vec![0, 1]);
        assert_eq!(delta.stats.two_swaps, 1);
        e.check_consistency().unwrap();
    }

    #[test]
    fn vertex_churn_keeps_invariants() {
        let g = DynamicGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut e = build(g, &[0, 2, 4]);
        e.try_apply(&Update::RemoveVertex(2)).unwrap();
        e.check_consistency().unwrap();
        e.try_apply(&Update::InsertVertex {
            id: 2,
            neighbors: vec![0, 4],
        })
        .unwrap();
        e.check_consistency().unwrap();
        e.try_apply(&Update::RemoveVertex(0)).unwrap();
        e.try_apply(&Update::RemoveVertex(4)).unwrap();
        e.check_consistency().unwrap();
        assert!(e.size() >= 2);
    }
}
