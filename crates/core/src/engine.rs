//! The maintenance engine implementing Algorithms 1–3.
//!
//! [`SwapEngine`] is the internal workhorse behind the public
//! [`crate::DyOneSwap`] (k = 1) and [`crate::DyTwoSwap`] (k = 2) types.
//! The two instantiations share all update plumbing; the `k2` flag
//! enables the `¯I₂` tier, the `C₂` queue, and the FIND TWOSWAP
//! procedure.
//!
//! ## Candidate discovery
//!
//! The paper enumerates, per update type, which vertices must be enqueued
//! as candidates. We implement the same completeness contract through
//! *count-transition hooks*: whenever `count(u)` transitions into 1 the
//! pair `(I(u), u)` enters `C₁`, and whenever it transitions into 2 (from
//! 3, or from 1 during a MoveIn — i.e. whenever `u` genuinely becomes a
//! new member of some `¯I≤2(S)`) the pair enters `C₂`. The only update
//! that changes bucket *adjacency* without changing any count is the
//! deletion of an edge between two outsiders, which Algorithms 2/3 handle
//! with explicit cases — reproduced verbatim in
//! [`SwapEngine::outsider_edge_removed`]. Every entry is re-validated at
//! pop time, so over-approximating the candidate set affects constant
//! factors only, never correctness.
//!
//! ## Hash discipline
//!
//! The per-neighbor inner loops speak half-edge positions
//! ([`dynamis_graph::EdgeHandle`] and the `(neighbor, mirror)` pairs of
//! [`DynamicGraph::half_edges`]): every count transition, bucket
//! relocation, and swap-search membership test is a dense-vector or
//! intrusive-slot operation. The pair-keyed edge index is touched only
//! at update *entry points* — resolving the `(u, v)` named by the update
//! to a handle, and keeping the index itself alive — which costs O(1)
//! probes per edge update independent of vertex degrees.
//! [`EngineStats::entry_hash_probes`] counts those;
//! [`EngineStats::hot_hash_probes`] counts probes from the transition
//! bookkeeping itself and stays 0 by construction.

use crate::delta::SolutionDelta;
use crate::error::EngineError;
use crate::queues::{C1Queue, C2Queue};
use crate::state::{CountEvent, SwapState};
use dynamis_graph::collections::StampSet;
use dynamis_graph::{DynamicGraph, GraphError, Update};
use dynamis_obs::{Sampler, Stage};

/// Tuning knobs shared by the concrete engines.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Enable the §III-B perturbation: when a candidate yields no swap,
    /// exchange it with its smallest-degree `¯I₁` neighbor if that
    /// strictly decreases the degree (a plateau move that empirically
    /// enlarges later solutions — the `gap*` columns of Tables II–IV).
    pub perturbation: bool,
    /// Maximum perturbation moves per update (termination guard).
    pub perturb_budget: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            perturbation: false,
            perturb_budget: 2,
        }
    }
}

/// Counters exposed for tests, examples, and the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Updates processed.
    pub updates: u64,
    /// 1-swaps performed.
    pub one_swaps: u64,
    /// 2-swaps performed.
    pub two_swaps: u64,
    /// Perturbation moves performed.
    pub perturbations: u64,
    /// Maximality repairs (MoveIn of a freed vertex).
    pub repairs: u64,
    /// Pair-index probes at update entry points (resolving the `(u, v)`
    /// an update names, and index upkeep): O(1) per edge update, one per
    /// deleted edge on vertex removal.
    pub entry_hash_probes: u64,
    /// Hash probes issued by count-transition bookkeeping on the update
    /// inner loop. The intrusive half-edge layout leaves no probe site,
    /// so this is 0 by construction — reported so the `hotpath` bench
    /// (and any regression test) can assert it.
    pub hot_hash_probes: u64,
}

impl EngineStats {
    /// Field-wise `self − before`: the work done between two readings
    /// (used to stamp [`SolutionDelta::stats`]).
    pub fn diff_since(&self, before: &EngineStats) -> EngineStats {
        EngineStats {
            updates: self.updates.wrapping_sub(before.updates),
            one_swaps: self.one_swaps.wrapping_sub(before.one_swaps),
            two_swaps: self.two_swaps.wrapping_sub(before.two_swaps),
            perturbations: self.perturbations.wrapping_sub(before.perturbations),
            repairs: self.repairs.wrapping_sub(before.repairs),
            entry_hash_probes: self
                .entry_hash_probes
                .wrapping_sub(before.entry_hash_probes),
            hot_hash_probes: self.hot_hash_probes.wrapping_sub(before.hot_hash_probes),
        }
    }

    /// Field-wise accumulation (used when merging deltas).
    pub fn accumulate(&mut self, other: &EngineStats) {
        self.updates += other.updates;
        self.one_swaps += other.one_swaps;
        self.two_swaps += other.two_swaps;
        self.perturbations += other.perturbations;
        self.repairs += other.repairs;
        self.entry_hash_probes += other.entry_hash_probes;
        self.hot_hash_probes += other.hot_hash_probes;
    }
}

/// Shared engine for k ∈ {1, 2}.
#[derive(Debug)]
pub(crate) struct SwapEngine {
    pub st: SwapState,
    k2: bool,
    cfg: EngineConfig,
    c1: C1Queue,
    c2: C2Queue,
    repair: Vec<u32>,
    /// Reusable `(neighbor, mirror)` snapshot of the vertex being moved.
    scratch: Vec<(u32, u32)>,
    /// Reusable candidate pools for FIND TWOSWAP.
    cy_buf: Vec<u32>,
    cz_buf: Vec<u32>,
    /// Reusable buffer for the C₂ promotions of FIND ONESWAP.
    promote_buf: Vec<u32>,
    stamp: StampSet,
    stamp2: StampSet,
    perturb_left: u32,
    pub stats: EngineStats,
    timers: CoreTimers,
}

/// Per-update stage timers for the hot path. Timing is double-gated:
/// the process-wide obs enable flag *and* a 1-in-64 sampler, because
/// clock reads (four per sampled update, each a syscall-priced
/// `clock_gettime` on virtualized hosts) are real money against a
/// ~1 µs update — sampling keeps the enabled overhead inside the ≤ 3%
/// budget pinned by `crates/bench/src/bin/obs.rs`.
#[derive(Debug)]
struct CoreTimers {
    /// Full apply span (dispatch + repairs + swap search), sampled.
    apply: Stage,
    /// Swap-search (drain) share of the span, sampled per update but
    /// recorded once per batch on the batch path.
    swap: Stage,
    sampler: Sampler,
}

impl CoreTimers {
    fn new() -> Self {
        CoreTimers {
            apply: Stage::global("core_apply_ns"),
            swap: Stage::global("core_swap_search_ns"),
            sampler: Sampler::one_in_pow2(6),
        }
    }
}

impl SwapEngine {
    /// Builds the engine over `graph` starting from `initial` (must be an
    /// independent set; it is extended to maximality and then driven to
    /// k-maximality before the constructor returns).
    pub fn new(graph: DynamicGraph, initial: &[u32], k2: bool, cfg: EngineConfig) -> Self {
        let cap = graph.capacity();
        let st = SwapState::new(graph, initial, k2);
        let mut c1 = C1Queue::default();
        c1.ensure_capacity(cap);
        let mut eng = SwapEngine {
            st,
            k2,
            cfg,
            c1,
            c2: C2Queue::default(),
            repair: Vec::new(),
            scratch: Vec::new(),
            cy_buf: Vec::new(),
            cz_buf: Vec::new(),
            promote_buf: Vec::new(),
            stamp: StampSet::with_capacity(cap),
            stamp2: StampSet::with_capacity(cap),
            perturb_left: 0,
            stats: EngineStats::default(),
            timers: CoreTimers::new(),
        };
        eng.bootstrap();
        // Close the bootstrap span so the first update's delta does not
        // absorb it; the flips stay in the drainable feed, where the
        // first drain replays the whole starting solution into a mirror.
        let _ = eng.st.feed.finish_update();
        eng
    }

    /// Extends the initial set to maximality and drains all swaps so the
    /// starting solution is k-maximal.
    fn bootstrap(&mut self) {
        let free: Vec<u32> = self
            .st
            .g
            .vertices()
            .filter(|&v| !self.st.in_solution(v) && self.st.count(v) == 0)
            .collect();
        for v in free {
            if !self.st.in_solution(v) && self.st.count(v) == 0 {
                self.move_in(v);
            }
        }
        // Seed every bucket as "new" and drain.
        let sols: Vec<u32> = self.st.solution();
        for v in sols {
            for u in self.st.bar1(v).to_vec() {
                self.c1.push(v, u);
            }
            if self.k2 {
                for u in self.st.bar2_by_parent(v).to_vec() {
                    let (a, b) = self.st.parents2(u);
                    // u appears under both parents; enqueue it only from
                    // the smaller one — the flat C2 FIFO does not dedup.
                    if v == a {
                        self.c2.push(a, b, u);
                    }
                }
            }
        }
        self.perturb_left = 0; // no perturbation during bootstrap
        self.drain();
    }

    #[inline]
    fn handle_event(&mut self, u: u32, ev: CountEvent) {
        match ev {
            CountEvent::To0 => self.repair.push(u),
            CountEvent::To1 { parent } => self.c1.push(parent, u),
            CountEvent::To2 { a, b } => {
                if self.k2 {
                    self.c2.push(a, b, u);
                }
            }
            CountEvent::Other => {}
        }
    }

    /// MOVEIN(v): O(d(v)) plus hook work. The `(neighbor, mirror)` pairs
    /// of v's half-edges hand each neighbor's intrusive slot to
    /// `inc_count` — no hashing.
    fn move_in(&mut self, v: u32) {
        self.st.set_in(v);
        self.scratch.clear();
        self.scratch.extend(self.st.g.half_edges(v));
        for i in 0..self.scratch.len() {
            let (u, pos) = self.scratch[i];
            let ev = self.st.inc_count(u, pos, v);
            self.handle_event(u, ev);
        }
    }

    /// MOVEOUT(v): O(d(v)) plus hook work.
    fn move_out(&mut self, v: u32) {
        self.st.set_out(v);
        self.scratch.clear();
        self.scratch.extend(self.st.g.half_edges(v));
        for i in 0..self.scratch.len() {
            let (u, pos) = self.scratch[i];
            let ev = self.st.dec_count(u, pos, v);
            self.handle_event(u, ev);
        }
    }

    /// Inserts every freed vertex ("extends the solution to be maximal").
    fn process_repairs(&mut self) {
        while let Some(u) = self.repair.pop() {
            if self.st.g.is_alive(u) && !self.st.in_solution(u) && self.st.count(u) == 0 {
                self.stats.repairs += 1;
                self.move_in(u);
            }
        }
    }

    /// The Algorithm 1 main loop: repairs first, then `C₁` bottom-up
    /// before `C₂`. On return both candidate queues are empty — the
    /// termination condition of Algorithm 1.
    fn drain(&mut self) {
        self.drain_inner();
        debug_assert!(self.c1.is_empty(), "C1 not drained");
        debug_assert!(self.c2.is_empty(), "C2 not drained");
        self.stats.hot_hash_probes = self.st.hot_hash_probes;
    }

    fn drain_inner(&mut self) {
        loop {
            self.process_repairs();
            if let Some((v, cands)) = self.c1.pop() {
                self.find_one_swap(v, cands);
            } else if self.k2 {
                if let Some(((a, b), x)) = self.c2.pop() {
                    self.find_two_swap(a, b, x);
                } else {
                    break;
                }
            } else {
                break;
            }
        }
    }

    /// FIND ONESWAP (Algorithm 2 lines 4–11 / Algorithm 3 lines 7–17).
    /// The candidate vector comes from a [`C1Queue::pop`] and goes back
    /// to the queue's free pool afterwards — steady state pops allocate
    /// nothing.
    fn find_one_swap(&mut self, v: u32, mut cands: Vec<u32>) {
        self.find_one_swap_in(v, &mut cands);
        self.c1.recycle(cands);
    }

    fn find_one_swap_in(&mut self, v: u32, cands: &mut Vec<u32>) {
        if !self.st.in_solution(v) {
            return; // stale candidate set
        }
        // Validate & dedup C(v) in place: members must still be count-1
        // children of v.
        self.stamp.clear();
        {
            let (st, stamp) = (&self.st, &mut self.stamp);
            cands.retain(|&u| {
                st.g.is_alive(u)
                    && !st.in_solution(u)
                    && st.count(u) == 1
                    && st.parent1(u) == v
                    && !stamp.is_marked(u)
                    && {
                        stamp.mark(u);
                        true
                    }
            });
        }
        if cands.is_empty() {
            return;
        }
        for &u in cands.iter() {
            // |N[u] ∩ ¯I₁(v)| < |¯I₁(v)| ⟺ G[¯I₁(v)] is no longer a clique
            // around u. Membership is an O(1) test (count == 1 & parent).
            let bar_len = self.st.bar1(v).len();
            let mut inside = 1usize; // u itself (closed neighborhood)
            for w in self.st.g.neighbors(u) {
                if w != v
                    && !self.st.in_solution(w)
                    && self.st.count(w) == 1
                    && self.st.parent1(w) == v
                {
                    inside += 1;
                }
            }
            if inside < bar_len {
                self.stats.one_swaps += 1;
                self.move_out(v);
                debug_assert_eq!(self.st.count(u), 0, "u's only parent was v");
                self.move_in(u);
                // The non-adjacent witness (and any other freed member of
                // the old ¯I₁(v)) is inserted by the repair pass; all new
                // candidates flow from the transition hooks.
                self.process_repairs();
                return;
            }
        }
        // No 1-swap at v. Algorithm 3 lines 14–17: promote the survivors
        // to C₂ — any u ∈ ¯I₂(v) non-adjacent to some c ∈ C(v) may now
        // take part in a 2-swap.
        if self.k2 {
            self.stamp.clear();
            for &c in cands.iter() {
                self.stamp.mark(c);
            }
            let mut promote = std::mem::take(&mut self.promote_buf);
            promote.clear();
            {
                let (st, stamp) = (&self.st, &self.stamp);
                promote.extend(st.bar2_by_parent(v).iter().copied().filter(|&u| {
                    let adj_c = st.g.neighbors(u).filter(|&w| stamp.is_marked(w)).count();
                    adj_c < cands.len()
                }));
            }
            for &u in &promote {
                let (a, b) = self.st.parents2(u);
                self.c2.push(a, b, u);
            }
            self.promote_buf = promote;
        }
        if self.cfg.perturbation && self.perturb_left > 0 {
            self.try_perturb(v);
        }
    }

    /// FIND TWOSWAP (Algorithm 3 lines 18–28) for one count-2 pivot
    /// `x ∈ C(S)`: search a triangle `(x, y, z)` in the complement of
    /// `G[¯I≤2(S)]`.
    fn find_two_swap(&mut self, a: u32, b: u32, x: u32) {
        if !self.st.in_solution(a) || !self.st.in_solution(b) {
            return; // stale candidate
        }
        if !(self.st.g.is_alive(x)
            && !self.st.in_solution(x)
            && self.st.count(x) == 2
            && self.st.parents2(x) == (a.min(b), a.max(b)))
        {
            return;
        }
        // Cy = ¯I₁(a) ∪ ¯I₂(S) − N[x]; Cz = ¯I₁(b) ∪ ¯I₂(S) − N[x].
        self.stamp.clear();
        self.stamp.mark(x);
        for w in self.st.g.neighbors(x) {
            self.stamp.mark(w);
        }
        {
            let (st, stamp) = (&self.st, &self.stamp);
            let (cy, cz) = (&mut self.cy_buf, &mut self.cz_buf);
            cy.clear();
            cy.extend(st.bar1(a).iter().copied().filter(|&y| !stamp.is_marked(y)));
            st.for_each_bar2(a, b, |y| {
                if !stamp.is_marked(y) {
                    cy.push(y);
                }
            });
            if cy.is_empty() {
                return;
            }
            cz.clear();
            cz.extend(st.bar1(b).iter().copied().filter(|&z| !stamp.is_marked(z)));
            st.for_each_bar2(a, b, |z| {
                if !stamp.is_marked(z) {
                    cz.push(z);
                }
            });
            if cz.is_empty() {
                return;
            }
        }
        for i in 0..self.cy_buf.len() {
            let y = self.cy_buf[i];
            // z must avoid N[y]; marking N[y] also rules out z == y.
            self.stamp2.clear();
            self.stamp2.mark(y);
            for w in self.st.g.neighbors(y) {
                self.stamp2.mark(w);
            }
            let z_found = self
                .cz_buf
                .iter()
                .copied()
                .find(|&z| !self.stamp2.is_marked(z));
            if let Some(z) = z_found {
                self.do_two_swap(a, b, x, y, z);
                return;
            }
        }
    }

    fn do_two_swap(&mut self, a: u32, b: u32, x: u32, y: u32, z: u32) {
        self.stats.two_swaps += 1;
        self.move_out(a);
        self.move_out(b);
        for v in [x, y, z] {
            debug_assert_eq!(self.st.count(v), 0, "swap-in vertex must be free");
            if !self.st.in_solution(v) && self.st.count(v) == 0 {
                self.move_in(v);
            }
        }
        self.process_repairs();
    }

    /// §III-B optimization 2: plateau move toward low-degree vertices.
    fn try_perturb(&mut self, v: u32) {
        if !self.st.in_solution(v) {
            return;
        }
        let Some(&u) = self.st.bar1(v).iter().min_by_key(|&&u| self.st.g.degree(u)) else {
            return;
        };
        if self.st.g.degree(u) >= self.st.g.degree(v) {
            return;
        }
        self.perturb_left -= 1;
        self.stats.perturbations += 1;
        self.move_out(v);
        debug_assert_eq!(self.st.count(u), 0);
        self.move_in(u);
        self.process_repairs();
    }

    /// Applies one update and restores k-maximality (the framework's
    /// per-update entry point). An invalid update is rejected with the
    /// engine untouched; an accepted one returns its [`SolutionDelta`].
    pub fn try_apply(&mut self, upd: &Update) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        self.perturb_left = self.cfg.perturb_budget;
        let sampled = self.timers.sampler.tick();
        let t_apply = if sampled {
            self.timers.apply.begin()
        } else {
            None
        };
        self.dispatch(upd)?;
        self.stats.updates += 1;
        let t_swap = if sampled {
            self.timers.swap.begin()
        } else {
            None
        };
        self.drain();
        self.timers.swap.end(t_swap);
        let mut delta = self.st.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        self.timers.apply.end(t_apply);
        Ok(delta)
    }

    /// Routes one update to its fallible handler. Each handler validates
    /// **before** its first mutation, so an `Err` return implies the
    /// engine state is exactly as it was.
    fn dispatch(&mut self, upd: &Update) -> Result<(), EngineError> {
        match upd {
            Update::InsertEdge(a, b) => self.insert_edge(*a, *b),
            Update::RemoveEdge(a, b) => self.remove_edge(*a, *b),
            Update::InsertVertex { id, neighbors } => self.insert_vertex(*id, neighbors),
            Update::RemoveVertex(v) => self.remove_vertex(*v),
        }
    }

    /// Batch mode (extension beyond the paper, cf. its closing remark on
    /// further optimization strategies): applies a whole burst of updates
    /// — maintaining counts, buckets, maximality, and collecting
    /// candidates throughout — but runs the swap-finding drain only
    /// **once**, at the end. The result is identically k-maximal (the
    /// invariant is a property of the final state, restored by the final
    /// drain over the accumulated candidate queues), but cascades caused
    /// by intermediate states are skipped, which pays off on bursty
    /// streams that touch overlapping regions.
    ///
    /// On a rejected update the already-applied prefix stays applied,
    /// the drain still runs (so the engine is k-maximal), and the error
    /// carries the failing index; the prefix's delta remains in the
    /// drainable feed.
    pub fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        let before = self.stats;
        self.perturb_left = self.cfg.perturb_budget;
        let mut failure: Option<(usize, EngineError)> = None;
        for (index, upd) in updates.iter().enumerate() {
            match self.dispatch(upd) {
                Ok(()) => {
                    self.stats.updates += 1;
                    // Maximality must hold before the next op's case
                    // analysis (the framework's invariants assume it);
                    // swap search waits.
                    self.process_repairs();
                }
                Err(cause) => {
                    failure = Some((index, cause));
                    break;
                }
            }
        }
        // One drain per batch: cheap enough to time unsampled.
        let t_swap = self.timers.swap.begin();
        self.drain();
        self.timers.swap.end(t_swap);
        let mut delta = self.st.feed.finish_update();
        delta.stats = self.stats.diff_since(&before);
        match failure {
            None => Ok(delta),
            Some((index, cause)) => Err(cause.in_batch(index)),
        }
    }

    fn insert_edge(&mut self, a: u32, b: u32) -> Result<(), EngineError> {
        // One existence probe + one index insert — the only hash work in
        // this update. Validation is fused into the insertion: the graph
        // rejects self-loops and dead endpoints before mutating, and a
        // `None` handle means the edge already existed.
        let handle = self.st.g.insert_edge_handle(a, b)?;
        let Some(h) = handle else {
            return Err(EngineError::DuplicateEdge(a, b));
        };
        self.stats.entry_hash_probes += 2;
        match (self.st.in_solution(a), self.st.in_solution(b)) {
            (false, false) => {} // counts unchanged; no new swap can appear
            (true, false) => {
                // b moves a layer down; no set ¯I≤k(S) gains a member, so
                // no candidate is needed (see module docs).
                let _ = self.st.inc_count(b, h.pos_v, a);
            }
            (false, true) => {
                let _ = self.st.inc_count(a, h.pos_u, b);
            }
            (true, true) => self.solution_edge_inserted(a, b, h),
        }
        Ok(())
    }

    /// Edge inserted between two solution vertices: one must leave.
    /// Paper rule: prefer the endpoint whose `¯I₁` is non-empty (its
    /// departure frees a replacement, keeping |I| unchanged); otherwise
    /// drop the higher-degree endpoint.
    fn solution_edge_inserted(&mut self, a: u32, b: u32, h: dynamis_graph::EdgeHandle) {
        let loser = if !self.st.bar1(b).is_empty() {
            b
        } else if !self.st.bar1(a).is_empty() {
            a
        } else if self.st.g.degree(b) >= self.st.g.degree(a) {
            b
        } else {
            a
        };
        let winner = if loser == a { b } else { a };
        // Demote `loser`: its non-winner neighbors lose a solution
        // neighbor; it gains `winner` as its own (count 0 → 1 fires the
        // C₁ candidate the paper collects for N[v]).
        self.st.set_out(loser);
        self.scratch.clear();
        self.scratch
            .extend(self.st.g.half_edges(loser).filter(|&(w, _)| w != winner));
        for i in 0..self.scratch.len() {
            let (u, pos) = self.scratch[i];
            let ev = self.st.dec_count(u, pos, loser);
            self.handle_event(u, ev);
        }
        // The freshly inserted edge's handle is still valid (insertion
        // only appends); take the loser-side half-edge position from it.
        let loser_pos = if loser == h.u { h.pos_u } else { h.pos_v };
        let ev = self.st.inc_count(loser, loser_pos, winner);
        self.handle_event(loser, ev);
        self.process_repairs();
    }

    fn remove_edge(&mut self, a: u32, b: u32) -> Result<(), EngineError> {
        // Resolve the named edge to half-edge positions: one probe, plus
        // one for the index delete inside `remove_edge_at`.
        let Some(h) = self.st.g.edge_handle(a, b) else {
            // Cold path: classify the rejection through the shared
            // validator so the error semantics cannot drift from the
            // documented `validate_update` contract.
            return match crate::error::validate_update(&self.st.g, &Update::RemoveEdge(a, b)) {
                Err(e) => Err(e),
                Ok(()) => Err(EngineError::MissingEdge(a, b)),
            };
        };
        self.stats.entry_hash_probes += 2;
        match (self.st.in_solution(a), self.st.in_solution(b)) {
            (true, true) => unreachable!("solution vertices are never adjacent"),
            (true, false) => {
                let ev = self.st.dec_count(b, h.pos_v, a);
                self.st.g.remove_edge_at(h);
                self.handle_event(b, ev);
                self.process_repairs();
            }
            (false, true) => {
                let ev = self.st.dec_count(a, h.pos_u, b);
                self.st.g.remove_edge_at(h);
                self.handle_event(a, ev);
                self.process_repairs();
            }
            (false, false) => {
                self.st.g.remove_edge_at(h);
                self.outsider_edge_removed(a, b);
            }
        }
        Ok(())
    }

    /// Deleting an edge between two outsiders changes adjacency *inside*
    /// buckets without touching any count — the only case needing
    /// explicit candidate logic (Algorithm 2 case ii / Algorithm 3 cases
    /// ii-a/b/c).
    fn outsider_edge_removed(&mut self, u: u32, v: u32) {
        let cu = self.st.count(u);
        let cv = self.st.count(v);
        if cu == 1 && cv == 1 {
            let pu = self.st.parent1(u);
            let pv = self.st.parent1(v);
            if pu == pv {
                // Case a: u, v now witness that G[¯I₁(w)] is not a clique.
                self.c1.push(pu, u);
                self.c1.push(pu, v);
            } else if self.k2 {
                // Case b: direct scan of ¯I₂({x, y}) for a third vertex w
                // non-adjacent to both — adjacency tested through stamps
                // of N(u), N(v) instead of pair-index probes.
                let (x, y) = (pu.min(pv), pu.max(pv));
                self.stamp.clear();
                for w in self.st.g.neighbors(u) {
                    self.stamp.mark(w);
                }
                self.stamp2.clear();
                for w in self.st.g.neighbors(v) {
                    self.stamp2.mark(w);
                }
                let found = self.st.bar2_find(x, y, |w| {
                    !self.stamp.is_marked(w) && !self.stamp2.is_marked(w)
                });
                if let Some(w) = found {
                    self.do_two_swap(x, y, u, v, w);
                }
            }
            return;
        }
        if !self.k2 {
            return;
        }
        // Case c: I(u) ⊆ I(v) = {x, y} (and symmetric) — the count-2
        // endpoint becomes a viable 2-swap pivot.
        if cv == 2 && (1..=2).contains(&cu) {
            let (x, y) = self.st.parents2(v);
            if self.st.sol_neighbors(u).all(|p| p == x || p == y) {
                self.c2.push(x, y, v);
            }
        }
        if cu == 2 && (1..=2).contains(&cv) {
            let (x, y) = self.st.parents2(u);
            if self.st.sol_neighbors(v).all(|p| p == x || p == y) {
                self.c2.push(x, y, u);
            }
        }
    }

    fn insert_vertex(&mut self, id: u32, neighbors: &[u32]) -> Result<(), EngineError> {
        // Validate the whole operation before the first mutation: the
        // stream's id must match the allocator, every named neighbor
        // must be alive, and the neighbor list must be duplicate-free.
        let next = self.st.g.next_vertex_id();
        if next != id {
            return Err(GraphError::IdMismatch {
                expected: id,
                got: next,
            }
            .into());
        }
        self.stamp.clear();
        for &n in neighbors {
            if !self.st.g.is_alive(n) {
                return Err(GraphError::VertexNotFound(n).into());
            }
            if self.stamp.is_marked(n) {
                return Err(EngineError::DuplicateEdge(id, n));
            }
            self.stamp.mark(n);
        }
        let v = self.st.g.add_vertex();
        let cap = self.st.g.capacity();
        self.st.ensure_capacity(cap);
        self.c1.ensure_capacity(cap);
        for &n in neighbors {
            self.stats.entry_hash_probes += 2;
            let h = self
                .st
                .g
                .insert_edge_handle(v, n)
                .expect("neighbors validated above")
                .expect("edge to a fresh vertex cannot pre-exist");
            // Register v's solution neighbors as they arrive; every
            // transition is a genuine new bucket membership (v is new).
            if self.st.in_solution(n) {
                let ev = self.st.inc_count(v, h.pos_u, n);
                self.handle_event(v, ev);
            }
        }
        if self.st.count(v) == 0 {
            self.move_in(v);
        }
        self.process_repairs();
        Ok(())
    }

    fn remove_vertex(&mut self, v: u32) -> Result<(), EngineError> {
        if !self.st.g.is_alive(v) {
            return Err(GraphError::VertexNotFound(v).into());
        }
        // The graph deletes one pair-index entry per incident edge.
        self.stats.entry_hash_probes += self.st.g.degree(v) as u64;
        if self.st.in_solution(v) {
            self.st.set_out(v);
            // Unregister v from each neighbor's I(u) — through the mirror
            // handles — *before* the physical removal, so the transitions
            // are observed.
            self.scratch.clear();
            self.scratch.extend(self.st.g.half_edges(v));
            for i in 0..self.scratch.len() {
                let (u, pos) = self.scratch[i];
                let ev = self.st.dec_count(u, pos, v);
                self.handle_event(u, ev);
            }
            self.st.g.remove_vertex(v).expect("aliveness checked above");
            self.process_repairs();
        } else {
            self.st.purge_outsider(v);
            self.st.g.remove_vertex(v).expect("aliveness checked above");
            // Outsider removal never breaks maximality and only shrinks
            // buckets: no candidates, no repairs.
        }
        Ok(())
    }

    /// Approximate heap footprint (graph + framework + queues).
    pub fn heap_bytes(&self) -> usize {
        self.st.g.heap_bytes() + self.st.heap_bytes() + self.c1.heap_bytes() + self.c2.heap_bytes()
    }
}
