//! Candidate queues `C₁` and `C₂` (Algorithm 1, line 2).
//!
//! `C₁` stores, per candidate solution vertex `v`, the list `C(v)` of
//! vertices newly added to `¯I₁(v)` — dense vectors indexed by vertex id,
//! no hashing. `C₂` is a flat FIFO of `(a, b, x)` triples: `x` newly
//! entered `¯I₂({a, b})`. The seed grouped `C₂` by pair through a
//! pair-keyed hash map, putting a probe on every count-2 transition of
//! every update; the flat FIFO keeps pushes O(1) and hash-free, and the
//! engine re-validates entries at pop time anyway (membership can go
//! stale while the queue drains), so stale or duplicate triples cost
//! constants only, never correctness.

use std::collections::VecDeque;

/// `C₁`: candidate solution vertices `v` with their newly added
/// `¯I₁(v)` members.
///
/// Popped candidate vectors are recycled through a free pool: the
/// engine hands a drained vector back via [`C1Queue::recycle`], and the
/// next push into an empty per-vertex slot reuses it instead of
/// allocating. In steady state the hot path performs **zero**
/// allocations here — the pool turns the `mem::take` in `pop` from an
/// allocation treadmill into a swap.
#[derive(Debug, Default)]
pub(crate) struct C1Queue {
    order: VecDeque<u32>,
    queued: Vec<bool>,
    cand: Vec<Vec<u32>>,
    /// Recycled candidate vectors (cleared, capacity retained).
    pool: Vec<Vec<u32>>,
}

/// Recycled vectors kept at most; beyond this they are dropped (bounds
/// pool memory after a candidate storm).
const MAX_POOLED: usize = 64;

impl C1Queue {
    pub fn ensure_capacity(&mut self, cap: usize) {
        if self.queued.len() < cap {
            self.queued.resize(cap, false);
            self.cand.resize_with(cap, Vec::new);
        }
    }

    /// Records `u` as a new member of `¯I₁(v)`.
    pub fn push(&mut self, v: u32, u: u32) {
        self.ensure_capacity(v as usize + 1);
        let slot = &mut self.cand[v as usize];
        if slot.capacity() == 0 {
            if let Some(recycled) = self.pool.pop() {
                *slot = recycled;
            }
        }
        slot.push(u);
        if !self.queued[v as usize] {
            self.queued[v as usize] = true;
            self.order.push_back(v);
        }
    }

    /// Pops the next candidate pair `(v, C(v))`. Hand the vector back
    /// via [`C1Queue::recycle`] once drained.
    pub fn pop(&mut self) -> Option<(u32, Vec<u32>)> {
        let v = self.order.pop_front()?;
        self.queued[v as usize] = false;
        Some((v, std::mem::take(&mut self.cand[v as usize])))
    }

    /// Returns a popped candidate vector to the free pool.
    pub fn recycle(&mut self, mut cands: Vec<u32>) {
        if cands.capacity() > 0 && self.pool.len() < MAX_POOLED {
            cands.clear();
            self.pool.push(cands);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn heap_bytes(&self) -> usize {
        self.order.capacity() * 4
            + self.queued.capacity()
            + self.cand.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.cand.iter().map(|c| c.capacity() * 4).sum::<usize>()
            + self.pool.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.pool.iter().map(|c| c.capacity() * 4).sum::<usize>()
    }
}

/// `C₂`: FIFO of candidate triples — `x` newly entered `¯I₂({a, b})`.
/// Push and pop are O(1) with zero hash probes.
#[derive(Debug, Default)]
pub(crate) struct C2Queue {
    order: VecDeque<(u32, u32, u32)>,
}

impl C2Queue {
    /// Records `x` as a new member of `¯I₂({a, b})`.
    pub fn push(&mut self, a: u32, b: u32, x: u32) {
        self.order.push_back((a.min(b), a.max(b), x));
    }

    /// Pops the next candidate triple `((a, b), x)` with `a < b`.
    pub fn pop(&mut self) -> Option<((u32, u32), u32)> {
        let (a, b, x) = self.order.pop_front()?;
        Some(((a, b), x))
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    pub fn heap_bytes(&self) -> usize {
        self.order.capacity() * std::mem::size_of::<(u32, u32, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_fifo_with_dedup_of_sets() {
        let mut q = C1Queue::default();
        q.push(3, 10);
        q.push(5, 11);
        q.push(3, 12); // same set, appended
        let (v, c) = q.pop().unwrap();
        assert_eq!(v, 3);
        assert_eq!(c, vec![10, 12]);
        let (v, c) = q.pop().unwrap();
        assert_eq!(v, 5);
        assert_eq!(c, vec![11]);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn c1_requeue_after_pop() {
        let mut q = C1Queue::default();
        q.push(1, 2);
        q.pop();
        q.push(1, 3);
        let (v, c) = q.pop().unwrap();
        assert_eq!((v, c), (1, vec![3]));
    }

    #[test]
    fn c1_recycled_vectors_are_reused_without_reallocating() {
        let mut q = C1Queue::default();
        q.push(2, 9);
        let (_, mut c) = q.pop().unwrap();
        c.reserve(32);
        let had = c.capacity();
        q.recycle(c);
        // The next push into a drained slot must pick the pooled vector
        // back up, capacity intact.
        q.push(5, 1);
        let (v, c) = q.pop().unwrap();
        assert_eq!(v, 5);
        assert_eq!(c, vec![1]);
        assert!(c.capacity() >= had, "pooled capacity must be reused");
    }

    #[test]
    fn c2_pairs_are_order_invariant() {
        let mut q = C2Queue::default();
        q.push(7, 2, 100);
        q.push(2, 7, 101); // same set, separate triple
        let ((a, b), x) = q.pop().unwrap();
        assert_eq!((a, b), (2, 7));
        assert_eq!(x, 100);
        let ((a, b), x) = q.pop().unwrap();
        assert_eq!((a, b), (2, 7));
        assert_eq!(x, 101);
        assert!(q.is_empty());
    }
}
