//! `DyOneSwap` — the dynamic (Δ/2 + 1)-approximation algorithm that
//! maintains a **1-maximal** independent set (Algorithm 2).
//!
//! Worst-case O(m_t) per update; O((1 + t)·n_t) on power-law bounded
//! graphs (§IV-A).

use crate::engine::{EngineConfig, EngineStats, SwapEngine};
use crate::DynamicMis;
use dynamis_graph::{DynamicGraph, Update};

/// Dynamic 1-maximal independent set maintenance.
///
/// # Example
/// ```
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_core::{DyOneSwap, DynamicMis};
///
/// // A star: the greedy initial set {0} is improved to the leaves.
/// let g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
/// let mut engine = DyOneSwap::new(g, &[0]);
/// assert_eq!(engine.size(), 3); // 1-swap fixed the initial set
/// engine.apply_update(&Update::RemoveEdge(0, 1));
/// assert_eq!(engine.size(), 3);
/// ```
#[derive(Debug)]
pub struct DyOneSwap {
    inner: SwapEngine,
}

impl DyOneSwap {
    /// Builds the engine from a graph and an initial independent set
    /// (extended to maximality, then driven to 1-maximality).
    pub fn new(graph: DynamicGraph, initial: &[u32]) -> Self {
        Self::with_config(graph, initial, EngineConfig::default())
    }

    /// Builds with explicit tuning (perturbation on/off).
    pub fn with_config(graph: DynamicGraph, initial: &[u32], cfg: EngineConfig) -> Self {
        DyOneSwap {
            inner: SwapEngine::new(graph, initial, false, cfg),
        }
    }

    /// Engine statistics (swaps, repairs, perturbations).
    pub fn stats(&self) -> EngineStats {
        self.inner.stats
    }

    /// Applies a burst of updates with a single swap-search pass at the
    /// end (see `SwapEngine::apply_batch`). The final solution is
    /// 1-maximal, exactly as with per-update application.
    pub fn apply_batch(&mut self, updates: &[dynamis_graph::Update]) {
        self.inner.apply_batch(updates);
    }

    /// Full framework-invariant check (tests/debug only).
    pub fn check_consistency(&self) -> Result<(), String> {
        self.inner.st.check_consistency()
    }
}

impl DynamicMis for DyOneSwap {
    fn name(&self) -> &'static str {
        "DyOneSwap"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.inner.st.g
    }

    fn apply_update(&mut self, u: &Update) {
        self.inner.apply_update(u);
    }

    fn size(&self) -> usize {
        self.inner.st.size()
    }

    fn solution(&self) -> Vec<u32> {
        self.inner.st.solution()
    }

    fn contains(&self, v: u32) -> bool {
        self.inner.st.in_solution(v)
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_reaches_one_maximality_on_star() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let e = DyOneSwap::new(g, &[0]);
        assert_eq!(e.size(), 4);
        assert_eq!(e.stats().one_swaps, 1);
        e.check_consistency().unwrap();
    }

    #[test]
    fn empty_initial_set_is_maximalized() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let e = DyOneSwap::new(g, &[]);
        assert!(e.size() >= 2);
        e.check_consistency().unwrap();
    }

    #[test]
    fn fig4_style_conflicting_insert_keeps_one_maximality() {
        // Modeled on the running example of §IV-A (Fig. 4): an edge is
        // inserted between two solution vertices; the engine evicts one
        // endpoint and restores 1-maximality via swaps and repairs.
        let edges = [
            (1, 3),
            (2, 3),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 8),
            (3, 7),
            (7, 9),
            (9, 10),
        ];
        let e0: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (a - 1, b - 1)).collect();
        let g = DynamicGraph::from_edges(10, &e0);
        let mut e = DyOneSwap::new(g, &[2, 3, 5, 8]); // v3, v4, v6, v9
        let before = e.size();
        assert!(before >= 4);
        e.apply_update(&Update::InsertEdge(2, 3));
        assert!(e.size() >= before - 1, "at most the evicted endpoint lost");
        e.check_consistency().unwrap();
        // Behavioral contract: the result is 1-maximal.
        let csr = dynamis_graph::CsrGraph::from_dynamic(e.graph());
        assert!(dynamis_static::verify::is_k_maximal(&csr, &e.solution(), 1));
    }
}
