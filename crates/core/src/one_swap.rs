//! `DyOneSwap` — the dynamic (Δ/2 + 1)-approximation algorithm that
//! maintains a **1-maximal** independent set (Algorithm 2).
//!
//! Worst-case O(m_t) per update; O((1 + t)·n_t) on power-law bounded
//! graphs (§IV-A).

use crate::builder::{BuildableEngine, EngineBuilder, Session};
use crate::delta::SolutionDelta;
use crate::engine::{EngineStats, SwapEngine};
use crate::error::EngineError;
use crate::DynamicMis;
use dynamis_graph::{DynamicGraph, Update};

/// Dynamic 1-maximal independent set maintenance.
///
/// Constructed through the [`EngineBuilder`] session API. `k` is fixed
/// at 1 by the type: a builder that explicitly requests any other `k`
/// is rejected — a session asking for 2-maximality must not silently
/// receive the weaker invariant.
///
/// # Example
/// ```
/// use dynamis_graph::{DynamicGraph, Update};
/// use dynamis_core::{DyOneSwap, DynamicMis, EngineBuilder};
///
/// // A star: the greedy initial set {0} is improved to the leaves.
/// let g = DynamicGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
/// let mut engine: DyOneSwap = EngineBuilder::on(g).initial(&[0]).build_as().unwrap();
/// assert_eq!(engine.size(), 3); // 1-swap fixed the initial set
/// let delta = engine.try_apply(&Update::RemoveEdge(0, 1)).unwrap();
/// assert_eq!(engine.size(), 3);
/// assert!(delta.net() >= 0);
/// ```
#[derive(Debug)]
pub struct DyOneSwap {
    inner: SwapEngine,
}

impl DyOneSwap {
    /// Builds from a validated [`Session`] (use [`EngineBuilder`]).
    pub(crate) fn from_session(session: Session) -> Self {
        DyOneSwap {
            inner: SwapEngine::new(session.graph, &session.initial, false, session.config),
        }
    }

    /// Engine statistics (swaps, repairs, perturbations).
    pub fn stats(&self) -> EngineStats {
        self.inner.stats
    }

    /// Full framework-invariant check (tests/debug only).
    pub fn check_consistency(&self) -> Result<(), String> {
        self.inner.st.check_consistency()
    }
}

impl BuildableEngine for DyOneSwap {
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError> {
        if builder.requested_k().is_some_and(|k| k != 1) {
            return Err(EngineError::BadParameter(
                "DyOneSwap maintains k = 1; use EngineBuilder::build (or GenericKSwap) for other k",
            ));
        }
        builder.into_session().map(Self::from_session)
    }
}

impl DynamicMis for DyOneSwap {
    fn name(&self) -> &'static str {
        "DyOneSwap"
    }

    fn graph(&self) -> &DynamicGraph {
        &self.inner.st.g
    }

    fn try_apply(&mut self, u: &Update) -> Result<SolutionDelta, EngineError> {
        self.inner.try_apply(u)
    }

    /// The real batch path: one swap-search pass for the whole burst
    /// (see `SwapEngine::try_apply_batch`). The final solution is
    /// 1-maximal, exactly as with per-update application.
    fn try_apply_batch(&mut self, updates: &[Update]) -> Result<SolutionDelta, EngineError> {
        self.inner.try_apply_batch(updates)
    }

    fn drain_delta(&mut self) -> SolutionDelta {
        self.inner.st.feed.drain()
    }

    fn size(&self) -> usize {
        self.inner.st.size()
    }

    fn solution(&self) -> Vec<u32> {
        self.inner.st.solution()
    }

    fn contains(&self, v: u32) -> bool {
        self.inner.st.in_solution(v)
    }

    fn heap_bytes(&self) -> usize {
        self.inner.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(g: DynamicGraph, initial: &[u32]) -> DyOneSwap {
        EngineBuilder::on(g).initial(initial).build_as().unwrap()
    }

    #[test]
    fn bootstrap_reaches_one_maximality_on_star() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let e = build(g, &[0]);
        assert_eq!(e.size(), 4);
        assert_eq!(e.stats().one_swaps, 1);
        e.check_consistency().unwrap();
    }

    #[test]
    fn empty_initial_set_is_maximalized() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let e = build(g, &[]);
        assert!(e.size() >= 2);
        e.check_consistency().unwrap();
    }

    #[test]
    fn invalid_updates_are_rejected_without_state_change() {
        let g = DynamicGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut e = build(g, &[]);
        let sol = e.solution();
        let _ = e.drain_delta();
        for bad in [
            Update::InsertEdge(0, 1), // duplicate
            Update::RemoveEdge(0, 2), // missing
            Update::InsertEdge(0, 9), // dead endpoint
            Update::RemoveVertex(9),  // dead vertex
            Update::InsertVertex {
                id: 9, // allocator would hand out 4
                neighbors: vec![0],
            },
        ] {
            assert!(e.try_apply(&bad).is_err(), "{bad:?} must be rejected");
            assert_eq!(e.solution(), sol, "{bad:?} must not change the solution");
            assert!(e.drain_delta().is_empty(), "{bad:?} must not emit a delta");
            e.check_consistency().unwrap();
        }
    }

    #[test]
    fn fig4_style_conflicting_insert_keeps_one_maximality() {
        // Modeled on the running example of §IV-A (Fig. 4): an edge is
        // inserted between two solution vertices; the engine evicts one
        // endpoint and restores 1-maximality via swaps and repairs.
        let edges = [
            (1, 3),
            (2, 3),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 8),
            (3, 7),
            (7, 9),
            (9, 10),
        ];
        let e0: Vec<(u32, u32)> = edges.iter().map(|&(a, b)| (a - 1, b - 1)).collect();
        let g = DynamicGraph::from_edges(10, &e0);
        let mut e = build(g, &[2, 3, 5, 8]); // v3, v4, v6, v9
        let before = e.size();
        assert!(before >= 4);
        e.try_apply(&Update::InsertEdge(2, 3)).unwrap();
        assert!(e.size() >= before - 1, "at most the evicted endpoint lost");
        e.check_consistency().unwrap();
        // Behavioral contract: the result is 1-maximal.
        let csr = dynamis_graph::CsrGraph::from_dynamic(e.graph());
        assert!(dynamis_static::verify::is_k_maximal(&csr, &e.solution(), 1));
    }
}
