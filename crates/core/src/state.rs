//! Shared framework state (§III-B): solution membership, counters, the
//! `I(u)` lists, and the hierarchical `¯I₁(v)` / `¯I₂(S)` buckets.
//!
//! Everything is maintained with O(1) amortized relocations, exactly as
//! the paper prescribes: every bucket member stores its own index
//! ("a constant-time update to the position of u if the index of u in
//! ¯I_j(I(u)) is maintained explicitly in vertex u"), and `I(u)` removal
//! is O(1) through a (vertex, solution-neighbor) → position map, the
//! moral equivalent of the pointer the paper stores inside edge `(v, u)`.

use dynamis_graph::hash::FxHashMap;
use dynamis_graph::DynamicGraph;

/// Directed key for (owner, member) position maps — unlike
/// [`dynamis_graph::hash::pair_key`], order matters here.
#[inline]
fn dkey(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Unordered key for a solution-vertex pair `S = {a, b}`.
#[inline]
pub(crate) fn skey(a: u32, b: u32) -> u64 {
    dynamis_graph::hash::pair_key(a, b)
}

/// Count-transition event surfaced to the engine so it can enqueue
/// candidates and maximality repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CountEvent {
    /// count(u) dropped to 0 — u is insertable (maximality repair).
    To0,
    /// count(u) became exactly 1 — u newly belongs to `¯I₁(parent)`.
    To1 {
        /// u's unique solution neighbor.
        parent: u32,
    },
    /// count(u) became exactly 2 — u newly belongs to `¯I₂({a, b})`.
    To2 {
        /// Smaller parent.
        a: u32,
        /// Larger parent.
        b: u32,
    },
    /// No bucket membership changed.
    Other,
}

/// The `¯I₂` tier: buckets keyed by the solution pair, plus a per-parent
/// index (`¯I₂(v)` in Algorithm 3's one-swap-failure promotion).
#[derive(Debug, Default)]
pub(crate) struct PairTier {
    /// `S → ¯I₂(S)` members.
    bucket: FxHashMap<u64, Vec<u32>>,
    /// Index of `u` inside its bucket (valid only while count(u) = 2).
    pos: Vec<u32>,
    /// Cached bucket key of `u` (valid only while count(u) = 2).
    key_of: Vec<u64>,
    /// For each solution vertex `v`: count-2 vertices with `v` as a parent.
    by_parent: Vec<Vec<u32>>,
    /// dkey(parent, u) → index of u in `by_parent[parent]`.
    bp_pos: FxHashMap<u64, u32>,
}

impl PairTier {
    fn ensure(&mut self, cap: usize) {
        if self.pos.len() < cap {
            self.pos.resize(cap, 0);
            self.key_of.resize(cap, 0);
            self.by_parent.resize_with(cap, Vec::new);
        }
    }

    fn add(&mut self, u: u32, a: u32, b: u32) {
        let key = skey(a, b);
        let list = self.bucket.entry(key).or_default();
        self.pos[u as usize] = list.len() as u32;
        self.key_of[u as usize] = key;
        list.push(u);
        for p in [a, b] {
            let bl = &mut self.by_parent[p as usize];
            self.bp_pos.insert(dkey(p, u), bl.len() as u32);
            bl.push(u);
        }
    }

    fn remove(&mut self, u: u32) {
        let key = self.key_of[u as usize];
        let list = self.bucket.get_mut(&key).expect("bucket must exist");
        let p = self.pos[u as usize] as usize;
        list.swap_remove(p);
        if p < list.len() {
            self.pos[list[p] as usize] = p as u32;
        }
        if list.is_empty() {
            self.bucket.remove(&key);
        }
        let (a, b) = dynamis_graph::hash::unpack_pair(key);
        for parent in [a, b] {
            let i = self
                .bp_pos
                .remove(&dkey(parent, u))
                .expect("by-parent entry must exist") as usize;
            let bl = &mut self.by_parent[parent as usize];
            bl.swap_remove(i);
            if i < bl.len() {
                self.bp_pos.insert(dkey(parent, bl[i]), i as u32);
            }
        }
    }

    fn members(&self, a: u32, b: u32) -> &[u32] {
        self.bucket
            .get(&skey(a, b))
            .map_or(&[][..], Vec::as_slice)
    }

    fn heap_bytes(&self) -> usize {
        let buckets: usize = self
            .bucket
            .values()
            .map(|v| v.capacity() * 4 + 48)
            .sum::<usize>();
        let by_parent: usize = self.by_parent.iter().map(|v| v.capacity() * 4).sum();
        buckets
            + by_parent
            + self.pos.capacity() * 4
            + self.key_of.capacity() * 8
            + self.by_parent.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.bp_pos.capacity() * 20
    }
}

/// Framework state over an owned dynamic graph.
#[derive(Debug)]
pub struct SwapState {
    /// The evolving graph (the engine owns its copy).
    pub g: DynamicGraph,
    status: Vec<bool>,
    count: Vec<u32>,
    /// `I(u)` — solution neighbors of `u` (empty while `u ∈ I`).
    sol_list: Vec<Vec<u32>>,
    /// dkey(u, v) → index of solution vertex v inside `sol_list[u]`.
    sol_pos: FxHashMap<u64, u32>,
    /// `¯I₁(v)` for `v ∈ I`.
    bar1: Vec<Vec<u32>>,
    /// dkey(v, u) → index of u inside `bar1[v]`.
    bar1_pos: FxHashMap<u64, u32>,
    pairs: Option<PairTier>,
    size: usize,
}

impl SwapState {
    /// Creates state over `g` with `initial` as the starting independent
    /// set (independence is the caller's responsibility; engines
    /// debug-assert it). `track_pairs` enables the `¯I₂` tier.
    pub fn new(g: DynamicGraph, initial: &[u32], track_pairs: bool) -> Self {
        let cap = g.capacity();
        let mut st = SwapState {
            g,
            status: vec![false; cap],
            count: vec![0; cap],
            sol_list: vec![Vec::new(); cap],
            sol_pos: FxHashMap::default(),
            bar1: vec![Vec::new(); cap],
            bar1_pos: FxHashMap::default(),
            pairs: track_pairs.then(PairTier::default),
            size: 0,
        };
        if let Some(p) = st.pairs.as_mut() {
            p.ensure(cap);
        }
        for &v in initial {
            debug_assert!(st.g.is_alive(v), "initial member {v} must be alive");
            st.status[v as usize] = true;
        }
        st.size = initial.len();
        // Bulk-build counters and bucket tiers in O(n + m).
        for v in 0..cap as u32 {
            if !st.g.is_alive(v) || st.status[v as usize] {
                continue;
            }
            let sols: Vec<u32> = st
                .g
                .neighbors(v)
                .filter(|&u| st.status[u as usize])
                .collect();
            st.count[v as usize] = sols.len() as u32;
            for (i, &s) in sols.iter().enumerate() {
                st.sol_pos.insert(dkey(v, s), i as u32);
            }
            match sols.len() {
                1 => st.bar1_add(sols[0], v),
                2 => {
                    if let Some(p) = st.pairs.as_mut() {
                        p.add(v, sols[0], sols[1]);
                    }
                }
                _ => {}
            }
            st.sol_list[v as usize] = sols;
        }
        st
    }

    /// Grows all per-vertex tables to cover vertex ids `< cap`.
    pub fn ensure_capacity(&mut self, cap: usize) {
        if self.status.len() < cap {
            self.status.resize(cap, false);
            self.count.resize(cap, 0);
            self.sol_list.resize_with(cap, Vec::new);
            self.bar1.resize_with(cap, Vec::new);
        }
        if let Some(p) = self.pairs.as_mut() {
            p.ensure(cap);
        }
    }

    /// Whether `v` is in the maintained solution.
    #[inline]
    pub fn in_solution(&self, v: u32) -> bool {
        self.status[v as usize]
    }

    /// `count(v) = |N(v) ∩ I|`.
    #[inline]
    pub fn count(&self, v: u32) -> u32 {
        self.count[v as usize]
    }

    /// Current solution size |I|.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Collects the solution (paper line: "return all vertices whose
    /// status is TRUE").
    pub fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    /// The unique solution neighbor of a count-1 vertex.
    #[inline]
    pub fn parent1(&self, u: u32) -> u32 {
        debug_assert_eq!(self.count[u as usize], 1);
        self.sol_list[u as usize][0]
    }

    /// The sorted solution-neighbor pair of a count-2 vertex.
    #[inline]
    pub fn parents2(&self, u: u32) -> (u32, u32) {
        debug_assert_eq!(self.count[u as usize], 2);
        let l = &self.sol_list[u as usize];
        (l[0].min(l[1]), l[0].max(l[1]))
    }

    /// `I(u)` — all solution neighbors of u.
    #[inline]
    pub fn sol_neighbors(&self, u: u32) -> &[u32] {
        &self.sol_list[u as usize]
    }

    /// `¯I₁(v)` for a solution vertex v.
    #[inline]
    pub fn bar1(&self, v: u32) -> &[u32] {
        &self.bar1[v as usize]
    }

    /// `¯I₂(S)` for `S = {a, b}` (empty slice when the pair tier is off).
    pub fn bar2(&self, a: u32, b: u32) -> &[u32] {
        self.pairs.as_ref().map_or(&[], |p| p.members(a, b))
    }

    /// `¯I₂(v)` — count-2 vertices having solution vertex v as a parent.
    pub fn bar2_by_parent(&self, v: u32) -> &[u32] {
        self.pairs
            .as_ref()
            .map_or(&[], |p| &p.by_parent[v as usize])
    }

    fn bar1_add(&mut self, parent: u32, u: u32) {
        let list = &mut self.bar1[parent as usize];
        self.bar1_pos.insert(dkey(parent, u), list.len() as u32);
        list.push(u);
    }

    fn bar1_remove(&mut self, parent: u32, u: u32) {
        let i = self
            .bar1_pos
            .remove(&dkey(parent, u))
            .expect("bar1 entry must exist") as usize;
        let list = &mut self.bar1[parent as usize];
        list.swap_remove(i);
        if i < list.len() {
            self.bar1_pos.insert(dkey(parent, list[i]), i as u32);
        }
    }

    /// Registers solution vertex `v` as a new solution neighbor of `u`,
    /// returning the bucket transition.
    pub(crate) fn inc_count(&mut self, u: u32, v: u32) -> CountEvent {
        let list = &mut self.sol_list[u as usize];
        self.sol_pos.insert(dkey(u, v), list.len() as u32);
        list.push(v);
        self.count[u as usize] += 1;
        match self.count[u as usize] {
            1 => {
                self.bar1_add(v, u);
                CountEvent::To1 { parent: v }
            }
            2 => {
                let old = self.sol_list[u as usize][0];
                self.bar1_remove(old, u);
                if let Some(p) = self.pairs.as_mut() {
                    p.add(u, old, v);
                }
                CountEvent::To2 {
                    a: old.min(v),
                    b: old.max(v),
                }
            }
            3 => {
                if let Some(p) = self.pairs.as_mut() {
                    p.remove(u);
                }
                CountEvent::Other
            }
            _ => CountEvent::Other,
        }
    }

    /// Unregisters solution vertex `v` from `I(u)`, returning the bucket
    /// transition. Handles bar-tier relocation, *including* the event of
    /// `To1` being fired when count(u) drops from 1 to... — see match.
    pub(crate) fn dec_count(&mut self, u: u32, v: u32) -> CountEvent {
        let old_count = self.count[u as usize];
        // Drop v from I(u) with the swap-remove + position-map trick.
        let i = self
            .sol_pos
            .remove(&dkey(u, v))
            .expect("sol entry must exist") as usize;
        let list = &mut self.sol_list[u as usize];
        list.swap_remove(i);
        if i < list.len() {
            self.sol_pos.insert(dkey(u, list[i]), i as u32);
        }
        self.count[u as usize] -= 1;
        match old_count {
            1 => {
                self.bar1_remove(v, u);
                CountEvent::To0
            }
            2 => {
                if let Some(p) = self.pairs.as_mut() {
                    p.remove(u);
                }
                let parent = self.sol_list[u as usize][0];
                self.bar1_add(parent, u);
                CountEvent::To1 { parent }
            }
            3 => {
                let l = &self.sol_list[u as usize];
                let (a, b) = (l[0].min(l[1]), l[0].max(l[1]));
                if let Some(p) = self.pairs.as_mut() {
                    p.add(u, a, b);
                }
                CountEvent::To2 { a, b }
            }
            _ => CountEvent::Other,
        }
    }

    /// Flips `v` into the solution. The caller is responsible for first
    /// checking count(v) == 0 and for running `inc_count` on v's
    /// neighbors.
    pub(crate) fn set_in(&mut self, v: u32) {
        debug_assert!(!self.status[v as usize]);
        debug_assert_eq!(self.count[v as usize], 0, "MoveIn needs count 0");
        self.status[v as usize] = true;
        self.size += 1;
    }

    /// Flips `v` out of the solution; the caller runs `dec_count` on v's
    /// neighbors.
    pub(crate) fn set_out(&mut self, v: u32) {
        debug_assert!(self.status[v as usize]);
        self.status[v as usize] = false;
        self.size -= 1;
    }

    /// Clears every per-vertex record of a (just removed) vertex `v` that
    /// was **not** in the solution: bar/bucket membership and `I(v)`.
    pub(crate) fn purge_outsider(&mut self, v: u32) {
        match self.count[v as usize] {
            1 => {
                let p = self.sol_list[v as usize][0];
                self.bar1_remove(p, v);
            }
            2 => {
                if let Some(p) = self.pairs.as_mut() {
                    p.remove(v);
                }
            }
            _ => {}
        }
        let sols = std::mem::take(&mut self.sol_list[v as usize]);
        for s in sols {
            self.sol_pos.remove(&dkey(v, s));
        }
        self.count[v as usize] = 0;
    }

    /// Approximate heap footprint of the framework bookkeeping (the
    /// quantity Fig. 5b / 6b report, minus the graph itself which is
    /// added by the caller).
    pub fn heap_bytes(&self) -> usize {
        let vecs: usize = self
            .sol_list
            .iter()
            .chain(self.bar1.iter())
            .map(|l| l.capacity() * 4)
            .sum();
        vecs + self.status.capacity()
            + self.count.capacity() * 4
            + (self.sol_list.capacity() + self.bar1.capacity()) * std::mem::size_of::<Vec<u32>>()
            + (self.sol_pos.capacity() + self.bar1_pos.capacity()) * 20
            + self.pairs.as_ref().map_or(0, PairTier::heap_bytes)
    }

    /// Exhaustive cross-check of every invariant against a from-scratch
    /// rebuild. Test/debug only: O(n + m) plus hashing.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.g.check_consistency()?;
        let mut size = 0usize;
        for v in self.g.vertices() {
            if self.status[v as usize] {
                size += 1;
                if let Some(u) = self.g.neighbors(v).find(|&u| self.status[u as usize]) {
                    return Err(format!("solution not independent: edge ({v},{u})"));
                }
                if self.count[v as usize] != 0 {
                    return Err(format!("solution vertex {v} has nonzero count"));
                }
            } else {
                let sols: Vec<u32> = self
                    .g
                    .neighbors(v)
                    .filter(|&u| self.status[u as usize])
                    .collect();
                if sols.is_empty() {
                    return Err(format!("not maximal: vertex {v} is free"));
                }
                if self.count[v as usize] as usize != sols.len() {
                    return Err(format!(
                        "count({v}) = {} but |I({v})| = {}",
                        self.count[v as usize],
                        sols.len()
                    ));
                }
                let mut have = self.sol_list[v as usize].clone();
                let mut want = sols.clone();
                have.sort_unstable();
                want.sort_unstable();
                if have != want {
                    return Err(format!("I({v}) list mismatch"));
                }
                match sols.len() {
                    1 => {
                        if !self.bar1[sols[0] as usize].contains(&v) {
                            return Err(format!("{v} missing from bar1({})", sols[0]));
                        }
                    }
                    2 => {
                        if let Some(p) = self.pairs.as_ref() {
                            if !p.members(sols[0], sols[1]).contains(&v) {
                                return Err(format!("{v} missing from bar2 bucket"));
                            }
                            for s in &sols {
                                if !p.by_parent[*s as usize].contains(&v) {
                                    return Err(format!("{v} missing from bar2_by_parent({s})"));
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if size != self.size {
            return Err(format!("size counter {} != actual {size}", self.size));
        }
        // Reverse direction: no stale bucket members.
        for v in self.g.vertices() {
            for &u in &self.bar1[v as usize] {
                if self.count[u as usize] != 1
                    || self.sol_list[u as usize][0] != v
                    || !self.status[v as usize]
                {
                    return Err(format!("stale bar1 member {u} under {v}"));
                }
            }
        }
        if let Some(p) = self.pairs.as_ref() {
            for (key, members) in &p.bucket {
                let (a, b) = dynamis_graph::hash::unpack_pair(*key);
                for &u in members {
                    if self.count[u as usize] != 2 {
                        return Err(format!("stale bar2 member {u}"));
                    }
                    let (x, y) = self.parents2(u);
                    if (x, y) != (a, b) {
                        return Err(format!("bar2 member {u} in wrong bucket"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_on_path() -> SwapState {
        // P5: 0-1-2-3-4 with I = {0, 2, 4}.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        SwapState::new(g, &[0, 2, 4], true)
    }

    #[test]
    fn bulk_build_counts_and_buckets() {
        let st = state_on_path();
        assert_eq!(st.size(), 3);
        assert_eq!(st.count(1), 2);
        assert_eq!(st.count(3), 2);
        assert_eq!(st.parents2(1), (0, 2));
        assert_eq!(st.bar2(0, 2), &[1]);
        assert_eq!(st.bar2(2, 4), &[3]);
        assert_eq!(st.bar2_by_parent(2).len(), 2);
        st.check_consistency().unwrap();
    }

    #[test]
    fn inc_dec_round_trip() {
        let mut st = state_on_path();
        // Remove 0 from 1's solution list: count 2 → 1, moves to bar1(2).
        let ev = st.dec_count(1, 0);
        assert_eq!(ev, CountEvent::To1 { parent: 2 });
        assert_eq!(st.bar1(2), &[1]);
        assert!(st.bar2(0, 2).is_empty());
        // And back.
        let ev = st.inc_count(1, 0);
        assert!(matches!(ev, CountEvent::To2 { a: 0, b: 2 }));
        assert_eq!(st.bar2(0, 2), &[1]);
        assert!(st.bar1(2).is_empty());
    }

    #[test]
    fn dec_to_zero_signals_repair() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let mut st = SwapState::new(g, &[0], true);
        assert_eq!(st.dec_count(1, 0), CountEvent::To0);
        assert_eq!(st.count(1), 0);
    }

    #[test]
    fn three_plus_counts_leave_buckets() {
        // Star center 3 with leaves in I.
        let g = DynamicGraph::from_edges(4, &[(3, 0), (3, 1), (3, 2)]);
        let mut st = SwapState::new(g, &[0, 1, 2], true);
        assert_eq!(st.count(3), 3);
        assert!(st.bar2_by_parent(0).is_empty());
        // Drop to 2: enters bucket.
        let ev = st.dec_count(3, 2);
        assert!(matches!(ev, CountEvent::To2 { a: 0, b: 1 }));
        assert_eq!(st.bar2(0, 1), &[3]);
    }

    #[test]
    fn purge_outsider_cleans_everything() {
        let mut st = state_on_path();
        st.purge_outsider(1);
        assert_eq!(st.count(1), 0);
        assert!(st.bar2(0, 2).is_empty());
        assert!(st.sol_neighbors(1).is_empty());
    }

    #[test]
    fn pair_tier_swap_remove_fixups() {
        // Two vertices in the same bucket; removing the first must keep
        // the second's position valid.
        let g = DynamicGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let mut st = SwapState::new(g, &[0, 1], true);
        assert_eq!(st.bar2(0, 1).len(), 2);
        st.purge_outsider(2);
        assert_eq!(st.bar2(0, 1), &[3]);
        st.purge_outsider(3);
        assert!(st.bar2(0, 1).is_empty());
    }

    #[test]
    fn pairs_tier_disabled_is_inert() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let st = SwapState::new(g, &[0, 2, 4], false);
        assert!(st.bar2(0, 2).is_empty());
        assert!(st.bar2_by_parent(2).is_empty());
        st.check_consistency().unwrap();
    }

    #[test]
    fn consistency_detects_violations() {
        let mut st = state_on_path();
        st.status[1 as usize] = true; // corrupt: 1 adjacent to 0 ∈ I
        assert!(st.check_consistency().is_err());
    }
}
