//! Shared framework state (§III-B): solution membership, counters, the
//! `I(u)` lists, and the hierarchical `¯I₁(v)` / `¯I₂(S)` buckets.
//!
//! Everything is maintained with O(1) relocations and **zero hash-map
//! probes**, exactly as the paper prescribes: "a pointer to v ∈ I(u) is
//! recorded in edge (v, u)" — the `I(u)` lists live *inside the graph's
//! half-edges* as intrusive payload slots (see
//! [`dynamis_graph::DynamicGraph::mark_neighbor`]), and every bucket
//! member stores its own index ("a constant-time update to the position
//! of u if the index of u in ¯I_j(I(u)) is maintained explicitly in
//! vertex u") in a dense per-vertex slot.
//!
//! The update hot path therefore touches only vectors indexed by vertex
//! id or adjacency position. [`SwapState::hot_hash_probes`] counts
//! hash-map probes issued by this bookkeeping; with the intrusive layout
//! there is no probe site left, so it stays 0 (asserted by tests and
//! reported by the `hotpath` bench).

use crate::delta::DeltaFeed;
use dynamis_graph::DynamicGraph;

/// Count-transition event surfaced to the engine so it can enqueue
/// candidates and maximality repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CountEvent {
    /// count(u) dropped to 0 — u is insertable (maximality repair).
    To0,
    /// count(u) became exactly 1 — u newly belongs to `¯I₁(parent)`.
    To1 {
        /// u's unique solution neighbor.
        parent: u32,
    },
    /// count(u) became exactly 2 — u newly belongs to `¯I₂({a, b})`.
    To2 {
        /// Smaller parent.
        a: u32,
        /// Larger parent.
        b: u32,
    },
    /// No bucket membership changed.
    Other,
}

/// The `¯I₂` tier, fully intrusive: for each solution vertex `v`,
/// `by_parent[v]` holds the count-2 vertices having `v` as a parent
/// (`¯I₂(v)` in Algorithm 3's promotion step), and each member `u`
/// stores its two positions — one per parent, smaller parent first — in
/// `bp_idx[u]`. The pair bucket `¯I₂({a, b})` is recovered on demand by
/// filtering the shorter of the two parent lists; that trades the seed's
/// pair-keyed hash map (a probe on every count-2 transition) for a scan
/// that only runs inside swap *search*, never on the update hot path.
#[derive(Debug, Default)]
pub(crate) struct PairTier {
    /// For each solution vertex `v`: count-2 vertices with `v` as a parent.
    by_parent: Vec<Vec<u32>>,
    /// `bp_idx[u]` = u's index in `by_parent[a]` and `by_parent[b]`,
    /// where `(a, b)` are u's sorted parents (valid while count(u) = 2).
    bp_idx: Vec<[u32; 2]>,
}

impl PairTier {
    fn ensure(&mut self, cap: usize) {
        if self.by_parent.len() < cap {
            self.by_parent.resize_with(cap, Vec::new);
            self.bp_idx.resize(cap, [0, 0]);
        }
    }

    fn heap_bytes(&self) -> usize {
        let by_parent: usize = self.by_parent.iter().map(|v| v.capacity() * 4).sum();
        by_parent
            + self.by_parent.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.bp_idx.capacity() * std::mem::size_of::<[u32; 2]>()
    }
}

/// Framework state over an owned dynamic graph.
#[derive(Debug)]
pub struct SwapState {
    /// The evolving graph (the engine owns its copy). `I(u)` is stored
    /// intrusively in its half-edge payload slots.
    pub g: DynamicGraph,
    status: Vec<bool>,
    count: Vec<u32>,
    /// `¯I₁(v)` for `v ∈ I`.
    bar1: Vec<Vec<u32>>,
    /// `bar1_idx[u]` = index of u inside `bar1[parent1(u)]`
    /// (valid while count(u) = 1).
    bar1_idx: Vec<u32>,
    pairs: Option<PairTier>,
    size: usize,
    /// Hash-map probes issued by count-transition bookkeeping. The
    /// intrusive layout has no probe site, so this stays 0 — the field
    /// exists so any future regression has a place to be counted and
    /// caught (see the `hotpath` bench and the state tests).
    pub hot_hash_probes: u64,
    /// Every solution-membership flip is logged here, powering the
    /// per-update [`crate::SolutionDelta`]s and the drainable feed.
    pub(crate) feed: DeltaFeed,
}

impl SwapState {
    /// Creates state over `g` with `initial` as the starting independent
    /// set (independence is the caller's responsibility; engines
    /// debug-assert it). `track_pairs` enables the `¯I₂` tier.
    pub fn new(mut g: DynamicGraph, initial: &[u32], track_pairs: bool) -> Self {
        // The graph may arrive with marks from a previous owner (e.g. a
        // cloned snapshot of a running engine) — reset before rebuilding.
        g.clear_marks();
        let cap = g.capacity();
        let mut st = SwapState {
            g,
            status: vec![false; cap],
            count: vec![0; cap],
            bar1: vec![Vec::new(); cap],
            bar1_idx: vec![0; cap],
            pairs: track_pairs.then(PairTier::default),
            size: 0,
            hot_hash_probes: 0,
            feed: DeltaFeed::default(),
        };
        if let Some(p) = st.pairs.as_mut() {
            p.ensure(cap);
        }
        for &v in initial {
            debug_assert!(st.g.is_alive(v), "initial member {v} must be alive");
            st.status[v as usize] = true;
            st.feed.record_in(v);
        }
        st.size = initial.len();
        // Bulk-build counters, intrusive I(u) marks, and bucket tiers in
        // O(n + m).
        for v in 0..cap as u32 {
            if !st.g.is_alive(v) || st.status[v as usize] {
                continue;
            }
            for i in 0..st.g.degree(v) {
                if st.status[st.g.neighbor_at(v, i) as usize] {
                    st.g.mark_neighbor(v, i as u32);
                }
            }
            let c = st.g.marked_count(v) as u32;
            st.count[v as usize] = c;
            match c {
                1 => st.bar1_add(st.g.marked_neighbor(v, 0), v),
                2 => {
                    let (a, b) = st.parents2(v);
                    st.pair_add(v, a, b);
                }
                _ => {}
            }
        }
        st
    }

    /// Grows all per-vertex tables to cover vertex ids `< cap`.
    pub fn ensure_capacity(&mut self, cap: usize) {
        if self.status.len() < cap {
            self.status.resize(cap, false);
            self.count.resize(cap, 0);
            self.bar1.resize_with(cap, Vec::new);
            self.bar1_idx.resize(cap, 0);
        }
        if let Some(p) = self.pairs.as_mut() {
            p.ensure(cap);
        }
    }

    /// Whether `v` is in the maintained solution.
    #[inline]
    pub fn in_solution(&self, v: u32) -> bool {
        self.status[v as usize]
    }

    /// `count(v) = |N(v) ∩ I|`.
    #[inline]
    pub fn count(&self, v: u32) -> u32 {
        self.count[v as usize]
    }

    /// Current solution size |I|.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Collects the solution (paper line: "return all vertices whose
    /// status is TRUE").
    pub fn solution(&self) -> Vec<u32> {
        (0..self.status.len() as u32)
            .filter(|&v| self.status[v as usize])
            .collect()
    }

    /// The unique solution neighbor of a count-1 vertex — read straight
    /// from the intrusive mark, no hashing.
    #[inline]
    pub fn parent1(&self, u: u32) -> u32 {
        debug_assert_eq!(self.count[u as usize], 1);
        self.g.marked_neighbor(u, 0)
    }

    /// The sorted solution-neighbor pair of a count-2 vertex.
    #[inline]
    pub fn parents2(&self, u: u32) -> (u32, u32) {
        debug_assert_eq!(self.count[u as usize], 2);
        let a = self.g.marked_neighbor(u, 0);
        let b = self.g.marked_neighbor(u, 1);
        (a.min(b), a.max(b))
    }

    /// `I(u)` — all solution neighbors of u, read from the intrusive
    /// marks.
    #[inline]
    pub fn sol_neighbors(&self, u: u32) -> impl Iterator<Item = u32> + '_ {
        self.g.marked_neighbors(u)
    }

    /// `¯I₁(v)` for a solution vertex v.
    #[inline]
    pub fn bar1(&self, v: u32) -> &[u32] {
        &self.bar1[v as usize]
    }

    /// `¯I₂(S)` for `S = {a, b}`, collected by filtering the shorter
    /// parent list (empty when the pair tier is off). Allocates — test
    /// and report use; the engine's swap search streams via
    /// [`SwapState::for_each_bar2`] instead.
    pub fn bar2(&self, a: u32, b: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_bar2(a, b, |u| out.push(u));
        out
    }

    /// Streams the members of `¯I₂({a, b})` without allocating.
    pub fn for_each_bar2<F: FnMut(u32)>(&self, a: u32, b: u32, mut f: F) {
        let Some(p) = self.pairs.as_ref() else { return };
        let (a, b) = (a.min(b), a.max(b));
        let scan = if p.by_parent[a as usize].len() <= p.by_parent[b as usize].len() {
            a
        } else {
            b
        };
        let other = if scan == a { b } else { a };
        for &u in &p.by_parent[scan as usize] {
            // u has exactly two marked (solution) neighbors; membership in
            // the {a, b} bucket is a two-read check, no hashing.
            let x = self.g.marked_neighbor(u, 0);
            let y = self.g.marked_neighbor(u, 1);
            if x == other || y == other {
                f(u);
            }
        }
    }

    /// First member of `¯I₂({a, b})` satisfying `pred`.
    pub fn bar2_find<F: FnMut(u32) -> bool>(&self, a: u32, b: u32, mut pred: F) -> Option<u32> {
        let mut found = None;
        self.for_each_bar2(a, b, |u| {
            if found.is_none() && pred(u) {
                found = Some(u);
            }
        });
        found
    }

    /// `¯I₂(v)` — count-2 vertices having solution vertex v as a parent.
    pub fn bar2_by_parent(&self, v: u32) -> &[u32] {
        self.pairs
            .as_ref()
            .map_or(&[], |p| &p.by_parent[v as usize])
    }

    fn bar1_add(&mut self, parent: u32, u: u32) {
        let list = &mut self.bar1[parent as usize];
        self.bar1_idx[u as usize] = list.len() as u32;
        list.push(u);
    }

    fn bar1_remove(&mut self, parent: u32, u: u32) {
        let i = self.bar1_idx[u as usize] as usize;
        let list = &mut self.bar1[parent as usize];
        debug_assert_eq!(list[i], u, "bar1 back-pointer must be fresh");
        list.swap_remove(i);
        if i < list.len() {
            self.bar1_idx[list[i] as usize] = i as u32;
        }
    }

    /// Inserts `u` into the pair tier under sorted parents `(a, b)`.
    fn pair_add(&mut self, u: u32, a: u32, b: u32) {
        debug_assert!(a < b);
        let Some(p) = self.pairs.as_mut() else { return };
        for (side, parent) in [a, b].into_iter().enumerate() {
            let list = &mut p.by_parent[parent as usize];
            p.bp_idx[u as usize][side] = list.len() as u32;
            list.push(u);
        }
    }

    /// Removes `u` from the pair tier; `(a, b)` are its sorted parents at
    /// insertion time. The swap-remove fix-up reads the moved member's
    /// parents from its intrusive marks — O(1), no hashing.
    fn pair_remove(&mut self, u: u32, a: u32, b: u32) {
        debug_assert!(a < b);
        let g = &self.g;
        let Some(p) = self.pairs.as_mut() else { return };
        for (side, parent) in [a, b].into_iter().enumerate() {
            let i = p.bp_idx[u as usize][side] as usize;
            let list = &mut p.by_parent[parent as usize];
            debug_assert_eq!(list[i], u, "bp back-pointer must be fresh");
            list.swap_remove(i);
            if i < list.len() {
                let moved = list[i];
                // Which of `moved`'s two slots points at this parent list?
                let m0 = g.marked_neighbor(moved, 0);
                let m1 = g.marked_neighbor(moved, 1);
                debug_assert!(parent == m0 || parent == m1);
                let moved_side = usize::from(parent == m0.max(m1));
                p.bp_idx[moved as usize][moved_side] = i as u32;
            }
        }
    }

    /// Registers solution vertex `v` as a new solution neighbor of `u`,
    /// via the half-edge `adj[u][pos]` (which must point at `v`),
    /// returning the bucket transition. Zero hash probes.
    pub(crate) fn inc_count(&mut self, u: u32, pos: u32, v: u32) -> CountEvent {
        debug_assert_eq!(self.g.neighbor_at(u, pos as usize), v);
        let old = self.count[u as usize];
        self.count[u as usize] = old + 1;
        match old {
            0 => {
                self.g.mark_neighbor(u, pos);
                self.bar1_add(v, u);
                CountEvent::To1 { parent: v }
            }
            1 => {
                let prev = self.g.marked_neighbor(u, 0);
                self.g.mark_neighbor(u, pos);
                self.bar1_remove(prev, u);
                self.pair_add(u, prev.min(v), prev.max(v));
                CountEvent::To2 {
                    a: prev.min(v),
                    b: prev.max(v),
                }
            }
            2 => {
                let a = self.g.marked_neighbor(u, 0);
                let b = self.g.marked_neighbor(u, 1);
                self.g.mark_neighbor(u, pos);
                self.pair_remove(u, a.min(b), a.max(b));
                CountEvent::Other
            }
            _ => {
                self.g.mark_neighbor(u, pos);
                CountEvent::Other
            }
        }
    }

    /// Unregisters solution vertex `v` from `I(u)` via the half-edge
    /// `adj[u][pos]`, returning the bucket transition. Zero hash probes.
    pub(crate) fn dec_count(&mut self, u: u32, pos: u32, v: u32) -> CountEvent {
        debug_assert_eq!(self.g.neighbor_at(u, pos as usize), v);
        let old = self.count[u as usize];
        self.g.unmark_neighbor(u, pos);
        self.count[u as usize] = old - 1;
        match old {
            1 => {
                self.bar1_remove(v, u);
                CountEvent::To0
            }
            2 => {
                let rem = self.g.marked_neighbor(u, 0);
                self.pair_remove(u, v.min(rem), v.max(rem));
                self.bar1_add(rem, u);
                CountEvent::To1 { parent: rem }
            }
            3 => {
                let (a, b) = self.parents2(u);
                self.pair_add(u, a, b);
                CountEvent::To2 { a, b }
            }
            _ => CountEvent::Other,
        }
    }

    /// Flips `v` into the solution. The caller is responsible for first
    /// checking count(v) == 0 and for running `inc_count` on v's
    /// neighbors.
    pub(crate) fn set_in(&mut self, v: u32) {
        debug_assert!(!self.status[v as usize]);
        debug_assert_eq!(self.count[v as usize], 0, "MoveIn needs count 0");
        debug_assert_eq!(self.g.marked_count(v), 0, "I(v) must be empty");
        self.status[v as usize] = true;
        self.size += 1;
        self.feed.record_in(v);
    }

    /// Flips `v` out of the solution; the caller runs `dec_count` on v's
    /// neighbors.
    pub(crate) fn set_out(&mut self, v: u32) {
        debug_assert!(self.status[v as usize]);
        self.status[v as usize] = false;
        self.size -= 1;
        self.feed.record_out(v);
    }

    /// Clears every per-vertex record of a (just removed) vertex `v` that
    /// was **not** in the solution: bar/bucket membership and the
    /// intrusive `I(v)` marks.
    pub(crate) fn purge_outsider(&mut self, v: u32) {
        match self.count[v as usize] {
            1 => {
                let p = self.parent1(v);
                self.bar1_remove(p, v);
            }
            2 => {
                let (a, b) = self.parents2(v);
                self.pair_remove(v, a, b);
            }
            _ => {}
        }
        self.g.clear_vertex_marks(v);
        self.count[v as usize] = 0;
    }

    /// Approximate heap footprint of the framework bookkeeping (the
    /// quantity Fig. 5b / 6b report, minus the graph itself which is
    /// added by the caller). The intrusive `I(u)` storage lives inside
    /// [`DynamicGraph::heap_bytes`] (payload slots + marked lists); what
    /// remains here is pure dense-vector bookkeeping — the seed's
    /// `sol_pos` / `bar1_pos` / `bp_pos` hash-map terms are gone because
    /// the maps themselves are gone.
    pub fn heap_bytes(&self) -> usize {
        let bar1: usize = self.bar1.iter().map(|l| l.capacity() * 4).sum();
        bar1 + self.status.capacity()
            + self.count.capacity() * 4
            + self.bar1_idx.capacity() * 4
            + self.bar1.capacity() * std::mem::size_of::<Vec<u32>>()
            + self.pairs.as_ref().map_or(0, PairTier::heap_bytes)
            + self.feed.heap_bytes()
    }

    /// Exhaustive cross-check of every invariant against a from-scratch
    /// rebuild. Test/debug only: O(n + m) plus hashing.
    pub fn check_consistency(&self) -> Result<(), String> {
        self.g.check_consistency()?;
        let mut size = 0usize;
        for v in self.g.vertices() {
            if self.status[v as usize] {
                size += 1;
                if let Some(u) = self.g.neighbors(v).find(|&u| self.status[u as usize]) {
                    return Err(format!("solution not independent: edge ({v},{u})"));
                }
                if self.count[v as usize] != 0 {
                    return Err(format!("solution vertex {v} has nonzero count"));
                }
                if self.g.marked_count(v) != 0 {
                    return Err(format!("solution vertex {v} has marked neighbors"));
                }
            } else {
                let sols: Vec<u32> = self
                    .g
                    .neighbors(v)
                    .filter(|&u| self.status[u as usize])
                    .collect();
                if sols.is_empty() {
                    return Err(format!("not maximal: vertex {v} is free"));
                }
                if self.count[v as usize] as usize != sols.len() {
                    return Err(format!(
                        "count({v}) = {} but |I({v})| = {}",
                        self.count[v as usize],
                        sols.len()
                    ));
                }
                let mut have: Vec<u32> = self.g.marked_neighbors(v).collect();
                let mut want = sols.clone();
                have.sort_unstable();
                want.sort_unstable();
                if have != want {
                    return Err(format!("intrusive I({v}) marks mismatch"));
                }
                match sols.len() {
                    1 => {
                        let i = self.bar1_idx[v as usize] as usize;
                        if self.bar1[sols[0] as usize].get(i) != Some(&v) {
                            return Err(format!("{v} bar1 back-pointer broken ({})", sols[0]));
                        }
                    }
                    2 => {
                        if let Some(p) = self.pairs.as_ref() {
                            let (a, b) = self.parents2(v);
                            for (side, parent) in [a, b].into_iter().enumerate() {
                                let i = p.bp_idx[v as usize][side] as usize;
                                if p.by_parent[parent as usize].get(i) != Some(&v) {
                                    return Err(format!(
                                        "{v} bar2 back-pointer broken under {parent}"
                                    ));
                                }
                            }
                            if !self.bar2(sols[0], sols[1]).contains(&v) {
                                return Err(format!("{v} missing from bar2 bucket"));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if size != self.size {
            return Err(format!("size counter {} != actual {size}", self.size));
        }
        // Reverse direction: no stale bucket members.
        for v in self.g.vertices() {
            for &u in &self.bar1[v as usize] {
                if self.count[u as usize] != 1 || self.parent1(u) != v || !self.status[v as usize] {
                    return Err(format!("stale bar1 member {u} under {v}"));
                }
            }
        }
        if let Some(p) = self.pairs.as_ref() {
            for v in self.g.vertices() {
                for &u in &p.by_parent[v as usize] {
                    if self.count[u as usize] != 2 {
                        return Err(format!("stale bar2 member {u} under {v}"));
                    }
                    let (a, b) = self.parents2(u);
                    if v != a && v != b {
                        return Err(format!("bar2 member {u} under non-parent {v}"));
                    }
                }
            }
        }
        if self.hot_hash_probes != 0 {
            return Err(format!(
                "hot path issued {} hash probes (must be 0 with the intrusive layout)",
                self.hot_hash_probes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adjacency position of `v` inside `adj[u]` — test helper standing in
    /// for the handle the engine gets from iteration/insertion.
    fn pos_of(st: &SwapState, u: u32, v: u32) -> u32 {
        st.g.edge_handle(u, v).expect("edge must exist").pos_u
    }

    fn state_on_path() -> SwapState {
        // P5: 0-1-2-3-4 with I = {0, 2, 4}.
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        SwapState::new(g, &[0, 2, 4], true)
    }

    #[test]
    fn bulk_build_counts_and_buckets() {
        let st = state_on_path();
        assert_eq!(st.size(), 3);
        assert_eq!(st.count(1), 2);
        assert_eq!(st.count(3), 2);
        assert_eq!(st.parents2(1), (0, 2));
        assert_eq!(st.bar2(0, 2), &[1]);
        assert_eq!(st.bar2(2, 4), &[3]);
        assert_eq!(st.bar2_by_parent(2).len(), 2);
        st.check_consistency().unwrap();
    }

    #[test]
    fn inc_dec_round_trip() {
        let mut st = state_on_path();
        // Remove 0 from 1's solution list: count 2 → 1, moves to bar1(2).
        let p = pos_of(&st, 1, 0);
        let ev = st.dec_count(1, p, 0);
        assert_eq!(ev, CountEvent::To1 { parent: 2 });
        assert_eq!(st.bar1(2), &[1]);
        assert!(st.bar2(0, 2).is_empty());
        // And back.
        let p = pos_of(&st, 1, 0);
        let ev = st.inc_count(1, p, 0);
        assert!(matches!(ev, CountEvent::To2 { a: 0, b: 2 }));
        assert_eq!(st.bar2(0, 2), &[1]);
        assert!(st.bar1(2).is_empty());
        assert_eq!(st.hot_hash_probes, 0, "bookkeeping must not hash");
    }

    #[test]
    fn dec_to_zero_signals_repair() {
        let g = DynamicGraph::from_edges(2, &[(0, 1)]);
        let mut st = SwapState::new(g, &[0], true);
        let p = pos_of(&st, 1, 0);
        assert_eq!(st.dec_count(1, p, 0), CountEvent::To0);
        assert_eq!(st.count(1), 0);
    }

    #[test]
    fn three_plus_counts_leave_buckets() {
        // Star center 3 with leaves in I.
        let g = DynamicGraph::from_edges(4, &[(3, 0), (3, 1), (3, 2)]);
        let mut st = SwapState::new(g, &[0, 1, 2], true);
        assert_eq!(st.count(3), 3);
        assert!(st.bar2_by_parent(0).is_empty());
        // Drop to 2: enters bucket.
        let p = pos_of(&st, 3, 2);
        let ev = st.dec_count(3, p, 2);
        assert!(matches!(ev, CountEvent::To2 { a: 0, b: 1 }));
        assert_eq!(st.bar2(0, 1), &[3]);
    }

    #[test]
    fn purge_outsider_cleans_everything() {
        let mut st = state_on_path();
        st.purge_outsider(1);
        assert_eq!(st.count(1), 0);
        assert!(st.bar2(0, 2).is_empty());
        assert_eq!(st.sol_neighbors(1).count(), 0);
    }

    #[test]
    fn pair_tier_swap_remove_fixups() {
        // Two vertices in the same bucket; removing the first must keep
        // the second's position valid.
        let g = DynamicGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let mut st = SwapState::new(g, &[0, 1], true);
        assert_eq!(st.bar2(0, 1).len(), 2);
        st.purge_outsider(2);
        assert_eq!(st.bar2(0, 1), &[3]);
        st.purge_outsider(3);
        assert!(st.bar2(0, 1).is_empty());
    }

    #[test]
    fn pair_tier_mixed_buckets_by_parent() {
        // Parent 0 shared by two different pairs: {0,1} and {0,2}.
        // by_parent[0] holds both; bucket filtering separates them.
        let g = DynamicGraph::from_edges(5, &[(0, 3), (1, 3), (0, 4), (2, 4)]);
        let mut st = SwapState::new(g, &[0, 1, 2], true);
        assert_eq!(st.bar2_by_parent(0).len(), 2);
        assert_eq!(st.bar2(0, 1), &[3]);
        assert_eq!(st.bar2(0, 2), &[4]);
        assert!(st.bar2(1, 2).is_empty());
        // Swap-remove fix-up across mixed parent lists.
        st.purge_outsider(3);
        assert_eq!(st.bar2(0, 2), &[4]);
        assert!(st.bar2(0, 1).is_empty());
    }

    #[test]
    fn pairs_tier_disabled_is_inert() {
        let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let st = SwapState::new(g, &[0, 2, 4], false);
        assert!(st.bar2(0, 2).is_empty());
        assert!(st.bar2_by_parent(2).is_empty());
        st.check_consistency().unwrap();
    }

    #[test]
    fn rebuild_clears_stale_marks() {
        // A graph inheriting marks from a previous engine must not
        // double-mark during the bulk build.
        let st1 = state_on_path();
        let g = st1.g.clone(); // carries st1's intrusive marks
        let st2 = SwapState::new(g, &[0, 2, 4], true);
        st2.check_consistency().unwrap();
        assert_eq!(st2.count(1), 2);
    }

    #[test]
    fn consistency_detects_violations() {
        let mut st = state_on_path();
        st.status[1_usize] = true; // corrupt: 1 adjacent to 0 ∈ I
        assert!(st.check_consistency().is_err());
    }
}
