//! The single construction path for every engine: a builder describing
//! one maintenance *session*.
//!
//! A session is `(graph, initial set, k, tuning)` — whether the graph
//! comes from a loader, a generator, or a [`crate::Snapshot`] being
//! resumed, and whether the engine is a paper engine or a baseline. The
//! builder validates the whole description up front (the graph exists,
//! every initial member is alive, the initial set is independent,
//! `k ≥ 1`) and hands engines a proven-good [`Session`], so no engine
//! constructor needs a panicking precondition.
//!
//! ```
//! use dynamis_core::{DynamicMis, DyTwoSwap, EngineBuilder};
//! use dynamis_graph::DynamicGraph;
//!
//! let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let engine: DyTwoSwap = EngineBuilder::on(g).initial(&[1, 3]).build_as().unwrap();
//! assert_eq!(engine.size(), 3); // driven to 2-maximality at build time
//! ```
//!
//! [`EngineBuilder::build`] selects the paper engine for the session's
//! `k` behind `Box<dyn DynamicMis>`; [`EngineBuilder::build_as`] builds
//! a concrete engine type (including the baselines in
//! `dynamis-baselines`, which implement [`BuildableEngine`] in their
//! own crate).

use crate::engine::EngineConfig;
use crate::error::EngineError;
use crate::snapshot::Snapshot;
use crate::{DyOneSwap, DyTwoSwap, DynamicMis, GenericKSwap};
use dynamis_graph::{DynamicGraph, Partitioner};

/// Describes one maintenance session; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    k: Option<usize>,
    config: EngineConfig,
    initial: Vec<u32>,
    graph: Option<DynamicGraph>,
    shards: usize,
    partitioner: Partitioner,
    swap_wave: usize,
    pipeline: Option<bool>,
}

impl EngineBuilder {
    /// An empty builder (`k` defaults to 1, no graph yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Shorthand for `EngineBuilder::new().graph(g)` — the common case.
    pub fn on(graph: DynamicGraph) -> Self {
        Self::new().graph(graph)
    }

    /// The swap depth to maintain (`k ≥ 1`). [`EngineBuilder::build`]
    /// also uses it to pick the engine: the eager `DyOneSwap` /
    /// `DyTwoSwap` for `k ≤ 2`, the lazy `GenericKSwap` beyond.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Full tuning-knob set.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Toggles the §III-B perturbation (plateau moves toward low-degree
    /// vertices) without replacing the rest of the config.
    pub fn perturbation(mut self, on: bool) -> Self {
        self.config.perturbation = on;
        self
    }

    /// The graph to maintain over (the engine owns it).
    pub fn graph(mut self, graph: DynamicGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// The starting independent set (validated at build time; extended
    /// to maximality and driven to k-maximality by the engine).
    pub fn initial(mut self, initial: &[u32]) -> Self {
        self.initial = initial.to_vec();
        self
    }

    /// The `k` this builder was explicitly configured with, if any.
    /// The fixed-k engines ([`DyOneSwap`], [`DyTwoSwap`]) use it to
    /// reject a session whose requested depth they cannot maintain.
    pub fn requested_k(&self) -> Option<usize> {
        self.k
    }

    /// Requests partitioned maintenance across `shards` engine shards
    /// (`0` is normalized to `1`). The sequential engines built by
    /// [`EngineBuilder::build`] / [`EngineBuilder::build_as`] ignore the
    /// knob; the sharded layer (`dynamis-shard`) and the CLI read it via
    /// [`EngineBuilder::shard_count`], so one builder describes the
    /// session for both single-writer and sharded serving.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// How many shards this session asked for (defaults to 1 —
    /// unsharded).
    pub fn shard_count(&self) -> usize {
        self.shards.max(1)
    }

    /// How the sharded layer splits the vertex space across
    /// [`EngineBuilder::shards`]: locality-blind degree balance (the
    /// default) or the locality-aware label-propagation partition that
    /// shrinks the cut — and with it the boundary-protocol coordination
    /// cost — on community-structured graphs. Sequential engines ignore
    /// the knob, like [`EngineBuilder::shards`] itself; the partition
    /// never changes the maintained solution, only who owns what.
    pub fn partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// The partitioning strategy this session asked for (defaults to
    /// [`Partitioner::DegreeGreedy`]).
    pub fn partitioner_choice(&self) -> Partitioner {
        self.partitioner
    }

    /// Caps how many independent swaps the sharded layer may co-commit
    /// per fused validation round (`0`, the default, means unlimited;
    /// `1` serializes commits like the pre-fused protocol). Any fixed
    /// value keeps the maintained solution a pure function of the
    /// update stream — the cap is applied in global candidate order —
    /// but changing it changes *which* function, so engines that must
    /// agree exactly must share the setting. Sequential engines ignore
    /// the knob.
    pub fn swap_wave(mut self, wave: usize) -> Self {
        self.swap_wave = wave;
        self
    }

    /// The per-round co-commit cap this session asked for
    /// (`usize::MAX` when unlimited).
    pub fn swap_wave_limit(&self) -> usize {
        if self.swap_wave == 0 {
            usize::MAX
        } else {
            self.swap_wave
        }
    }

    /// Toggles split-phase (pipelined) commit exchanges in the sharded
    /// layer: commit broadcasts are posted and collected lazily, so
    /// cell application overlaps the coordinator's next phase. On by
    /// default; observationally neutral — the maintained solution and
    /// the exchange counts are identical either way, only the waiting
    /// changes. Sequential engines ignore the knob.
    pub fn pipeline(mut self, on: bool) -> Self {
        self.pipeline = Some(on);
        self
    }

    /// Whether this session asked for pipelined commit exchanges
    /// (defaults to `true`).
    pub fn pipeline_enabled(&self) -> bool {
        self.pipeline.unwrap_or(true)
    }

    /// Resumes from a checkpoint: the snapshot's graph and solution
    /// become the session's graph and initial set. This subsumes the
    /// per-engine `resume_*` constructors — any engine type (any `k`,
    /// any baseline) can pick up where a snapshot left off.
    pub fn resume(mut self, snapshot: Snapshot) -> Self {
        self.initial = snapshot.solution;
        self.graph = Some(snapshot.graph);
        self
    }

    /// Reads a snapshot from disk and resumes from it.
    pub fn resume_path<P: AsRef<std::path::Path>>(self, path: P) -> Result<Self, EngineError> {
        let snapshot = Snapshot::read_path(path)?;
        Ok(self.resume(snapshot))
    }

    /// Validates the description and yields the proven-good [`Session`]
    /// engine constructors consume.
    pub fn into_session(self) -> Result<Session, EngineError> {
        let k = self.k.unwrap_or(1);
        if k == 0 {
            return Err(EngineError::BadK(0));
        }
        let graph = self.graph.ok_or(EngineError::MissingGraph)?;
        let mut initial = self.initial;
        initial.sort_unstable();
        initial.dedup();
        for &v in &initial {
            if !graph.is_alive(v) {
                return Err(EngineError::DeadInitial(v));
            }
        }
        // Independence: one pass over the members' neighborhoods against
        // a dense membership bitmap.
        let mut member = vec![false; graph.capacity()];
        for &v in &initial {
            member[v as usize] = true;
        }
        for &v in &initial {
            if let Some(u) = graph.neighbors(v).find(|&u| member[u as usize]) {
                return Err(EngineError::NotIndependent(v.min(u), v.max(u)));
            }
        }
        Ok(Session {
            graph,
            initial,
            k,
            config: self.config,
        })
    }

    /// Builds the paper engine matching the session's `k`:
    /// [`DyOneSwap`] (k = 1), [`DyTwoSwap`] (k = 2), or the lazy
    /// [`GenericKSwap`] (k ≥ 3).
    pub fn build(self) -> Result<Box<dyn DynamicMis>, EngineError> {
        let session = self.into_session()?;
        Ok(match session.k {
            1 => Box::new(DyOneSwap::from_session(session)),
            2 => Box::new(DyTwoSwap::from_session(session)),
            _ => Box::new(GenericKSwap::from_session(session)),
        })
    }

    /// Builds a concrete engine type from this session description.
    pub fn build_as<E: BuildableEngine>(self) -> Result<E, EngineError> {
        E::from_builder(self)
    }
}

/// A validated session description: the graph, a duplicate-free,
/// provably independent initial set of live vertices, `k ≥ 1`, and the
/// tuning config. Obtained from [`EngineBuilder::into_session`]; engine
/// constructors trust it.
#[derive(Debug)]
pub struct Session {
    /// The graph the engine will own.
    pub graph: DynamicGraph,
    /// Sorted, duplicate-free independent set of live vertices.
    pub initial: Vec<u32>,
    /// Swap depth (`≥ 1`).
    pub k: usize,
    /// Tuning knobs.
    pub config: EngineConfig,
}

/// Engine types constructible from an [`EngineBuilder`] — implemented
/// by the paper engines here and by the baselines in their crate, so
/// `EngineBuilder::build_as::<E>()` is the one construction spelling
/// everywhere.
pub trait BuildableEngine: DynamicMis + Sized {
    /// Validates the builder and constructs the engine.
    fn from_builder(builder: EngineBuilder) -> Result<Self, EngineError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_graph::Update;

    fn p5() -> DynamicGraph {
        DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn builder_validates_the_session() {
        assert_eq!(
            EngineBuilder::new().build().map(|_| ()).unwrap_err(),
            EngineError::MissingGraph
        );
        assert_eq!(
            EngineBuilder::on(p5())
                .k(0)
                .build()
                .map(|_| ())
                .unwrap_err(),
            EngineError::BadK(0)
        );
        assert_eq!(
            EngineBuilder::on(p5())
                .initial(&[9])
                .build()
                .map(|_| ())
                .unwrap_err(),
            EngineError::DeadInitial(9)
        );
        assert_eq!(
            EngineBuilder::on(p5())
                .initial(&[1, 2])
                .build()
                .map(|_| ())
                .unwrap_err(),
            EngineError::NotIndependent(1, 2)
        );
    }

    #[test]
    fn build_selects_engine_by_k() {
        for (k, name) in [(1, "DyOneSwap"), (2, "DyTwoSwap"), (3, "GenericKSwap(k=3)")] {
            let e = EngineBuilder::on(p5()).k(k).build().unwrap();
            assert_eq!(e.name(), name);
            assert!(e.size() >= 2);
        }
    }

    #[test]
    fn fixed_k_engines_reject_a_mismatched_explicit_k() {
        // Silent downgrade is the trap: a session asking for k = 2 must
        // not get a 1-maximal engine without an error.
        assert!(matches!(
            EngineBuilder::on(p5()).k(2).build_as::<DyOneSwap>(),
            Err(EngineError::BadParameter(_))
        ));
        assert!(matches!(
            EngineBuilder::on(p5()).k(1).build_as::<DyTwoSwap>(),
            Err(EngineError::BadParameter(_))
        ));
        // Matching or unset k stays fine — the type picks the depth.
        assert!(EngineBuilder::on(p5()).k(1).build_as::<DyOneSwap>().is_ok());
        assert!(EngineBuilder::on(p5()).build_as::<DyTwoSwap>().is_ok());
    }

    #[test]
    fn duplicate_initial_members_are_collapsed() {
        let e: DyOneSwap = EngineBuilder::on(p5())
            .initial(&[0, 0, 2, 4, 4])
            .build_as()
            .unwrap();
        assert_eq!(e.solution(), vec![0, 2, 4]);
    }

    #[test]
    fn snapshot_resume_round_trip_for_any_engine() {
        let mut e: DyTwoSwap = EngineBuilder::on(p5()).build_as().unwrap();
        e.try_apply(&Update::RemoveEdge(1, 2)).unwrap();
        let snap = Snapshot::capture(&e);
        // Resume the same k…
        let r2: DyTwoSwap = EngineBuilder::new()
            .resume(snap.clone())
            .build_as()
            .unwrap();
        assert_eq!(r2.solution(), e.solution());
        // …and a different one: a 2-maximal set is 1-maximal already.
        let r1: DyOneSwap = EngineBuilder::new().resume(snap).build_as().unwrap();
        r1.check_consistency().unwrap();
        assert!(r1.size() >= e.size());
    }
}
