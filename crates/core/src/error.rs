//! Errors surfaced by the session API.
//!
//! A production maintenance service cannot afford the replay-harness
//! posture of panicking on a malformed update: streams arrive from
//! clients, queues, and recovered logs, and an invalid operation must be
//! *rejected* — engine state untouched — not turned into a crash. Every
//! failure mode of [`crate::DynamicMis::try_apply`] and of
//! [`crate::EngineBuilder`] is enumerated here.

use dynamis_graph::GraphError;
use std::fmt;

/// Why an update or an engine construction was rejected. Rejection is
/// total: the engine (or builder) is left exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying graph refused the operation (dead vertex,
    /// self-loop, diverging vertex-id allocation, I/O).
    Graph(GraphError),
    /// An `InsertEdge` named an edge that already exists.
    DuplicateEdge(u32, u32),
    /// A `RemoveEdge` named an edge that does not exist.
    MissingEdge(u32, u32),
    /// The builder was finalized without a graph or snapshot.
    MissingGraph,
    /// The builder's initial set contains the named edge and therefore
    /// is not an independent set.
    NotIndependent(u32, u32),
    /// The builder's initial set names a vertex that is not alive.
    DeadInitial(u32),
    /// The builder was configured with `k = 0` (a 0-maximal set is
    /// meaningless — every engine requires `k ≥ 1`).
    BadK(usize),
    /// An engine-specific parameter was out of range (e.g. a restart
    /// interval of 0).
    BadParameter(&'static str),
    /// A batch application failed at `updates[index]`; the valid prefix
    /// `updates[..index]` **was** applied and the engine re-established
    /// its invariant over it. The prefix's flips stay in the drainable
    /// feed, so a mirror fed *exclusively* from `drain_delta` recovers
    /// by draining as usual; a mirror fed from per-call return deltas
    /// has already consumed earlier updates and must instead re-seed
    /// with `SolutionMirror::from_solution(&engine.solution())` (a
    /// drain would re-deliver those flips).
    Batch {
        /// Index of the first rejected update.
        index: usize,
        /// Why it was rejected.
        cause: Box<EngineError>,
    },
}

impl EngineError {
    /// Stable numeric code of this rejection class, used as the wire
    /// tag by the network codec (`dynamis-serve`'s `wire` module) and
    /// safe to log or aggregate on. Codes identify the *variant*, never
    /// the payload (a [`EngineError::Graph`] rejection additionally
    /// carries [`dynamis_graph::GraphError::code`]), and are
    /// append-only across versions: a code is never reused for a
    /// different meaning.
    pub fn code(&self) -> u16 {
        match self {
            EngineError::Graph(_) => 1,
            EngineError::DuplicateEdge(..) => 2,
            EngineError::MissingEdge(..) => 3,
            EngineError::MissingGraph => 4,
            EngineError::NotIndependent(..) => 5,
            EngineError::DeadInitial(_) => 6,
            EngineError::BadK(_) => 7,
            EngineError::BadParameter(_) => 8,
            EngineError::Batch { .. } => 9,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph rejected the operation: {e}"),
            EngineError::DuplicateEdge(u, v) => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            EngineError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            EngineError::MissingGraph => {
                write!(f, "engine builder needs a graph or a snapshot to resume")
            }
            EngineError::NotIndependent(u, v) => {
                write!(
                    f,
                    "initial set is not independent: it contains edge ({u}, {v})"
                )
            }
            EngineError::DeadInitial(v) => {
                write!(f, "initial set names vertex {v}, which is not in the graph")
            }
            EngineError::BadK(k) => write!(f, "k must be at least 1, got {k}"),
            EngineError::BadParameter(what) => write!(f, "invalid engine parameter: {what}"),
            EngineError::Batch { index, cause } => {
                write!(f, "batch rejected at update {index}: {cause}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            EngineError::Batch { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl EngineError {
    /// Wraps a per-update error as the failure of `updates[index]`.
    pub fn in_batch(self, index: usize) -> Self {
        EngineError::Batch {
            index,
            cause: Box::new(self),
        }
    }
}

/// Why a [`crate::SolutionMirror`] refused a [`crate::SolutionDelta`].
///
/// A mirror is a replica fed by a delta stream; an inconsistent delta
/// means the stream dropped, duplicated, or reordered an entry. The
/// error names the first offending vertex and the mirror's sequence
/// number (deltas applied so far) at the point of refusal, so a serving
/// layer can log the desync and re-seed the replica — no string
/// parsing, no guessing which entry went missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MirrorError {
    /// The delta enters `vertex`, but the mirror already holds it.
    EnterExisting {
        /// The duplicated member.
        vertex: u32,
        /// Deltas the mirror had applied when the refusal happened.
        seq: u64,
    },
    /// The delta removes `vertex`, but the mirror does not hold it.
    LeaveAbsent {
        /// The phantom member.
        vertex: u32,
        /// Deltas the mirror had applied when the refusal happened.
        seq: u64,
    },
}

impl MirrorError {
    /// The vertex the delta and the mirror disagree about.
    pub fn vertex(&self) -> u32 {
        match *self {
            MirrorError::EnterExisting { vertex, .. } | MirrorError::LeaveAbsent { vertex, .. } => {
                vertex
            }
        }
    }

    /// The mirror's sequence number (deltas applied) at refusal time.
    pub fn seq(&self) -> u64 {
        match *self {
            MirrorError::EnterExisting { seq, .. } | MirrorError::LeaveAbsent { seq, .. } => seq,
        }
    }
}

impl fmt::Display for MirrorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MirrorError::EnterExisting { vertex, seq } => write!(
                f,
                "delta enters {vertex} but the mirror (seq {seq}) already holds it"
            ),
            MirrorError::LeaveAbsent { vertex, seq } => write!(
                f,
                "delta removes {vertex} but the mirror (seq {seq}) does not hold it"
            ),
        }
    }
}

impl std::error::Error for MirrorError {}

/// Validates `u` against `g` without mutating anything: the shared
/// entry-point check every engine runs (or fuses into its first graph
/// operation) before touching state, so a rejected update provably
/// leaves the engine unchanged.
pub fn validate_update(
    g: &dynamis_graph::DynamicGraph,
    u: &dynamis_graph::Update,
) -> Result<(), EngineError> {
    use dynamis_graph::Update;
    let alive = |v: u32| -> Result<(), EngineError> {
        if g.is_alive(v) {
            Ok(())
        } else {
            Err(GraphError::VertexNotFound(v).into())
        }
    };
    match u {
        Update::InsertEdge(a, b) => {
            if a == b {
                return Err(GraphError::SelfLoop(*a).into());
            }
            alive(*a)?;
            alive(*b)?;
            if g.has_edge(*a, *b) {
                return Err(EngineError::DuplicateEdge(*a, *b));
            }
        }
        Update::RemoveEdge(a, b) => {
            if a == b {
                return Err(GraphError::SelfLoop(*a).into());
            }
            alive(*a)?;
            alive(*b)?;
            if !g.has_edge(*a, *b) {
                return Err(EngineError::MissingEdge(*a, *b));
            }
        }
        Update::InsertVertex { id, neighbors } => {
            let next = g.next_vertex_id();
            if next != *id {
                return Err(GraphError::IdMismatch {
                    expected: *id,
                    got: next,
                }
                .into());
            }
            for &n in neighbors {
                alive(n)?; // also rules out n == id: id is not alive yet
            }
            if neighbors.len() > 1 {
                let mut sorted = neighbors.clone();
                sorted.sort_unstable();
                for w in sorted.windows(2) {
                    if w[0] == w[1] {
                        return Err(EngineError::DuplicateEdge(*id, w[0]));
                    }
                }
            }
        }
        Update::RemoveVertex(v) => alive(*v)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamis_graph::{DynamicGraph, Update};

    #[test]
    fn display_is_informative() {
        assert!(EngineError::DuplicateEdge(1, 2)
            .to_string()
            .contains("(1, 2)"));
        assert!(EngineError::MissingEdge(3, 4).to_string().contains("not"));
        assert!(EngineError::BadK(0).to_string().contains('0'));
        let b = EngineError::DuplicateEdge(1, 2).in_batch(7);
        assert!(b.to_string().contains('7'));
        let g: EngineError = GraphError::VertexNotFound(9).into();
        assert!(g.to_string().contains('9'));
    }

    #[test]
    fn validate_covers_every_rejection_class() {
        let mut g = DynamicGraph::from_edges(4, &[(0, 1)]);
        g.remove_vertex(3).unwrap();
        let cases: Vec<(Update, EngineError)> = vec![
            (Update::InsertEdge(0, 1), EngineError::DuplicateEdge(0, 1)),
            (
                Update::InsertEdge(0, 3),
                GraphError::VertexNotFound(3).into(),
            ),
            (Update::InsertEdge(2, 2), GraphError::SelfLoop(2).into()),
            (Update::RemoveEdge(0, 2), EngineError::MissingEdge(0, 2)),
            (
                Update::RemoveEdge(1, 3),
                GraphError::VertexNotFound(3).into(),
            ),
            (
                Update::RemoveVertex(3),
                GraphError::VertexNotFound(3).into(),
            ),
            (
                Update::InsertVertex {
                    id: 9,
                    neighbors: vec![],
                },
                GraphError::IdMismatch {
                    expected: 9,
                    got: 3,
                }
                .into(),
            ),
            (
                Update::InsertVertex {
                    id: 3,
                    neighbors: vec![0, 0],
                },
                EngineError::DuplicateEdge(3, 0),
            ),
            (
                Update::InsertVertex {
                    id: 3,
                    neighbors: vec![7],
                },
                GraphError::VertexNotFound(7).into(),
            ),
        ];
        for (u, want) in cases {
            assert_eq!(validate_update(&g, &u), Err(want), "case {u:?}");
        }
        assert!(validate_update(&g, &Update::InsertEdge(1, 2)).is_ok());
        assert!(validate_update(&g, &Update::RemoveEdge(0, 1)).is_ok());
    }
}
