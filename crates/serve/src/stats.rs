//! Service observability: lock-free counters shared by the writer
//! thread, the ingest handles, and the readers, snapshotted on demand
//! into a [`ServiceStats`].

use dynamis_obs::Histogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Number of batch-size histogram buckets: bucket `i` counts merged
/// batches of `2^i ..= 2^(i+1) - 1` updates (the last bucket is
/// open-ended).
pub const HIST_BUCKETS: usize = 9;

/// Histogram bucket for a merged batch of `size` updates.
pub(crate) fn hist_bucket(size: usize) -> usize {
    (usize::BITS - 1 - size.max(1).leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize
}

/// Shared mutable counters (all relaxed atomics — observability only,
/// never synchronization).
#[derive(Debug, Default)]
pub(crate) struct StatsShared {
    pub submitted: AtomicU64,
    /// Updates accepted into the queue and not yet handed to the
    /// engine. Signed: the submit-side increment and the writer-side
    /// decrement race benignly.
    pub queued: AtomicI64,
    pub applied: AtomicU64,
    pub rejected: AtomicU64,
    pub batches: AtomicU64,
    /// Merged-batch sizes, on the shared telemetry histogram type so
    /// the full-resolution distribution can also be exported through
    /// the metrics registry. [`ServiceStats::batch_hist`] keeps its 9
    /// power-of-two buckets by folding this (the fold is exact: no
    /// log-bucket crosses an octave).
    pub batch_hist: Arc<Histogram>,
    pub head_seq: AtomicU64,
    pub resyncs: AtomicU64,
    pub desyncs: AtomicU64,
    /// Per-reader last-synced sequence numbers (weak: a dropped reader
    /// deregisters itself by virtue of the Arc dying).
    readers: Mutex<Vec<Weak<AtomicU64>>>,
}

impl StatsShared {
    /// Registers a reader's sequence slot for lag reporting.
    pub fn register_reader(&self, start_seq: u64) -> Arc<AtomicU64> {
        let slot = Arc::new(AtomicU64::new(start_seq));
        let mut readers = self.readers.lock().unwrap();
        readers.retain(|w| w.strong_count() > 0);
        readers.push(Arc::downgrade(&slot));
        slot
    }

    /// Consistent snapshot (counter-by-counter; relaxed).
    pub fn snapshot(&self) -> ServiceStats {
        let head_seq = self.head_seq.load(Ordering::Relaxed);
        let mut reader_count = 0usize;
        let mut min_reader_seq = None;
        for w in self.readers.lock().unwrap().iter() {
            if let Some(slot) = w.upgrade() {
                let s = slot.load(Ordering::Relaxed);
                reader_count += 1;
                min_reader_seq = Some(min_reader_seq.map_or(s, |m: u64| m.min(s)));
            }
        }
        let mut batch_hist = [0u64; HIST_BUCKETS];
        for (idx, count) in self.batch_hist.snapshot().buckets {
            let (lo, _) = dynamis_obs::bucket_bounds(idx as usize);
            let b = hist_bucket(lo as usize);
            batch_hist[b] = batch_hist[b].saturating_add(count);
        }
        ServiceStats {
            queue_depth: self.queued.load(Ordering::Relaxed).max(0) as u64,
            submitted: self.submitted.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_hist,
            head_seq,
            readers: reader_count,
            max_reader_lag: min_reader_seq.map_or(0, |m| head_seq.saturating_sub(m)),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            desyncs: self.desyncs.load(Ordering::Relaxed),
            connections: 0,
            sessions: 0,
            subscriptions: 0,
            shed: 0,
            max_sub_lag: 0,
            mean_sub_lag: 0,
        }
    }
}

/// A point-in-time view of the service's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Updates accepted into the ingest queue and not yet applied.
    pub queue_depth: u64,
    /// Updates ever accepted into the queue.
    pub submitted: u64,
    /// Updates the engine applied.
    pub applied: u64,
    /// Updates the engine rejected (each one's [`dynamis_core::EngineError`]
    /// went to its ticket).
    pub rejected: u64,
    /// Merged batches the writer fed through `try_apply_batch`.
    pub batches: u64,
    /// Batch-size histogram: bucket `i` counts batches of
    /// `2^i ..= 2^(i+1) - 1` updates (last bucket open-ended) — the
    /// shape shows how much adaptive batching amortized per-update cost.
    pub batch_hist: [u64; HIST_BUCKETS],
    /// Sequence number of the newest broadcast delta.
    pub head_seq: u64,
    /// Live reader handles.
    pub readers: usize,
    /// `head_seq` minus the most-lagging reader's synced sequence.
    pub max_reader_lag: u64,
    /// Times a reader re-seeded from the log's checkpoint (it fell
    /// behind the retained window).
    pub resyncs: u64,
    /// Times a reader's mirror refused a delta (a
    /// [`dynamis_core::MirrorError`] — recovered by re-seeding; nonzero
    /// values indicate a broadcast bug).
    pub desyncs: u64,
    /// TCP connections ever accepted by a network front end (0 for an
    /// in-process service — these four counters are filled in by
    /// `dynamis-net` when the service is exposed over the wire).
    pub connections: u64,
    /// Network sessions currently live.
    pub sessions: u64,
    /// Delta subscriptions currently streaming.
    pub subscriptions: u64,
    /// Requests shed by admission control with a typed `Busy` reply.
    pub shed: u64,
    /// `head_seq` minus the most-lagging *network subscriber's* applied
    /// sequence, sampled by the hub each fan-out round (0 for an
    /// in-process service).
    pub max_sub_lag: u64,
    /// Mean network-subscriber lag across live subscriptions, rounded
    /// down (0 for an in-process service).
    pub mean_sub_lag: u64,
}

impl ServiceStats {
    /// Mean merged-batch size (0 when no batch ran yet).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.applied + self.rejected) as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seq {} | queue {} | applied {} / rejected {} in {} batches (mean {:.1}) | \
             {} readers, max lag {} | resyncs {} desyncs {}",
            self.head_seq,
            self.queue_depth,
            self.applied,
            self.rejected,
            self.batches,
            self.mean_batch(),
            self.readers,
            self.max_reader_lag,
            self.resyncs,
            self.desyncs
        )?;
        if self.connections > 0 || self.sessions > 0 || self.subscriptions > 0 || self.shed > 0 {
            write!(
                f,
                " | net: {} conns, {} sessions, {} subs, {} shed, sub lag max {} mean {}",
                self.connections,
                self.sessions,
                self.subscriptions,
                self.shed,
                self.max_sub_lag,
                self.mean_sub_lag
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(hist_bucket(1), 0);
        assert_eq!(hist_bucket(2), 1);
        assert_eq!(hist_bucket(3), 1);
        assert_eq!(hist_bucket(4), 2);
        assert_eq!(hist_bucket(255), 7);
        assert_eq!(hist_bucket(256), 8);
        assert_eq!(hist_bucket(1 << 20), HIST_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reports_reader_lag() {
        let s = StatsShared::default();
        s.head_seq.store(10, Ordering::Relaxed);
        let fast = s.register_reader(0);
        let slow = s.register_reader(0);
        fast.store(10, Ordering::Relaxed);
        slow.store(4, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.readers, 2);
        assert_eq!(snap.max_reader_lag, 6);
        drop(slow);
        let snap = s.snapshot();
        assert_eq!(snap.readers, 1, "dropped reader deregisters");
        assert_eq!(snap.max_reader_lag, 0);
        assert!(snap.to_string().contains("seq 10"));
    }
}
