//! # dynamis-serve — a concurrent serving layer for dynamic MaxIS
//!
//! Turns any [`DynamicMis`](dynamis_core::DynamicMis) engine into a
//! concurrently queryable service, using only `std`. The architecture
//! is single-writer / many-readers, built on the session API's delta
//! machinery instead of locks around the engine:
//!
//! ```text
//!  submit / submit_batch              ┌──────────────────────────┐
//!  (tickets carry per-update         │  writer thread            │
//!   Result<seq, EngineError>)        │  ┌────────────────────┐   │
//! ──────► bounded MPSC queue ───────►│  │ engine (DynamicMis)│   │
//!          (backpressure)    adaptive│  └────────────────────┘   │
//!                            batching│   try_apply_batch, then   │
//!                                    │   drain_delta()           │
//!                                    └───────────┬──────────────┘
//!                                                │ publish(SolutionDelta)
//!                                    ┌───────────▼──────────────┐
//!                                    │ sequenced delta log       │
//!                                    │ (Arc entries + checkpoint)│
//!                                    └───┬─────────┬────────────┘
//!                              catch up  │         │  catch up (lazy, on query)
//!                          ┌─────────────▼──┐   ┌──▼─────────────┐
//!                          │ ReaderHandle    │   │ ReaderHandle   │ …
//!                          │ SolutionMirror  │   │ SolutionMirror │
//!                          └────────────────┘   └────────────────┘
//! ```
//!
//! * **One writer thread** owns the engine and drains the ingest queue
//!   with *adaptive batching*: whatever is queued rides along, up to a
//!   burst cap, through [`DynamicMis::try_apply_batch`](dynamis_core::DynamicMis::try_apply_batch)
//!   — so queue pressure automatically amortizes per-update overhead
//!   (one deferred swap-search drain and one broadcast per burst).
//! * **Per-update verdicts** reach the caller through tickets: an
//!   invalid update inside a burst is rejected with its typed
//!   [`EngineError`](dynamis_core::EngineError) while the rest of the
//!   burst is applied.
//! * **Readers never touch the engine.** Each [`ReaderHandle`] owns a
//!   private [`SolutionMirror`](dynamis_core::SolutionMirror) and
//!   catches up lazily from the sequence-numbered broadcast log; a
//!   reader that falls behind the log's bounded window re-seeds from
//!   the log's checkpoint. Queries are wait-free with respect to the
//!   writer apart from an `Arc`-clone critical section.
//! * **Graceful shutdown** flushes the queue: everything submitted
//!   before [`ServiceHandle::shutdown`] is applied and broadcast, and
//!   the final [`ServiceReport`] carries the engine's materialized
//!   solution for verification.
//!
//! ```
//! use dynamis_graph::{DynamicGraph, Update};
//! use dynamis_core::EngineBuilder;
//! use dynamis_serve::{MisService, ServeConfig};
//!
//! let g = DynamicGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
//! let (service, mut reader) =
//!     MisService::spawn(EngineBuilder::on(g).k(2), ServeConfig::default()).unwrap();
//!
//! // Queries see the bootstrap solution without touching the engine.
//! assert!(reader.len() >= 3);
//!
//! // Sync submission: the ticket reports the broadcast seq or the
//! // engine's typed rejection.
//! let seq = service.submit(Update::RemoveEdge(1, 2)).unwrap().wait().unwrap();
//! assert!(seq >= 1);
//! assert!(service.submit(Update::RemoveEdge(1, 2)).unwrap().wait().is_err());
//!
//! let report = service.shutdown();
//! assert_eq!(reader.snapshot(), report.solution);
//! ```

mod error;
mod log;
mod multi;
mod reader;
mod service;
mod stats;
pub mod wire;

pub use error::ServeError;
pub use log::{LogTail, SeqEntry, SharedLog};
pub use multi::ShardedReader;
pub use reader::ReaderHandle;
pub use service::{
    BatchTicket, IngestHandle, MisService, ServeConfig, ServiceHandle, ServiceReport, Ticket,
};
pub use stats::{ServiceStats, HIST_BUCKETS};
