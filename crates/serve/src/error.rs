//! Errors surfaced by the serving layer.

use dynamis_core::EngineError;
use std::fmt;

/// Why a submission (or a wait on its ticket) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service has shut down — its writer thread is gone, so the
    /// update was never applied.
    Stopped,
    /// The bounded ingest queue is full right now (returned by the
    /// non-blocking `try_submit` paths only; the blocking paths wait).
    QueueFull,
    /// The engine rejected the update (duplicate edge, missing edge,
    /// dead vertex, …) — the typed [`EngineError`] reaches the caller
    /// through the ticket.
    Rejected(EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Stopped => write!(f, "service has shut down"),
            ServeError::QueueFull => write!(f, "ingest queue is full"),
            ServeError::Rejected(e) => write!(f, "engine rejected the update: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Rejected(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(ServeError::Stopped.to_string().contains("shut down"));
        assert!(ServeError::QueueFull.to_string().contains("full"));
        let e = ServeError::Rejected(EngineError::DuplicateEdge(1, 2));
        assert!(e.to_string().contains("(1, 2)"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(ServeError::Stopped.source().is_none());
    }
}
